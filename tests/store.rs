//! Acceptance suite for the durable result store: the kill-matrix, the
//! degraded-disk contract, and seeded random-corruption properties.
//!
//! The store's claims (ISSUE 7, ROADMAP item 3) are concrete:
//!
//! 1. **Kill-matrix** — after a crash at *any* byte of a persistent
//!    batch, reopening recovers every fully-fsync'd entry bit-identical
//!    to recomputation (fingerprint-checked via the existing cache key)
//!    and drops every torn one without serving it. The sweep here cuts
//!    a populated segment at every interesting offset; the real-SIGKILL
//!    variant lives in `examples/store_chaos.rs` and CI's `chaos-store`
//!    job.
//! 2. **Degraded disk** — ENOSPC mid-record and fsync refusal (via the
//!    shared `FaultyFile` injector) must never fail a request: the run
//!    completes via recomputation with the tier disabled and the error
//!    counted in `StoreStats`.
//! 3. **Random corruption** (proptest, seeded, `PROPTEST_CASES`
//!    honored) — arbitrary truncation/bit-flip/garbage faults yield, on
//!    reopen, only digest-valid last-wins records; nothing corrupt is
//!    ever served, and what was lost recomputes bit-identically.
//!
//! The truncation sweep re-derives record boundaries by parsing the
//! file with its own 14/20-byte header arithmetic, so it doubles as a
//! format-stability regression: an accidental layout change breaks this
//! suite even if writer and reader drift in lock-step.

use ascend::arch::ChipSpec;
use ascend::faults::{corrupt_file, DiskFault, FaultyFile};
use ascend::ops::{AddRelu, Gelu, LayerNorm, Operator, OptFlags, Softmax};
use ascend::pipeline::{
    AnalysisPipeline, Fidelity, PipelineResult, ResultStore, RunPolicy, StoreConfig, StoreError,
};
use ascend::roofline::Thresholds;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ascend-store-acceptance-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The persistent batch every test reuses: small enough to simulate in
/// milliseconds, varied enough to produce distinct fingerprints.
fn batch() -> Vec<Box<dyn Operator>> {
    vec![
        Box::new(AddRelu::new(1 << 10)),
        Box::new(AddRelu::new(1 << 11).with_flags(OptFlags::new().rsd(true))),
        Box::new(Gelu::new(1 << 10)),
        Box::new(Softmax::new(1 << 9)),
        Box::new(LayerNorm::new(1 << 9)),
    ]
}

fn run_all(pipeline: &AnalysisPipeline, ops: &[Box<dyn Operator>]) -> Vec<Arc<PipelineResult>> {
    ops.iter().map(|op| pipeline.run(op.as_ref()).unwrap()).collect()
}

/// Segment header length (magic + version + context) — deliberately
/// re-stated here rather than imported, as a format regression tripwire.
const HEADER_LEN: u64 = 14;
/// Record header length (len + fingerprint + digest).
const RECORD_HEADER_LEN: u64 = 20;

/// Parses the segment with independent arithmetic, returning
/// `(fingerprint, payload, end_offset)` per record in file order.
fn parse_records(bytes: &[u8]) -> Vec<(u64, Vec<u8>, u64)> {
    assert_eq!(&bytes[..4], b"ASTR", "magic must lead the file");
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let fingerprint = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + RECORD_HEADER_LEN as usize;
        let end = payload_start + len;
        assert!(end <= bytes.len(), "a freshly written segment has no torn tail");
        records.push((fingerprint, bytes[payload_start..end].to_vec(), end as u64));
        pos = end;
    }
    records
}

#[test]
fn warm_restart_serves_bit_identical_results_from_disk() {
    let dir = tempdir("warm-restart");
    let path = dir.join("store.astr");
    let ops = batch();
    let chip = ChipSpec::training();

    // Cold run: everything computes and persists.
    let cold = AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();
    let cold_results = run_all(&cold, &ops);
    let stats = cold.store_stats().unwrap();
    assert_eq!(stats.appends, ops.len() as u64);
    assert_eq!(stats.recovered, 0);
    drop(cold);

    // The ground truth: a store-less pipeline recomputing from scratch.
    let fresh = AnalysisPipeline::new(chip.clone());
    let recomputed = run_all(&fresh, &ops);

    // Warm restart: a brand-new process image (pipeline) over the same
    // file answers everything from disk, bit-identical.
    let warm = AnalysisPipeline::new(chip).with_store(&path).unwrap();
    assert_eq!(warm.store_stats().unwrap().recovered, ops.len() as u64);
    let warm_results = run_all(&warm, &ops);
    for ((cold, warm), fresh) in cold_results.iter().zip(&warm_results).zip(&recomputed) {
        assert_eq!(**cold, **warm, "disk round-trip must be bit-identical");
        assert_eq!(**warm, **fresh, "disk must agree with pure recomputation");
    }
    let stats = warm.store_stats().unwrap();
    assert_eq!(stats.hits, ops.len() as u64);
    assert_eq!(stats.misses, 0);
    assert_eq!(warm.cache_stats().hits, ops.len() as u64, "disk hits are cache hits");
    assert_eq!(warm.timings().runs, 0, "nothing re-simulates on a warm restart");
    let footer = warm.instrumentation_footer();
    assert!(footer.contains("[pipeline] store:"), "{footer}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervised_and_plain_paths_share_the_disk_tier() {
    let dir = tempdir("supervised");
    let path = dir.join("store.astr");
    let ops = batch();
    let chip = ChipSpec::training();
    {
        let pipeline = AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();
        for op in &ops {
            pipeline.run_supervised(op.as_ref(), &RunPolicy::resilient()).unwrap();
        }
        assert_eq!(pipeline.store_stats().unwrap().appends, ops.len() as u64);
    }
    let warm = AnalysisPipeline::new(chip).with_store(&path).unwrap();
    for op in &ops {
        let result = warm.run_supervised(op.as_ref(), &RunPolicy::resilient()).unwrap();
        assert_eq!(result.fidelity, Fidelity::Simulated);
    }
    assert_eq!(warm.store_stats().unwrap().hits, ops.len() as u64);
    assert_eq!(warm.timings().runs, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn context_pinning_keeps_stores_per_configuration() {
    let dir = tempdir("context");
    let path = dir.join("store.astr");
    let chip = ChipSpec::training();
    AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();

    // Different thresholds → different context → the same file refuses.
    let other = AnalysisPipeline::new(chip.clone())
        .with_thresholds(Thresholds { parallelism_ratio: 0.99, ..Thresholds::default() });
    match other.with_store(&path) {
        Err(StoreError::ContextMismatch { .. }) => {}
        other => panic!("expected ContextMismatch, got {other:?}"),
    }

    // And attaching someone else's open store is refused the same way.
    let store = Arc::new(ResultStore::open(dir.join("other.astr"), 0x1234_5678_9ABC_DEF0).unwrap());
    match AnalysisPipeline::new(chip).with_result_store(store) {
        Err(StoreError::ContextMismatch { .. }) => {}
        other => panic!("expected ContextMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The kill-matrix: cut the segment at every interesting byte offset
/// (every record boundary, its ±1 neighborhood, and a stride through
/// record bodies), reopen, and hold the recovery contract: exactly the
/// records wholly inside the prefix come back, each bit-identical to
/// recomputation, and the rest recompute without error.
#[test]
fn kill_matrix_truncation_sweep_recovers_exactly_the_durable_prefix() {
    let dir = tempdir("kill-matrix");
    let path = dir.join("store.astr");
    let ops = batch();
    let chip = ChipSpec::training();
    {
        let pipeline = AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();
        run_all(&pipeline, &ops);
    }
    let context = AnalysisPipeline::new(chip.clone()).context();
    let bytes = std::fs::read(&path).unwrap();
    let records = parse_records(&bytes);
    assert_eq!(records.len(), ops.len(), "one record per simulated op, in batch order");

    // Ground truth per fingerprint, from pure recomputation.
    let fresh = AnalysisPipeline::new(chip.clone());
    let recomputed: Vec<(u64, Arc<PipelineResult>)> = ops
        .iter()
        .map(|op| (fresh.cache_key(op.as_ref()), fresh.run(op.as_ref()).unwrap()))
        .collect();

    // Cut points: both sides of every boundary, plus a stride through
    // the interiors so mid-payload tears are represented.
    let mut cuts: Vec<u64> = vec![HEADER_LEN];
    for (_, _, end) in &records {
        for delta in [-1i64, 0, 1, 7, RECORD_HEADER_LEN as i64 - 1, RECORD_HEADER_LEN as i64] {
            let cut = end.saturating_add_signed(delta);
            if cut >= HEADER_LEN && cut <= bytes.len() as u64 {
                cuts.push(cut);
            }
        }
    }
    let mut pos = HEADER_LEN + 3;
    while pos < bytes.len() as u64 {
        cuts.push(pos);
        pos += 97;
    }
    cuts.sort_unstable();
    cuts.dedup();

    let crash_path = dir.join("crashed.astr");
    for cut in cuts {
        std::fs::write(&crash_path, &bytes[..cut as usize]).unwrap();
        let store = ResultStore::open(&crash_path, context)
            .unwrap_or_else(|err| panic!("cut at {cut} must reopen: {err}"));

        // Expected survivors: records wholly inside the prefix.
        let expected: Vec<&(u64, Vec<u8>, u64)> =
            records.iter().filter(|(_, _, end)| *end <= cut).collect();
        assert_eq!(
            store.stats().recovered,
            expected.len() as u64,
            "cut at {cut}: exactly the fully-written records recover"
        );
        for (fingerprint, payload, _) in &expected {
            let served = store
                .get(*fingerprint)
                .unwrap_or_else(|| panic!("cut at {cut}: {fingerprint:#x} must be served"));
            assert_eq!(&served, payload, "cut at {cut}: served bytes must be untouched");
        }
        drop(store);

        // The pipeline contract on the crashed file: every request still
        // answers, survivors from disk, the torn tail by recomputation —
        // and everything equals the ground truth.
        let survivor_count = expected.len() as u64;
        let resumed = AnalysisPipeline::new(chip.clone()).with_store(&crash_path).unwrap();
        for (op, (key, truth)) in ops.iter().zip(&recomputed) {
            let result = resumed.run(op.as_ref()).unwrap();
            assert_eq!(result.fingerprint, *key);
            assert_eq!(*result, **truth, "cut at {cut}: result must match recomputation");
        }
        let stats = resumed.store_stats().unwrap();
        assert_eq!(stats.hits, survivor_count, "cut at {cut}");
        assert_eq!(
            resumed.timings().runs,
            (ops.len() as u64) - survivor_count,
            "cut at {cut}: only the lost records re-simulate"
        );
        assert!(!stats.disabled, "cut at {cut}: truncation is recoverable, not degrading");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_rot_is_recomputed_never_served() {
    let dir = tempdir("bitrot");
    let path = dir.join("store.astr");
    let ops = batch();
    let chip = ChipSpec::training();
    {
        let pipeline = AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();
        run_all(&pipeline, &ops);
    }
    let records = parse_records(&std::fs::read(&path).unwrap());
    // Rot one byte in the middle of the second record's payload.
    let (_, _, first_end) = records[0];
    corrupt_file(
        &path,
        DiskFault::FlipBits { offset: first_end + RECORD_HEADER_LEN + 10, mask: 0x20 },
    )
    .unwrap();

    let fresh = AnalysisPipeline::new(chip.clone());
    let truth = run_all(&fresh, &ops);

    let pipeline = AnalysisPipeline::new(chip).with_store(&path).unwrap();
    let stats = pipeline.store_stats().unwrap();
    assert_eq!(stats.corrupt_dropped, 1, "the rotted record is dropped at open");
    assert_eq!(stats.recovered, ops.len() as u64 - 1);
    let results = run_all(&pipeline, &ops);
    for (result, truth) in results.iter().zip(&truth) {
        assert_eq!(**result, **truth, "rot must be recomputed bit-identically");
    }
    assert_eq!(pipeline.timings().runs, 1, "exactly the rotted record re-simulates");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn enospc_mid_batch_completes_every_request_degraded() {
    let dir = tempdir("enospc-batch");
    let path = dir.join("store.astr");
    let ops = batch();
    let chip = ChipSpec::training();
    let pipeline = AnalysisPipeline::new(chip);

    // A "disk" with room for the header, two records, and a partial
    // third: the batch outgrows it mid-run.
    let file = FaultyFile::create(&path).unwrap().fail_writes_after(4096);
    let store = Arc::new(
        ResultStore::open_with_file(Box::new(file), pipeline.context(), StoreConfig::default())
            .unwrap(),
    );
    let pipeline = pipeline.with_result_store(Arc::clone(&store)).unwrap();

    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let results = pipeline.run_batch_with_workers(&refs, 2);
    assert!(
        results.iter().all(Result::is_ok),
        "a full disk must never fail a request recomputation could serve"
    );
    let stats = store.stats();
    assert!(stats.disabled, "ENOSPC must disable the tier: {stats:?}");
    assert!(stats.io_errors >= 1);
    assert!(stats.appends < ops.len() as u64, "the disk filled before the batch finished");

    // And the durable prefix is still honest: reopening the real file
    // serves only verifiable records.
    drop(pipeline);
    drop(store);
    let reopened =
        ResultStore::open(&path, AnalysisPipeline::new(ChipSpec::training()).context()).unwrap();
    assert_eq!(reopened.stats().recovered, reopened.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_refusal_completes_every_request_degraded() {
    let dir = tempdir("fsync-refusal");
    let path = dir.join("store.astr");
    let ops = batch();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    // Header goes through a clean file first so open succeeds; the
    // refusal bites on the first record fsync.
    ResultStore::open(&path, pipeline.context()).unwrap();
    let file = FaultyFile::open(&path).unwrap().refuse_fsync();
    let store = Arc::new(
        ResultStore::open_with_file(Box::new(file), pipeline.context(), StoreConfig::default())
            .unwrap(),
    );
    let pipeline = pipeline.with_result_store(Arc::clone(&store)).unwrap();
    for op in &ops {
        assert!(pipeline.run(op.as_ref()).is_ok(), "fsync refusal must not fail requests");
    }
    let stats = pipeline.store_stats().unwrap();
    assert!(stats.disabled);
    assert_eq!(stats.io_errors, 1, "one error disables; later puts are no-ops");
    std::fs::remove_dir_all(&dir).ok();
}

/// Applies `fault_seed`-derived corruption to a populated store file.
fn apply_random_faults(path: &std::path::Path, fault_seed: u64) {
    let len = std::fs::metadata(path).unwrap().len();
    let mut state = fault_seed;
    let mut next = || {
        // SplitMix64, inlined so the test is self-contained.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let faults = 1 + (next() % 3);
    for _ in 0..faults {
        let fault = match next() % 3 {
            0 => DiskFault::TruncateTailBytes(next() % (len / 2).max(1)),
            1 => {
                DiskFault::FlipBits { offset: next() % len.max(1), mask: (1 << (next() % 8)) as u8 }
            }
            _ => DiskFault::AppendGarbage { len: (next() % 64) as usize + 1, seed: next() },
        };
        // FlipBits can land past the end after a truncation; skip those.
        let _ = corrupt_file(path, fault);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random corruption of a synthetic store: reopen yields only
    // digest-valid last-wins records, every served payload is
    // bit-identical to one that was written for that key, and nothing
    // else is served.
    #[test]
    fn random_corruption_yields_only_valid_last_wins_records(seed in 0u64..u64::MAX) {
        let dir = tempdir("proptest-raw");
        let path = dir.join(format!("store-{seed:016x}.astr"));
        const CTX: u64 = 0x00AB_CDEF_0123_4567;

        // Seeded synthetic history: keys written 1-3 times each.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut written: std::collections::HashMap<u64, Vec<Vec<u8>>> = Default::default();
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            for _ in 0..(4 + next() % 8) {
                let key = 1 + next() % 5;
                let payload: Vec<u8> = (0..(8 + next() % 48)).map(|_| (next() & 0xFF) as u8).collect();
                store.put(key, &payload);
                written.entry(key).or_default().push(payload);
            }
        }

        apply_random_faults(&path, seed ^ 0xFAD7);

        // Reopen (a post-corruption magic/version/context tear can make
        // the file unopenable — that is a refusal, not a wrong answer).
        let Ok(store) = ResultStore::open(&path, CTX) else {
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        };
        let stats = store.stats();
        prop_assert_eq!(stats.recovered, store.len() as u64);
        for (key, versions) in &written {
            if let Some(served) = store.get(*key) {
                // Served bytes must be bit-identical to *some* version
                // written for this key (the last, unless corruption ate
                // it and an earlier one survived) — never an invention.
                prop_assert!(
                    versions.iter().any(|v| v == &served),
                    "seed {seed}: key {key:#x} served bytes that were never written"
                );
            }
        }
        // Keys never written must not materialize.
        for key in 6..10u64 {
            prop_assert!(store.get(key).is_none(), "seed {seed}: phantom key {key:#x}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random corruption under the full pipeline: whatever the fault
    // did, every request completes and every answer is bit-identical
    // to recomputation — served survivors and recomputed losses alike.
    #[test]
    fn random_corruption_recomputes_the_rest_bit_identically(seed in 0u64..u64::MAX) {
        let dir = tempdir("proptest-pipeline");
        let path = dir.join(format!("store-{seed:016x}.astr"));
        let ops = batch();
        let chip = ChipSpec::training();
        {
            let pipeline = AnalysisPipeline::new(chip.clone()).with_store(&path).unwrap();
            run_all(&pipeline, &ops);
        }
        apply_random_faults(&path, seed);

        let fresh = AnalysisPipeline::new(chip.clone());
        let truth = run_all(&fresh, &ops);

        // A fault that hit the header makes the store refuse to open —
        // the caller then runs memory-only, which the bench layer
        // exercises; nothing to assert about served bytes in that case.
        if let Ok(pipeline) = AnalysisPipeline::new(chip).with_store(&path) {
            let results = run_all(&pipeline, &ops);
            for (result, truth) in results.iter().zip(&truth) {
                prop_assert_eq!(&**result, &**truth, "seed {}", seed);
            }
            let stats = pipeline.store_stats().unwrap();
            prop_assert_eq!(
                pipeline.timings().runs + stats.hits,
                ops.len() as u64,
                "seed {}: every op either served from disk or re-simulated", seed
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
