//! Cross-crate integration: the full profile → analyze → advise →
//! optimize workflow of the paper's Figure 5, exercised through the
//! public API of every crate.

use ascend::arch::{ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend::isa::{BufferAllocator, KernelBuilder, KernelStats};
use ascend::ops::{AddRelu, Depthwise, Operator, OptFlags};
use ascend::optimize::{advise, passes, Optimizer, Strategy};
use ascend::profile::{Profile, Profiler};
use ascend::roofline::{analyze, Bottleneck, RooflineChart, Thresholds};
use ascend::sim::Simulator;

#[test]
fn hand_written_kernel_full_workflow() {
    let chip = ChipSpec::training();
    let mut alloc = BufferAllocator::new(&chip);
    let gm_in = alloc.alloc(ascend::arch::Buffer::Gm, 1 << 20).unwrap();
    let gm_out = alloc.alloc(ascend::arch::Buffer::Gm, 1 << 20).unwrap();
    let ub = alloc.alloc(ascend::arch::Buffer::Ub, 32 << 10).unwrap();

    let mut b = KernelBuilder::new("handwritten_scale");
    for i in 0..32u64 {
        let tile = 32 << 10;
        let src = gm_in.slice(i * tile, tile);
        let dst = gm_out.slice(i * tile, tile);
        b.transfer(TransferPath::GmToUb, src, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, tile / 2, vec![ub], vec![ub]);
        b.sync(Component::Vector, Component::MteUb);
        b.transfer(TransferPath::UbToGm, ub, dst).unwrap();
    }
    let kernel = b.build();

    // Simulate, profile, analyze.
    let profiler = Profiler::new(chip.clone());
    let (profile, trace) = profiler.run(&kernel).unwrap();
    assert_eq!(trace.records().len(), kernel.len());
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    // In-place UB reuse serializes the tile pipeline.
    assert_eq!(analysis.bottleneck(), Bottleneck::InsufficientParallelism);

    // The advisor proposes the paper's parallelism remedies.
    let suggestions = advise(&analysis);
    assert_eq!(suggestions[0], Strategy::Rsd);

    // The chart draws points for the (memory, compute) pairs involved.
    let chart = RooflineChart::from_analysis(&analysis);
    assert!(!chart.points().is_empty());
    assert!(chart.to_svg(640, 480).contains("circle"));
}

#[test]
fn ir_passes_compose_and_preserve_semantics() {
    let chip = ChipSpec::training();
    let kernel = Depthwise::new(1 << 18).build(&chip).unwrap();
    let sim = Simulator::new(chip.clone());
    let t0 = sim.simulate(&kernel).unwrap().total_cycles();

    let optimized = passes::hoist_transfers(&passes::minimize_redundant_transfers(
        &passes::remove_unnecessary_barriers(&kernel),
    ));
    ascend::isa::validate(&optimized, &chip).unwrap();
    let t1 = sim.simulate(&optimized).unwrap().total_cycles();
    assert!(t1 <= t0 * 1.001, "composed passes must not slow the kernel: {t1} > {t0}");

    // Work is preserved: same compute ops, no new transfers.
    let s0 = KernelStats::of(&kernel);
    let s1 = KernelStats::of(&optimized);
    assert_eq!(s0.ops, s1.ops);
    assert!(s1.bytes_of_component(Component::MteGm) <= s0.bytes_of_component(Component::MteGm));
}

#[test]
fn optimizer_agrees_with_manual_flag_choice() {
    let chip = ChipSpec::training();
    let report = Optimizer::new(chip.clone()).run(&AddRelu::new(1 << 19)).unwrap();
    // Manually apply the same final flags: identical cycle count.
    let manual = AddRelu::new(1 << 19).with_flags(report.final_flags());
    let kernel = manual.build(&chip).unwrap();
    let cycles = Simulator::new(chip).simulate(&kernel).unwrap().total_cycles();
    assert!((cycles - report.final_cycles()).abs() < 1e-6);
}

#[test]
fn profiles_accumulate_across_operators_like_a_stream() {
    let chip = ChipSpec::training();
    let profiler = Profiler::new(chip.clone());
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(1 << 16)),
        Box::new(AddRelu::new(1 << 16).with_flags(OptFlags::new().rsd(true))),
        Box::new(Depthwise::new(1 << 16)),
    ];
    let mut aggregate = Profile::empty("stream");
    let mut expected_cycles = 0.0;
    for op in &ops {
        let (profile, trace) = profiler.run(&op.build(&chip).unwrap()).unwrap();
        aggregate.accumulate(&profile);
        expected_cycles += trace.total_cycles();
    }
    assert!((aggregate.total_cycles - expected_cycles).abs() < 1e-6);
    let analysis = analyze(&aggregate, &chip, &Thresholds::default());
    assert!(!analysis.metrics().is_empty());
}

#[test]
fn inference_chip_is_slower_end_to_end() {
    let op = AddRelu::new(1 << 18);
    let t_train = {
        let chip = ChipSpec::training();
        let trace = Simulator::new(chip.clone()).simulate(&op.build(&chip).unwrap()).unwrap();
        chip.cycles_to_secs(trace.total_cycles())
    };
    let t_infer = {
        let chip = ChipSpec::inference();
        let trace = Simulator::new(chip.clone()).simulate(&op.build(&chip).unwrap()).unwrap();
        chip.cycles_to_secs(trace.total_cycles())
    };
    assert!(
        t_infer > t_train,
        "wall-clock on the inference part must be slower: {t_infer} <= {t_train}"
    );
}
