//! Acceptance suite for the fault-tolerant sharded cluster tier.
//!
//! The invariants under test, per ISSUE 9:
//!
//! * **Ring determinism and bounded remapping** — two independently
//!   constructed rings route every key identically, and removing one of
//!   N shards remaps at most 2/N of a 10k-fingerprint sample (its own
//!   keys move to ring successors, nobody else's).
//! * **Bit-identity** — a clustered result equals an in-process run of
//!   the same spec on an identical pipeline.
//! * **Exactly-once accounting, cluster-wide** — after a quiesced
//!   drain, `completed_ok + failed + shed_deadline + drain_flushed ==
//!   accepted`, `kill -9` mid-load notwithstanding.
//! * **Per-shard store isolation and disk rewarm** — shards sharing a
//!   cache dir open distinct context-pinned segment files; a shard
//!   respawned after `kill -9` answers repeat traffic from disk, and an
//!   offline `ResultStore::verify` scan finds zero corrupt records.
//! * **Cluster-wide quarantine** — a tombstoned fingerprint is never
//!   served from cached state by any shard, before or after a kill.
//!
//! Shard processes are hosted by the dedicated `sandbox_worker` binary
//! (test binaries cannot re-exec themselves as workers).

use ascend::arch::ChipSpec;
use ascend::faults::SplitMix64;
use ascend::ops::OpSpec;
use ascend::pipeline::{
    AnalysisPipeline, ClusterConfig, ClusterService, HashRing, Priority, ResultStore,
    SandboxConfig, DEFAULT_VIRTUAL_NODES,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn worker_cmd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sandbox_worker"))
}

fn cluster_config(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        queue_capacity: 256,
        sandbox: SandboxConfig {
            worker_cmd: Some(worker_cmd()),
            heartbeat_interval: Duration::from_millis(15),
            heartbeat_timeout: Duration::from_millis(500),
            wall_clock_limit: Duration::from_secs(10),
            ..SandboxConfig::default()
        },
        respawn_backoff: Duration::from_millis(10),
        respawn_backoff_max: Duration::from_millis(200),
        ..ClusterConfig::default()
    }
}

/// Polls until `want` shards are up (respawn is asynchronous).
fn wait_for_live(cluster: &ClusterService, want: usize) {
    wait_until(cluster, |health| health.live_shards() >= want, "live shards");
}

/// Polls until shard `index` has been respawned past `respawns_before`
/// *and* is up again. A fresh `kill -9` is asynchronous twice over: the
/// dispatcher has to notice the death, then bring the shard back — a
/// health snapshot taken in between still shows the stale liveness.
fn wait_for_respawn(cluster: &ClusterService, index: usize, respawns_before: u64) {
    wait_until(
        cluster,
        |health| {
            let shard = &health.shards[index];
            shard.up && shard.counters.respawns > respawns_before
        },
        "respawn",
    );
}

fn wait_until(
    cluster: &ClusterService,
    pred: impl Fn(&ascend::pipeline::ClusterHealth) -> bool,
    what: &str,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred(&cluster.health()) {
        assert!(
            Instant::now() < deadline,
            "cluster never reached the awaited {what} state: {:?}",
            cluster.health()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A batch of distinct specs, one cache key each.
fn batch(n: u64) -> Vec<OpSpec> {
    (0..n).map(|i| OpSpec::add_relu((1 << 11) + i * 128)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Satellite: removing one of N shards remaps ≤ 2/N of a
    // 10k-fingerprint sample, and two independently constructed rings
    // agree on every key (determinism regression).
    #[test]
    fn ring_remaps_bounded_and_deterministically(
        shards in 2usize..9,
        dead_pick in 0usize..8,
        seed in any::<u64>(),
    ) {
        let dead = dead_pick % shards;
        let ring = HashRing::new(shards, DEFAULT_VIRTUAL_NODES);
        let twin = HashRing::new(shards, DEFAULT_VIRTUAL_NODES);
        prop_assert_eq!(&ring, &twin);
        let mut rng = SplitMix64::new(seed);
        let samples = 10_000usize;
        let mut remapped = 0usize;
        for _ in 0..samples {
            let key = rng.next_u64();
            let owner = ring.owner(key);
            prop_assert_eq!(owner, twin.owner(key), "rings must agree on every key");
            let rerouted = ring.route(key, |shard| shard != dead).expect("peers are alive");
            if owner == dead {
                remapped += 1;
                prop_assert!(rerouted != dead, "a dead shard must never be routed to");
            } else {
                prop_assert_eq!(rerouted, owner, "keys of live shards must not move");
            }
        }
        prop_assert!(
            remapped * shards <= 2 * samples,
            "remapped {} of {} keys across {} shards — more than 2/N",
            remapped, samples, shards
        );
    }
}

#[test]
fn cluster_serves_bit_identical_results_and_accounts_exactly_once() {
    let cluster =
        ClusterService::start(ChipSpec::training(), cluster_config(2)).expect("cluster start");
    let specs = batch(12);
    let tickets: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let priority = if i % 2 == 0 { Priority::Interactive } else { Priority::Sweep };
            cluster.submit(*spec, priority).expect("admission")
        })
        .collect();

    // Bit-identity against a fresh in-process pipeline (separate cache,
    // so no shared state can mask a divergence).
    let reference = AnalysisPipeline::new(ChipSpec::training());
    for (spec, ticket) in specs.iter().zip(&tickets) {
        let clustered = ticket.wait().expect("clustered work succeeds");
        let local = reference.run(spec.instantiate().as_ref()).expect("reference run");
        assert_eq!(*clustered, *local, "clustered result must be bit-identical for {spec:?}");
        assert_eq!(
            clustered.fingerprint,
            cluster.cache_key(&(*spec).into()),
            "routing key is the result fingerprint"
        );
    }

    let report = cluster.drain(Duration::from_secs(10));
    assert!(report.quiesced, "drain quiesces a healthy cluster");
    let health = cluster.health();
    assert_eq!(health.counters.accepted, 12);
    assert_eq!(health.counters.completed_ok, 12);
    assert_eq!(health.counters.failed, 0);
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every admitted ticket ended exactly once: {:?}",
        health.counters
    );
    // Both shards took traffic: 12 distinct keys over 2 shards with 64
    // virtual nodes never all land on one side.
    for shard in &health.shards {
        assert!(
            shard.counters.completed_ok > 0,
            "shard {} served nothing: {health:?}",
            shard.index
        );
    }
    // A drained cluster refuses new work.
    assert!(cluster.submit(OpSpec::gelu(1 << 10), Priority::Sweep).is_err());
}

#[test]
fn chaos_kill_dash_nine_loses_no_tickets_and_the_victim_respawns() {
    let dir = std::env::temp_dir().join(format!("ascend-cluster-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let mut config = cluster_config(4);
    config.store_dir = Some(dir.clone());
    let cluster = ClusterService::start(ChipSpec::training(), config).expect("cluster start");
    wait_for_live(&cluster, 4);

    // Route-aware victim choice: find the shard owning the most keys of
    // the upcoming batch, so the kill lands with its queue loaded.
    let specs = batch(32);
    let mut owned = [0usize; 4];
    for spec in &specs {
        owned[cluster.ring().owner(cluster.cache_key(&(*spec).into()))] += 1;
    }
    let victim = (0..4).max_by_key(|&shard| owned[shard]).expect("four shards");
    assert!(owned[victim] > 0, "the victim must own some of the load");
    let respawns_before = cluster.health().shards[victim].counters.respawns;

    // Sustained mixed-priority load, then `kill -9` mid-flight.
    let tickets: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let priority = if i % 2 == 0 { Priority::Interactive } else { Priority::Sweep };
            cluster.submit(*spec, priority).expect("admission")
        })
        .collect();
    assert!(cluster.kill_shard(victim), "the victim had a live process to kill");

    // Zero lost tickets: every single one completes with a result —
    // victims are re-answered via failover to the ring successor.
    for (spec, ticket) in specs.iter().zip(&tickets) {
        let result = ticket.wait().unwrap_or_else(|err| {
            panic!("ticket for {spec:?} lost to the kill: {err}");
        });
        assert!(result.cycles() > 0.0);
    }

    // The cluster kept serving throughout and the victim comes back.
    let probe = cluster
        .submit(OpSpec::gelu((1 << 10) + 3), Priority::Interactive)
        .expect("admissions stay open across the kill")
        .wait()
        .expect("and keep completing");
    assert!(probe.cycles() > 0.0);
    wait_for_respawn(&cluster, victim, respawns_before);
    wait_for_live(&cluster, 4);

    let report = cluster.drain(Duration::from_secs(10));
    assert!(report.quiesced, "drain quiesces despite the chaos");
    let health = cluster.health();
    assert!(health.counters.kills >= 1, "the kill is booked: {:?}", health.counters);
    assert!(
        health.shards[victim].counters.respawns > respawns_before,
        "the victim's recovery is booked: {health:?}"
    );
    assert_eq!(health.counters.accepted, 33);
    assert_eq!(health.counters.completed_ok, 33, "nothing failed: {:?}", health.counters);
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "exactly-once accounting survives a shard death: {:?}",
        health.counters
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_stores_are_isolated_and_rewarm_a_killed_shard_from_disk() {
    let dir = std::env::temp_dir().join(format!("ascend-cluster-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let mut config = cluster_config(2);
    config.store_dir = Some(dir.clone());
    let cluster = ClusterService::start(ChipSpec::inference(), config).expect("cluster start");

    // Two shards sharing one cache dir open distinct, context-pinned
    // segment files.
    let path_a = cluster.shard_store_path(0).expect("store configured");
    let path_b = cluster.shard_store_path(1).expect("store configured");
    assert_ne!(path_a, path_b, "shards must never share a segment file");
    let context = cluster.context();
    assert!(
        path_a.display().to_string().contains(&format!("{context:016x}")),
        "segment names are context-pinned: {}",
        path_a.display()
    );

    let specs = batch(12);
    let tickets: Vec<_> = specs
        .iter()
        .map(|spec| cluster.submit(*spec, Priority::Sweep).expect("admission"))
        .collect();
    for ticket in &tickets {
        ticket.wait().expect("clean work");
    }
    let warm = cluster.health();
    assert_eq!(warm.counters.cache_hits, 0, "distinct specs compute cold: {:?}", warm.counters);
    assert!(path_a.exists() && path_b.exists(), "both shards persisted their results");

    // `kill -9` both shards, let them respawn, and replay the traffic:
    // every answer now comes from the rewarmed stores.
    wait_for_live(&cluster, 2);
    let respawns_before: Vec<_> = warm.shards.iter().map(|shard| shard.counters.respawns).collect();
    assert!(cluster.kill_shard(0));
    assert!(cluster.kill_shard(1));
    wait_for_respawn(&cluster, 0, respawns_before[0]);
    wait_for_respawn(&cluster, 1, respawns_before[1]);
    let replays: Vec<_> = specs
        .iter()
        .map(|spec| cluster.submit(*spec, Priority::Sweep).expect("admission"))
        .collect();
    for ticket in &replays {
        ticket.wait().expect("replayed work");
    }

    cluster.drain(Duration::from_secs(10));
    // Counters are exact only after the quiesced drain joined the
    // dispatchers — they advance just after a ticket completes.
    let health = cluster.health();
    assert_eq!(
        health.counters.cache_hits,
        specs.len() as u64,
        "every replay must be served from warm state: {:?}",
        health.counters
    );
    for shard in &health.shards {
        assert!(
            shard.counters.store_recovered > 0,
            "shard {} rewarmed nothing from disk: {health:?}",
            shard.index
        );
    }
    // Zero corrupt records served is backed by zero corrupt records
    // *present*: the offline verifier scans both segments clean.
    for path in [&path_a, &path_b] {
        let report = ResultStore::verify(path).expect("segment scans");
        assert!(report.is_clean(), "segment {} is damaged: {report}", path.display());
        assert_eq!(report.context, context, "segment belongs to this cluster's context");
        assert!(report.live > 0, "segment holds live records");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_is_cluster_wide_and_survives_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("ascend-cluster-quar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let mut config = cluster_config(2);
    config.store_dir = Some(dir.clone());
    let cluster = ClusterService::start(ChipSpec::training(), config).expect("cluster start");

    // A poisoned spec and a control spec owned by the same shard, so
    // the same segment file holds a tombstone next to a live record.
    let mut poisoned = OpSpec::add_relu(1 << 12);
    let owner_of = |cluster: &ClusterService, spec: &OpSpec| {
        cluster.ring().owner(cluster.cache_key(&(*spec).into()))
    };
    let control = OpSpec::add_relu((1 << 12) + 64);
    let target = owner_of(&cluster, &control);
    let mut bump = 0u64;
    while owner_of(&cluster, &poisoned) != target {
        bump += 1;
        poisoned = OpSpec::add_relu((1 << 12) + 128 * bump);
    }
    let key = cluster.cache_key(&poisoned.into());

    // Serve both once (cold), then quarantine the poisoned key.
    cluster.submit(poisoned, Priority::Interactive).expect("admission").wait().expect("compute");
    cluster.submit(control, Priority::Interactive).expect("admission").wait().expect("compute");
    cluster.quarantine(key);
    assert!(cluster.is_quarantined(key));

    // Before any kill: the quarantined fingerprint is recomputed, not
    // served from the (stale) cached bytes.
    let again = cluster
        .submit(poisoned, Priority::Interactive)
        .expect("admission")
        .wait()
        .expect("recompute");
    assert!(again.cycles() > 0.0, "recomputation stays allowed — only stale bytes are barred");
    // Counters advance just after the ticket completes; await them.
    wait_until(&cluster, |health| health.counters.completed_ok >= 3, "three completions");
    assert_eq!(
        cluster.health().counters.cache_hits,
        0,
        "a quarantined fingerprint must never count as a cache hit"
    );

    // `kill -9` the owner; the respawn warm-up re-delivers the full
    // quarantine set before any traffic.
    wait_for_live(&cluster, 2);
    let respawns_before = cluster.health().shards[target].counters.respawns;
    assert!(cluster.kill_shard(target));
    wait_for_respawn(&cluster, target, respawns_before);

    // The control key rewarms from disk; the quarantined key does not.
    cluster.submit(control, Priority::Interactive).expect("admission").wait().expect("disk hit");
    wait_until(&cluster, |health| health.counters.completed_ok >= 4, "four completions");
    let hits_after_control = cluster.health().counters.cache_hits;
    assert_eq!(hits_after_control, 1, "the control key proves the rewarm path works");
    cluster.submit(poisoned, Priority::Interactive).expect("admission").wait().expect("recompute");
    wait_until(&cluster, |health| health.counters.completed_ok >= 5, "five completions");
    assert_eq!(
        cluster.health().counters.cache_hits,
        hits_after_control,
        "the tombstone survived the kill: no shard serves the fingerprint from cached state"
    );
    assert!(cluster.is_quarantined(key), "quarantine outlives the member that died");

    cluster.drain(Duration::from_secs(10));
    let report = ResultStore::verify(cluster.shard_store_path(target).expect("store configured"))
        .expect("segment scans");
    assert!(report.is_clean(), "no resurrected records: {report}");
    assert!(report.tombstones >= 1, "the tombstone is durable: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_is_idempotent_and_flushes_queued_work() {
    let mut config = cluster_config(2);
    // A deadline far in the future: queued work at drain time is
    // flushed, not shed.
    config.default_deadline = Some(Duration::from_secs(60));
    let cluster = ClusterService::start(ChipSpec::training(), config).expect("cluster start");
    let tickets: Vec<_> = batch(8)
        .iter()
        .map(|spec| cluster.submit(*spec, Priority::Sweep).expect("admission"))
        .collect();
    let first = cluster.drain(Duration::from_secs(10));
    assert!(first.quiesced);
    let second = cluster.drain(Duration::from_secs(10));
    assert!(second.quiesced, "drain is idempotent");
    assert_eq!(second.flushed_queued, 0, "the second drain finds nothing left to flush");
    for ticket in &tickets {
        assert!(ticket.wait().is_err() || ticket.wait().is_ok(), "every ticket is terminal");
        assert!(ticket.try_result().is_some(), "no ticket is left hanging");
    }
    let health = cluster.health();
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "accounting balances across drain: {:?}",
        health.counters
    );
    assert_eq!(health.live_shards(), 0, "drained clusters hold no processes");
    assert!(cluster.shard_pids().iter().all(Option::is_none));
}
