//! Integration tests for the `AnalysisPipeline`: cached results must be
//! bit-identical to the uncached stage sequence, batch execution must be
//! deterministic and input-ordered, and the cache statistics must add up.

use ascend::arch::ChipSpec;
use ascend::models::{zoo, ModelRunner};
use ascend::ops::{AddRelu, AvgPool, Depthwise, Gelu, Operator, OptFlags, Softmax};
use ascend::pipeline::AnalysisPipeline;
use ascend::profile::Profiler;
use ascend::roofline::{analyze, Thresholds};

/// A diverse operator/flag matrix for equivalence checks.
fn operator_matrix() -> Vec<Box<dyn Operator>> {
    let flag_sets = [
        OptFlags::new(),
        OptFlags::new().rsd(true),
        OptFlags::new().rsd(true).mrt(true),
        OptFlags::all(),
    ];
    let mut ops: Vec<Box<dyn Operator>> = Vec::new();
    for flags in flag_sets {
        ops.push(Box::new(AddRelu::new(1 << 16).with_flags(flags)));
        ops.push(Box::new(Gelu::new(1 << 15).with_flags(flags)));
        ops.push(Box::new(Depthwise::new(1 << 14).with_flags(flags)));
        ops.push(Box::new(AvgPool::new(1 << 13).with_flags(flags)));
        ops.push(Box::new(Softmax::new(1 << 12).with_flags(flags)));
    }
    ops
}

#[test]
fn cached_results_are_bit_identical_to_the_uncached_path() {
    let chip = ChipSpec::training();
    let pipeline = AnalysisPipeline::new(chip.clone());
    for op in operator_matrix() {
        let miss = pipeline.run(op.as_ref()).unwrap();
        let hit = pipeline.run(op.as_ref()).unwrap();

        // The hand-rolled stage sequence every call site used before.
        let kernel = op.build(&chip).unwrap();
        let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());

        for result in [&miss, &hit] {
            assert_eq!(result.profile, profile, "{}", kernel.name());
            assert_eq!(result.trace, trace, "{}", kernel.name());
            assert_eq!(result.analysis, analysis, "{}", kernel.name());
            assert_eq!(result.kernel_name, kernel.name());
            assert_eq!(result.kernel_len, kernel.len());
        }
    }
    let stats = pipeline.cache_stats();
    assert_eq!(stats.misses, 20);
    assert_eq!(stats.hits, 20);
}

#[test]
fn run_batch_preserves_input_order_for_any_worker_count() {
    let chip = ChipSpec::training();
    let ops = operator_matrix();
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();

    let serial_pipeline = AnalysisPipeline::new(chip.clone());
    let serial: Vec<_> = refs.iter().map(|op| serial_pipeline.run(*op).unwrap()).collect();

    for workers in [1, 2, 3, 8, 64] {
        // A fresh pipeline per worker count: results must not depend on
        // scheduling or on cache warmth.
        let pipeline = AnalysisPipeline::new(chip.clone());
        let batch: Vec<_> = pipeline
            .run_batch_with_workers(&refs, workers)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(batch.len(), serial.len());
        for (expected, got) in serial.iter().zip(&batch) {
            assert_eq!(expected.kernel_name, got.kernel_name, "workers={workers}");
            assert_eq!(expected.profile, got.profile, "workers={workers}");
            assert_eq!(expected.trace, got.trace, "workers={workers}");
            assert_eq!(expected.analysis, got.analysis, "workers={workers}");
        }
    }
}

#[test]
fn degenerate_worker_counts_are_clamped_not_fatal() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let a = AddRelu::new(1 << 10);
    let b = Gelu::new(1 << 10);
    let refs: Vec<&dyn Operator> = vec![&a, &b];

    // workers == 0 clamps to a serial run on the calling thread.
    let zero = pipeline.run_batch_with_workers(&refs, 0);
    assert_eq!(zero.len(), 2);
    assert!(zero.iter().all(Result::is_ok));

    // workers far above the batch size clamps to one worker per item.
    let oversubscribed = pipeline.run_batch_with_workers(&refs, 1024);
    assert_eq!(oversubscribed.len(), 2);
    for (lhs, rhs) in zero.iter().zip(&oversubscribed) {
        assert_eq!(
            lhs.as_ref().unwrap().analysis,
            rhs.as_ref().unwrap().analysis,
            "clamped runs must agree with the serial run"
        );
    }

    // An empty batch spawns nothing and returns nothing, for any count.
    for workers in [0, 1, 7] {
        assert!(pipeline.run_batch_with_workers(&[], workers).is_empty());
    }
}

#[test]
fn cache_stats_count_hits_and_misses_on_a_stream_with_repeats() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let a = AddRelu::new(1 << 12);
    let b = Gelu::new(1 << 12);
    let c = Softmax::new(1 << 12);
    // A B A A C B → misses for A, B, C; hits for the three repeats.
    let stream: Vec<&dyn Operator> = vec![&a, &b, &a, &a, &c, &b];
    let results: Vec<_> =
        pipeline.analyze_stream(stream.iter().copied()).into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(results.len(), 6);
    let stats = pipeline.cache_stats();
    assert_eq!(stats.misses, 3, "{stats:?}");
    assert_eq!(stats.hits, 3, "{stats:?}");
    assert_eq!(stats.evictions, 0, "{stats:?}");
    assert_eq!(pipeline.cache_len(), 3);
    assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    // Repeats resolve to the same cached result.
    assert_eq!(results[0].profile, results[2].profile);
    assert_eq!(results[0].profile, results[3].profile);
    assert_eq!(results[1].analysis, results[5].analysis);
}

#[test]
fn batch_misses_are_counted_once_per_distinct_operator() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let a = AddRelu::new(1 << 12);
    let b = Gelu::new(1 << 12);
    let stream: Vec<&dyn Operator> = vec![&a, &b, &a, &b, &a, &b, &a, &b];
    for result in pipeline.run_batch_with_workers(&stream, 4) {
        result.unwrap();
    }
    let stats = pipeline.cache_stats();
    // Concurrent duplicate misses are allowed to race (both count as
    // misses), but the total ledger must cover the whole stream.
    assert_eq!(stats.hits + stats.misses, 8, "{stats:?}");
    assert!(stats.misses >= 2, "{stats:?}");
    assert_eq!(pipeline.cache_len(), 2);
}

#[test]
fn model_stream_analysis_hits_the_cache_and_matches_the_serial_path() {
    let chip = ChipSpec::inference();
    let model = zoo::mobilenet_v3(ascend::models::Phase::Inference);

    // Serial reference: a fresh runner per analysis, nothing shared.
    let reference = ModelRunner::new(chip.clone()).analyze(&model).unwrap();

    let runner = ModelRunner::new(chip.clone());
    let first = runner.analyze(&model).unwrap();
    let second = runner.analyze(&model).unwrap();
    let stats = runner.pipeline().cache_stats();
    assert!(stats.hits > 0, "repeated model analysis must hit the cache: {stats:?}");

    for report in [&first, &second] {
        assert_eq!(report.total_cycles, reference.total_cycles);
        assert_eq!(report.op_reports.len(), reference.op_reports.len());
        for (got, want) in report.op_reports.iter().zip(&reference.op_reports) {
            assert_eq!(got.name, want.name);
            assert_eq!(got.total_cycles, want.total_cycles);
            assert_eq!(got.bottleneck, want.bottleneck);
            assert_eq!(got.peak_utilization, want.peak_utilization);
        }
        assert_eq!(report.distribution(), reference.distribution());
    }
}

#[test]
fn timings_track_uncached_runs_only() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let op = Depthwise::new(1 << 14);
    pipeline.run(&op).unwrap();
    pipeline.run(&op).unwrap();
    pipeline.run(&op).unwrap();
    let timings = pipeline.timings();
    assert_eq!(timings.runs, 1, "only the miss executes the stages");
    assert!(timings.total_secs() >= 0.0);
    pipeline.reset();
    assert_eq!(pipeline.timings().runs, 0);
    assert_eq!(pipeline.cache_stats().misses, 0);
    assert_eq!(pipeline.cache_len(), 0);
}
