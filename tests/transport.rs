//! Property-based and adversarial tests of the ASBX frame codec
//! (`ascend::pipeline::transport`) — the wire format every sandbox
//! worker and cluster shard speaks.
//!
//! Two families:
//!
//! * **Round-trip**: arbitrary payloads and frame kinds encode and decode
//!   losslessly, alone and in multi-frame streams.
//! * **Adversarial input**: `read_frame` over arbitrary bytes never
//!   panics and never allocates beyond [`MAX_FRAME_LEN`] no matter what
//!   length prefix the (possibly corrupt) header claims — it returns
//!   `Ok(None)` on clean EOF, `Ok(Some(..))` on a valid frame, and `Err`
//!   otherwise.
//!
//! Case count honors `PROPTEST_CASES` (proptest's standard env knob).

use ascend::pipeline::{encode_frame, read_frame, FrameKind, MAX_FRAME_LEN, WIRE_VERSION};
use proptest::prelude::*;

fn frame_kind() -> impl Strategy<Value = FrameKind> {
    proptest::sample::select(vec![FrameKind::Job, FrameKind::Outcome, FrameKind::Heartbeat])
}

proptest! {
    // Any (kind, payload) encodes to bytes that decode back to exactly
    // the same frame, with the stream ending in a clean EOF.
    #[test]
    fn encode_then_read_round_trips(
        kind in frame_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let bytes = encode_frame(kind, &payload);
        let mut stream = bytes.as_slice();
        let frame = read_frame(&mut stream)
            .expect("a well-formed frame decodes")
            .expect("a non-empty stream is not EOF");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
        prop_assert!(read_frame(&mut stream).expect("tail is clean").is_none());
    }

    // Concatenated frames decode in order: the stream framing carries
    // its own boundaries, so no payload can desynchronize the reader.
    #[test]
    fn multi_frame_streams_decode_in_order(
        frames in proptest::collection::vec(
            (frame_kind(), proptest::collection::vec(any::<u8>(), 0..256)),
            1..8,
        ),
    ) {
        let mut bytes = Vec::new();
        for (kind, payload) in &frames {
            bytes.extend_from_slice(&encode_frame(*kind, payload));
        }
        let mut stream = bytes.as_slice();
        for (kind, payload) in &frames {
            let frame = read_frame(&mut stream).expect("frame decodes").expect("not EOF");
            prop_assert_eq!(frame.kind, *kind);
            prop_assert_eq!(&frame.payload, payload);
        }
        prop_assert!(read_frame(&mut stream).expect("tail is clean").is_none());
    }

    // Arbitrary bytes never panic the reader: every outcome is a clean
    // EOF, a decoded frame, or a descriptive error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut stream = bytes.as_slice();
        // Drain the stream; each step must terminate without panicking.
        for _ in 0..bytes.len() + 1 {
            match read_frame(&mut stream) {
                Ok(None) | Err(_) => break,
                Ok(Some(_)) => {}
            }
        }
    }

    // Flipping one bit anywhere in an encoded frame either still decodes
    // (the flip landed in the payload of a *different* valid encoding —
    // impossible here, since the digest covers kind and payload) or
    // errors; it never panics and never yields a frame with a different
    // payload than the digest vouches for.
    #[test]
    fn single_bit_corruption_is_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        bit in any::<u32>(),
    ) {
        let mut bytes = encode_frame(FrameKind::Outcome, &payload);
        let bit = bit as usize % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let mut stream = bytes.as_slice();
        match read_frame(&mut stream) {
            Err(_) => {}
            Ok(decoded) => {
                // The only survivable flips change the *declared length*
                // into a shorter-but-digest-valid frame — which cannot
                // happen, so a decoded frame must be byte-identical.
                let frame = decoded.expect("non-empty stream");
                prop_assert_eq!(frame.payload, payload);
            }
        }
    }
}

/// A header whose length prefix exceeds the frame bound errors
/// immediately instead of attempting the allocation.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ASBX");
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.push(1); // Job
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = read_frame(&mut bytes.as_slice()).expect_err("oversized prefix must be rejected");
    assert!(err.contains("exceeds"), "{err}");
    assert!(err.contains(&MAX_FRAME_LEN.to_string()), "{err}");
}

/// A corrupt-but-in-bounds length prefix over a short stream errors with
/// the truncation diagnostics — and, because the payload is read
/// incrementally, without ever allocating the full claimed length.
#[test]
fn lying_in_bounds_prefix_reports_truncation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ASBX");
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.push(2); // Outcome
    bytes.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes()); // claims 64 MiB
    bytes.extend_from_slice(b"only these bytes"); // ... delivers 16
    let err = read_frame(&mut bytes.as_slice()).expect_err("truncated payload must error");
    assert!(err.contains("truncated frame payload"), "{err}");
    assert!(err.contains("16 of 67108864"), "{err}");
}

/// The historical garbage tag the hostile modes emit still reads as the
/// canonical bad-magic error.
#[test]
fn garbage_prefix_reports_bad_magic() {
    let bytes = b"XXXXthis is definitely not a sandbox frame";
    let err = read_frame(&mut bytes.as_slice()).expect_err("garbage must error");
    assert!(err.contains("bad frame magic"), "{err}");
}

/// A frame cut mid-payload (the torn-frame hostile mode) reports the
/// exact fill level.
#[test]
fn torn_frame_reports_partial_payload() {
    let payload = vec![7u8; 100];
    let bytes = encode_frame(FrameKind::Outcome, &payload);
    let torn = &bytes[..bytes.len() / 2];
    let err = read_frame(&mut &torn[..]).expect_err("torn frame must error");
    assert!(err.contains("truncated frame"), "{err}");
}
