//! Golden-fingerprint differential suite: the arena engine vs the seed
//! engine, bit for bit.
//!
//! The hot-path rewrite (flat arenas, heap-free event frontier,
//! selective retry, streaming sinks) is only legitimate if it is
//! *observationally identical* to the engine it replaced. This suite
//! enforces that three ways:
//!
//! 1. **Differential**: every kernel of every model-zoo workload (plus
//!    the Section 5 case-study operators on both chips) is simulated by
//!    both engines and the traces are compared record by record —
//!    `f64`-exact starts, ends, stall causes, and total cycles.
//! 2. **Golden**: each trace is folded into a 64-bit fingerprint and
//!    checked against `tests/golden/engine_fingerprints.txt`, which is
//!    committed. This pins today's behavior against *future* drift even
//!    if both engines are changed in lock-step. After an intentional
//!    timing-model change, regenerate with
//!    `ASCEND_UPDATE_GOLDEN=1 cargo test --test engine_golden`.
//! 3. **Fault/adversarial**: seeded adversarial kernels and fault plans
//!    (dropped/duplicated `set_flag`s, truncation, degraded bandwidth,
//!    latency jitter) must produce the same outcome on both engines —
//!    identical traces on success, the same error class on failure.
//!
//! A seeded property test additionally proves simulator *reuse* is
//! invisible: a pooled-scratch simulator that has executed arbitrary
//! prior work (including deadlocked runs, which leave scratch dirty)
//! must reproduce a fresh simulator's output exactly. The vendored
//! proptest honors `PROPTEST_CASES`; CI's fuzz job runs this file at
//! 1024+ cases.

use ascend::arch::{ChipSpec, MteEngine};
use ascend::faults::{generator, FaultPlan};
use ascend::isa::Kernel;
use ascend::models::zoo;
use ascend::ops::{AddRelu, AvgPool, Depthwise, Operator, OptFlags};
use ascend::pipeline::divergence::trace_fingerprint;
use ascend::sim::reference::ReferenceSimulator;
use ascend::sim::{SimBudget, SimError, Simulator, Trace};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Every golden workload: each kernel of each training-zoo model on the
/// training chip, plus the case-study operators (baseline and fully
/// optimized) on both chips.
fn golden_cases() -> Vec<(String, ChipSpec, Kernel)> {
    let mut cases = Vec::new();
    let training = ChipSpec::training();
    for model in zoo::all_training() {
        for (i, invocation) in model.ops().iter().enumerate() {
            let kernel = invocation
                .operator()
                .build(&training)
                .unwrap_or_else(|e| panic!("{} op {i} must build: {e}", model.name()));
            cases.push((format!("training/{}/{i}", model.name()), training.clone(), kernel));
        }
    }
    for (chip_name, chip) in
        [("training", ChipSpec::training()), ("inference", ChipSpec::inference())]
    {
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(AddRelu::new(1 << 16)),
            Box::new(AddRelu::new(1 << 16).with_flags(OptFlags::new().rsd(true).mrt(true))),
            Box::new(Depthwise::new(1 << 16)),
            Box::new(Depthwise::new(1 << 16).with_flags(OptFlags::new().itg(true).ais(true))),
            Box::new(AvgPool::new(1 << 16)),
            Box::new(AvgPool::new(1 << 16).with_flags(OptFlags::new().aip(true).rus(true))),
        ];
        for (i, op) in ops.iter().enumerate() {
            let kernel = op
                .build(&chip)
                .unwrap_or_else(|e| panic!("case-study op {i} must build on {chip_name}: {e}"));
            cases.push((format!("{chip_name}/case_study/{i}"), chip.clone(), kernel));
        }
    }
    cases
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/engine_fingerprints.txt")
}

/// The committed fingerprints, the record-by-record differential, and
/// the regeneration path, in one test so the golden file is always
/// produced from engine-agreeing traces.
#[test]
fn engines_agree_and_match_committed_fingerprints() {
    let mut lines = String::new();
    for (name, chip, kernel) in golden_cases() {
        let arena = Simulator::new(chip.clone())
            .simulate(&kernel)
            .unwrap_or_else(|e| panic!("arena engine failed on {name}: {e}"));
        let seed = ReferenceSimulator::new(chip)
            .simulate(&kernel)
            .unwrap_or_else(|e| panic!("seed engine failed on {name}: {e}"));
        assert_eq!(
            arena.total_cycles().to_bits(),
            seed.total_cycles().to_bits(),
            "total cycles diverge on {name}: arena {} vs seed {}",
            arena.total_cycles(),
            seed.total_cycles()
        );
        assert_eq!(arena.records().len(), seed.records().len(), "record count on {name}");
        for (a, s) in arena.records().iter().zip(seed.records()) {
            assert_eq!(a, s, "record diverges on {name}");
        }
        writeln!(lines, "{name}\t{:016x}", trace_fingerprint(&arena)).unwrap();
    }

    let path = golden_path();
    if std::env::var_os("ASCEND_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &lines).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             ASCEND_UPDATE_GOLDEN=1 cargo test --test engine_golden",
            path.display()
        )
    });
    for (current, golden) in lines.lines().zip(committed.lines()) {
        assert_eq!(
            current, golden,
            "engine output drifted from the committed golden fingerprint; if the \
             timing model changed intentionally, regenerate with \
             ASCEND_UPDATE_GOLDEN=1 cargo test --test engine_golden"
        );
    }
    assert_eq!(
        lines.lines().count(),
        committed.lines().count(),
        "golden case list changed; regenerate with ASCEND_UPDATE_GOLDEN=1"
    );
}

/// Outcome of a run, comparable across engines: a full trace on
/// success, the error *class* on failure (the engines format reports
/// from identical state, so classes — not message strings — are the
/// contract).
fn outcome(result: Result<Trace, SimError>) -> Result<Trace, &'static str> {
    result.map_err(|e| match e {
        SimError::Validation(_) => "validation",
        SimError::Arch(_) => "arch",
        SimError::Deadlock(_) => "deadlock",
        SimError::BudgetExceeded { .. } => "budget",
        SimError::Cancelled { .. } => "cancelled",
    })
}

fn assert_same_outcome(name: &str, arena: Result<Trace, SimError>, seed: Result<Trace, SimError>) {
    match (outcome(arena), outcome(seed)) {
        (Ok(a), Ok(s)) => {
            assert_eq!(a.total_cycles().to_bits(), s.total_cycles().to_bits(), "{name}");
            assert_eq!(a.records(), s.records(), "{name}");
        }
        (a, s) => assert_eq!(
            a.as_ref().err(),
            s.as_ref().err(),
            "outcome class diverges on {name}: arena {a:?} vs seed {s:?}"
        ),
    }
}

/// Adversarial kernels under fault plans: both engines walk the same
/// line between completion, deadlock, and watchdog trip.
#[test]
fn fault_injection_outcomes_are_identical() {
    let budget = SimBudget { max_events: 1 << 20, max_cycles: 1e12 };
    let chip = ChipSpec::training();
    for seed in 0u64..48 {
        let kernel = generator::generate(seed.wrapping_mul(0x9E37_79B9), 24);
        let arena = Simulator::new(chip.clone()).with_budget(budget);
        let reference = ReferenceSimulator::new(chip.clone());
        assert_same_outcome(
            &format!("unchecked seed {seed}"),
            arena.simulate_unchecked(&kernel),
            reference.simulate_unchecked(&kernel),
        );
        let plans = [
            FaultPlan::new(seed).with_latency_jitter(0.4).degrade_bandwidth(MteEngine::Gm, 0.5),
            FaultPlan::new(seed).drop_set_flags(1 + seed as usize % 3),
            FaultPlan::new(seed).duplicate_set_flags(1 + seed as usize % 2),
            FaultPlan::new(seed).truncate_to(kernel.len().saturating_sub(seed as usize % 5)),
        ];
        for (p, plan) in plans.into_iter().enumerate() {
            assert_same_outcome(
                &format!("fault plan {p} seed {seed}"),
                arena.simulate_with_faults(&kernel, &plan),
                reference.simulate_with_faults(&kernel, &plan),
            );
        }
    }
}

/// Forensic pending-setter reporting stays a deadlock-only artifact:
/// the report for a stuck kernel names the never-started `set_flag`s
/// (that `Vec` is allocated on the deadlock path only — the audit of
/// the dispatch loop keeps it off the per-event path), and both engines
/// report the same setter indices from the same stuck state.
#[test]
fn pending_setter_forensics_match_and_are_deadlock_only() {
    let chip = ChipSpec::training();
    // A kernel whose only set_flag is dropped by the fault plan: the
    // waiter stalls forever with one pending setter upstream.
    let mut b = ascend::isa::KernelBuilder::new("dropped");
    let f = b.new_flag();
    b.transfer(
        ascend::arch::TransferPath::GmToUb,
        ascend::isa::Region::new(ascend::arch::Buffer::Gm, 0, 2048),
        ascend::isa::Region::new(ascend::arch::Buffer::Ub, 0, 2048),
    )
    .unwrap();
    b.set_flag(ascend::arch::Component::MteGm, f);
    b.wait_flag(ascend::arch::Component::Vector, f);
    b.compute(
        ascend::arch::ComputeUnit::Vector,
        ascend::arch::Precision::Fp16,
        512,
        vec![ascend::isa::Region::new(ascend::arch::Buffer::Ub, 0, 2048)],
        vec![ascend::isa::Region::new(ascend::arch::Buffer::Ub, 0, 2048)],
    );
    let kernel = b.build();
    let plan = FaultPlan::new(11).drop_set_flags(1);

    let Err(SimError::Deadlock(arena)) =
        Simulator::new(chip.clone()).simulate_with_faults(&kernel, &plan)
    else {
        panic!("dropping the only set_flag must deadlock the arena engine");
    };
    let Err(SimError::Deadlock(seed)) =
        ReferenceSimulator::new(chip.clone()).simulate_with_faults(&kernel, &plan)
    else {
        panic!("dropping the only set_flag must deadlock the seed engine");
    };
    // The seed predates rich forensics: its report carries the scalar
    // facts but empty `queues`/`wait_edges`. Hold the arena to scalar
    // parity with the seed, and check its wait-edge forensics against
    // the faulted kernel directly.
    assert_eq!(arena.at_cycle, seed.at_cycle);
    assert_eq!(arena.total, seed.total);
    assert_eq!(arena.remaining, seed.remaining);
    assert_eq!(arena.undispatched, seed.undispatched);
    assert_eq!(arena.barrier_pending, seed.barrier_pending);
    assert_eq!(arena.wait_edges.len(), 1, "one stuck waiter expected");
    let edge = &arena.wait_edges[0];
    assert_eq!(edge.flag, f.raw());
    // Pending setters must be exactly the never-started set_flags of
    // that flag in the *faulted* kernel (here: none — it was dropped).
    let faulted = plan.apply_to_kernel(&kernel);
    let expected: Vec<usize> = faulted
        .instructions()
        .iter()
        .enumerate()
        .filter(|(_, i)| {
            matches!(i, ascend::isa::Instruction::SetFlag { flag, .. } if flag.raw() == f.raw())
        })
        .map(|(i, _)| i)
        .collect();
    let setters: Vec<usize> = edge.pending_setters.iter().map(|p| p.index).collect();
    assert_eq!(setters, expected, "pending setters must mirror the faulted kernel");
    // And the successful (unfaulted) run never surfaces a report at all.
    assert!(Simulator::new(chip).simulate(&kernel).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Reuse is invisible: a simulator that has executed arbitrary prior
    // work — including a deadlocked run that returned its scratch dirty —
    // reproduces a fresh simulator (and the seed engine) bit for bit.
    #[test]
    fn reused_simulator_matches_fresh_and_seed(seed in 0u64..u64::MAX) {
        let budget = SimBudget { max_events: 1 << 20, max_cycles: 1e12 };
        let chip = ChipSpec::training();
        let kernel = generator::generate(seed, 24);
        let other = generator::generate(seed ^ 0xABCD_EF01, 24);

        let reused = Simulator::new(chip.clone()).with_budget(budget);
        // Arbitrary prior work, outcomes irrelevant — only the absence
        // of state leakage matters.
        let _ = reused.simulate_unchecked(&other);
        let first = outcome(reused.simulate_unchecked(&kernel));
        let _ = reused.simulate_unchecked(&other);
        let again = outcome(reused.simulate_unchecked(&kernel));
        let fresh = outcome(
            Simulator::new(chip.clone()).with_budget(budget).simulate_unchecked(&kernel),
        );
        let reference = outcome(ReferenceSimulator::new(chip).simulate_unchecked(&kernel));

        prop_assert_eq!(&first, &again, "rerun on a warmed simulator diverged (seed {})", seed);
        prop_assert_eq!(&first, &fresh, "warmed vs fresh simulator diverged (seed {})", seed);
        match (&first, &reference) {
            (Ok(a), Ok(s)) => {
                prop_assert_eq!(a.total_cycles().to_bits(), s.total_cycles().to_bits());
                prop_assert_eq!(a.records(), s.records());
            }
            (a, s) => prop_assert_eq!(a.as_ref().err(), s.as_ref().err()),
        }
    }
}
