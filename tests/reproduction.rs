//! Paper-anchor tests: the qualitative results of every table and figure
//! must keep reproducing. Exact constants are not asserted (our substrate
//! is a simulator, not the authors' silicon); who wins, by roughly what
//! factor, and which diagnosis fires, are.

use ascend::arch::{ChipSpec, Component, ComputeUnit, MteEngine, TransferPath};
use ascend::models::{convert_for_framework, zoo, Framework, ModelRunner, Phase};
use ascend::ops::{AddRelu, AvgPool, Depthwise, Operator, OptFlags};
use ascend::optimize::{Optimizer, Strategy};
use ascend::profile::{Profile, Profiler};
use ascend::roofline::{analyze, ideal_mte_rate, naive, pruning, Bottleneck, Thresholds};

fn training_analysis(op: &dyn Operator) -> (ChipSpec, ascend::roofline::RooflineAnalysis, f64) {
    let chip = ChipSpec::training();
    let kernel = op.build(&chip).unwrap();
    let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap();
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    (chip, analysis, trace.total_cycles())
}

#[test]
fn figure_3a_contention_case() {
    // The naive model splits a saturated MTE-GM 67/33; the component
    // model reports 100%.
    let chip = ChipSpec::training();
    let bw_a = chip.transfer(TransferPath::GmToL0A).unwrap().bytes_per_cycle;
    let bw_b = chip.transfer(TransferPath::GmToL0B).unwrap().bytes_per_cycle;
    let t = 1_000_000.0;
    let mut p = Profile::empty("fig3a");
    p.total_cycles = t;
    p.bytes.insert(TransferPath::GmToL0A, (bw_a * t * 2.0 / 3.0) as u64);
    p.bytes.insert(TransferPath::GmToL0B, (bw_b * t / 3.0) as u64);
    let na = naive::transfer_utilization(&p, &chip, TransferPath::GmToL0A).unwrap();
    let nb = naive::transfer_utilization(&p, &chip, TransferPath::GmToL0B).unwrap();
    assert!((na - 2.0 / 3.0).abs() < 1e-3 && (nb - 1.0 / 3.0).abs() < 1e-3);
    let ideal = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
    let total_bytes = p.bytes.values().sum::<u64>() as f64;
    assert!((total_bytes / t / ideal - 1.0).abs() < 1e-3);
}

#[test]
fn section_4_3_pruning_chain() {
    assert_eq!(pruning::naive_combinations(), 180);
    assert_eq!(pruning::pruned_pairs().len(), 7);
}

#[test]
fn figure_7_add_relu_iteration_sequence() {
    // (a) IP -> (b) MTE-UB bound -> (c) still MTE-UB bound, faster.
    let (_, a0, t0) = training_analysis(&AddRelu::new(1 << 20));
    assert_eq!(a0.bottleneck(), Bottleneck::InsufficientParallelism);

    let (_, a1, t1) =
        training_analysis(&AddRelu::new(1 << 20).with_flags(OptFlags::new().rsd(true)));
    assert_eq!(a1.bottleneck(), Bottleneck::MteBound(Component::MteUb));
    assert!(a1.peak_utilization() > 0.55 && a1.peak_utilization() < 0.85);

    let (_, a2, t2) =
        training_analysis(&AddRelu::new(1 << 20).with_flags(OptFlags::new().rsd(true).mrt(true)));
    assert_eq!(a2.bottleneck(), Bottleneck::MteBound(Component::MteUb));
    assert!(a2.peak_utilization() > a1.peak_utilization());
    let speedup = t0 / t2.min(t1);
    assert!((1.3..2.6).contains(&speedup), "paper: 1.72x, got {speedup:.2}");
}

#[test]
fn section_5_2_depthwise_ends_mte_gm_bound() {
    let (_, analysis, _) = training_analysis(
        &Depthwise::new(1 << 20)
            .with_flags(OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true)),
    );
    assert_eq!(analysis.bottleneck(), Bottleneck::MteBound(Component::MteGm));
    assert!(
        analysis.peak_utilization() > 0.80,
        "paper reaches 93.54%, got {:.1}%",
        analysis.peak_utilization() * 100.0
    );
}

#[test]
fn section_5_3_avgpool_is_the_inefficient_compute_case() {
    let chip = ChipSpec::inference();
    let base = AvgPool::new(1 << 16);
    let kernel = base.build(&chip).unwrap();
    let (profile, t0) = {
        let (p, tr) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        (p, tr.total_cycles())
    };
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    assert_eq!(analysis.bottleneck(), Bottleneck::InefficientCompute(ComputeUnit::Vector));
    let tuned = base.with_flags(OptFlags::new().aip(true)).build(&chip).unwrap();
    let t1 = ascend::sim::Simulator::new(chip).simulate(&tuned).unwrap().total_cycles();
    assert!((2.5..7.0).contains(&(t0 / t1)), "paper: 4.31x, got {:.2}", t0 / t1);
}

#[test]
fn table_1_strategies_match_the_paper() {
    // Operator -> the strategy family Table 1 reports for it.
    let chip = ChipSpec::inference();
    let optimizer = Optimizer::new(chip);
    const E: u64 = 1 << 17;
    let expectations: Vec<(Box<dyn Operator>, Strategy)> = vec![
        (Box::new(AddRelu::new(E)), Strategy::Rsd),
        (Box::new(AvgPool::new(E / 8)), Strategy::Aip),
        (Box::new(ascend::ops::Elementwise::new(ascend::ops::EltwiseKind::Mul, E)), Strategy::Rsd),
        (Box::new(ascend::ops::Gelu::new(E)), Strategy::Ea),
        (Box::new(ascend::ops::MatMulAdd::new(256, 256, 256)), Strategy::OpFusion),
        (Box::new(ascend::ops::FullyConnection::new(32, 256, 1024)), Strategy::Itg),
    ];
    for (op, expected) in expectations {
        let report = optimizer.run(op.as_ref()).unwrap();
        assert!(
            report.applied_strategies().contains(&expected),
            "{}: expected {expected}, applied {:?}\n{}",
            op.name(),
            report.applied_strategies(),
            report.summary()
        );
        assert!(report.speedup() > 1.05, "{} must speed up", op.name());
    }
}

#[test]
fn figure_13a_pangu_distribution_shape() {
    let runner = ModelRunner::new(ChipSpec::training());
    let report = runner.analyze(&zoo::pangu_alpha()).unwrap();
    let d = report.distribution();
    // Paper: IP 61.48%, MB 34.02%, CB 4.50%.
    assert!((0.50..0.72).contains(&d.share("IP")), "IP {:.3}", d.share("IP"));
    assert!((0.24..0.44).contains(&d.share("MB")), "MB {:.3}", d.share("MB"));
    assert!((0.01..0.10).contains(&d.share("CB")), "CB {:.3}", d.share("CB"));
}

#[test]
fn figure_13b_pangu_optimization_helps_computation_more_than_iteration() {
    let runner = ModelRunner::new(ChipSpec::training());
    let result = runner.optimize(&zoo::pangu_alpha()).unwrap();
    assert!(result.computation_speedup() > 1.3);
    assert!(result.overall_speedup() > 1.1);
    assert!(result.overall_speedup() < result.computation_speedup());
    // Insufficient parallelism share must fall, MTE-bound share must rise.
    let before = result.before.distribution();
    let after = result.after.distribution();
    assert!(after.share("IP") < before.share("IP"));
    assert!(after.share("MB") > before.share("MB"));
}

#[test]
fn section_6_2_2_mobilenet_inference_shape() {
    let runner = ModelRunner::new(ChipSpec::inference());
    let model = zoo::mobilenet_v3(Phase::Inference);
    assert_eq!(model.total_invocations(), 155);
    let d = runner.analyze(&model).unwrap().distribution_by_count();
    // Paper: IP 73.55%, IM 15.48%, IC 6.45%, MB 4.52%.
    assert!((0.62..0.85).contains(&d.share("IP")), "IP {:.3}", d.share("IP"));
    assert!((0.08..0.25).contains(&d.share("IM")), "IM {:.3}", d.share("IM"));
    assert!((0.02..0.12).contains(&d.share("IC")), "IC {:.3}", d.share("IC"));
}

#[test]
fn figure_14b_frameworks_do_not_change_the_distribution() {
    let runner = ModelRunner::new(ChipSpec::inference());
    let model = zoo::mobilenet_v3(Phase::Inference);
    let reference = runner.analyze(&model).unwrap().distribution();
    for framework in Framework::ALL {
        let converted = convert_for_framework(&model, framework);
        let d = runner.analyze(&converted).unwrap().distribution();
        for (label, share) in reference.entries() {
            assert!((d.share(&label) - share).abs() < 1e-9, "{framework}/{label}");
        }
    }
}

#[test]
fn figure_15_speedup_bands() {
    // Paper: computation 1.08-2.70x, overall 1.07-2.15x, and overall is
    // always below computation. Three representative models keep the CI
    // fast; fig15_speedup covers all eleven.
    let runner = ModelRunner::new(ChipSpec::training());
    for model in [zoo::mobilenet_v3(Phase::Training), zoo::llama2(), zoo::pangu_alpha()] {
        let result = runner.optimize(&model).unwrap();
        let comp = result.computation_speedup();
        let overall = result.overall_speedup();
        assert!((1.05..3.0).contains(&comp), "{}: computation {comp:.2}", result.before.model);
        assert!((1.02..2.5).contains(&overall), "{}: overall {overall:.2}", result.before.model);
        assert!(overall < comp);
    }
}

#[test]
fn figure_14c_training_is_more_mte_prone_than_inference_for_gpt2() {
    let training = ModelRunner::new(ChipSpec::training());
    let inference = ModelRunner::new(ChipSpec::inference());
    let t = training.analyze(&zoo::gpt2(Phase::Training)).unwrap().distribution();
    let i = inference.analyze(&zoo::gpt2(Phase::Inference)).unwrap().distribution();
    // Paper: training workloads are more prone to MTE bound; inference
    // tends toward inefficient components.
    assert!(
        t.share("MB") > i.share("MB"),
        "train MB {:.3} vs infer MB {:.3}",
        t.share("MB"),
        i.share("MB")
    );
    assert!(
        i.share("IM") + i.share("IC") > t.share("IM") + t.share("IC"),
        "inference should show more inefficiency"
    );
}
