//! Wire-level fault acceptance suite: every byte-level transport fault
//! the chaos tier can inject — torn frames, bit flips, duplicates,
//! reorders, stalls, interleaved garbage, in both pipe directions —
//! must land the parent in the existing supervision taxonomy
//! (`WorkerProtocol` / `WorkerHung` / `WorkerCrashed` /
//! `WorkerOverMemory`), and must **never**:
//!
//! * serve a result whose frame failed the digest or whose fingerprint
//!   does not match the job (bit-identity for every `Ok`),
//! * wedge a dispatcher thread (every drain quiesces),
//! * leak a child process (no live shard pids after drain),
//! * break the exactly-once ticket ledger.
//!
//! Worker and shard processes are hosted by the dedicated
//! `sandbox_worker` binary (test binaries cannot re-exec themselves).

use ascend::arch::ChipSpec;
use ascend::faults::{WireDirection, WireFault, WireFaultEvent, WireFaultPlan};
use ascend::ops::OpSpec;
use ascend::pipeline::{
    AnalysisPipeline, AnalysisService, ClusterConfig, ClusterService, Isolation, PipelineError,
    Request, SandboxConfig, ServiceConfig,
};
use std::path::PathBuf;
use std::time::Duration;

fn worker_cmd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sandbox_worker"))
}

fn sandbox_config(plan: Option<WireFaultPlan>) -> SandboxConfig {
    SandboxConfig {
        worker_cmd: Some(worker_cmd()),
        heartbeat_interval: Duration::from_millis(15),
        heartbeat_timeout: Duration::from_millis(300),
        wall_clock_limit: Duration::from_secs(3),
        poll_interval: Duration::from_millis(5),
        wire_faults: plan,
        ..SandboxConfig::default()
    }
}

/// Accepts exactly the documented kill taxonomy — anything else (a
/// panic, a `Runtime` error, a `WorkerReported` failure on clean specs)
/// means a wire fault escaped supervision.
fn assert_in_taxonomy(context: &str, err: &PipelineError) {
    match err {
        PipelineError::WorkerProtocol { .. }
        | PipelineError::WorkerHung { .. }
        | PipelineError::WorkerCrashed { .. }
        | PipelineError::WorkerOverMemory { .. } => {}
        other => panic!("{context}: fault escaped the worker taxonomy: {other:?}"),
    }
}

fn clean_specs() -> Vec<OpSpec> {
    vec![
        OpSpec::add_relu(1 << 12),
        OpSpec::softmax(1 << 9),
        OpSpec::layer_norm(1 << 9),
        OpSpec::gelu(1 << 10),
    ]
}

/// Every fault kind, in each direction it is interesting in, against a
/// single-worker sandboxed service: each ticket either succeeds
/// bit-identically or fails inside the taxonomy, and the service always
/// drains to a quiesced, balanced ledger.
#[test]
fn every_wire_fault_kind_lands_in_the_worker_taxonomy() {
    let matrix: Vec<(WireDirection, WireFault)> = vec![
        (WireDirection::ToWorker, WireFault::Tear { keep: 6 }),
        (WireDirection::ToWorker, WireFault::BitFlip { bit: 77 }),
        (WireDirection::ToWorker, WireFault::Garbage { len: 32 }),
        (WireDirection::FromWorker, WireFault::Tear { keep: 9 }),
        (WireDirection::FromWorker, WireFault::BitFlip { bit: 201 }),
        (WireDirection::FromWorker, WireFault::Duplicate),
        (WireDirection::FromWorker, WireFault::Reorder),
        (WireDirection::FromWorker, WireFault::Stall { millis: 600 }),
        (WireDirection::FromWorker, WireFault::Garbage { len: 48 }),
    ];
    let reference = AnalysisPipeline::new(ChipSpec::training());

    for (direction, fault) in matrix {
        let context = format!("{direction} {fault}");
        let plan = WireFaultPlan::from_events(
            0xFA_017,
            vec![WireFaultEvent { shard: 0, direction, nth: 1, fault }],
        );
        let svc = AnalysisService::start(
            AnalysisPipeline::new(ChipSpec::training()),
            ServiceConfig {
                workers: 1,
                isolation: [Isolation::Sandboxed; 2],
                sandbox: sandbox_config(Some(plan)),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = clean_specs()
            .into_iter()
            .map(|spec| (spec, svc.submit(Request::sweep_spec(spec)).expect("admission")))
            .collect();
        let mut failed = 0u64;
        for (spec, ticket) in &tickets {
            match ticket.wait() {
                Ok(result) => {
                    let local = reference.run(spec.instantiate().as_ref()).expect("reference");
                    assert_eq!(
                        *result, *local,
                        "{context}: a served result must be bit-identical for {spec:?}"
                    );
                }
                Err(err) => {
                    failed += 1;
                    assert_in_taxonomy(&context, &err);
                }
            }
        }
        let report = svc.drain(Duration::from_secs(10));
        assert!(report.quiesced, "{context}: drain must quiesce, not wedge");
        let health = svc.health();
        assert_eq!(
            health.counters.terminal_states(),
            health.counters.accepted,
            "{context}: every ticket ends exactly once: {:?}",
            health.counters
        );
        assert_eq!(health.counters.worker_panics, 0, "{context}: no dispatcher panics");
        assert_eq!(health.counters.failed, failed, "{context}: ledger matches observed failures");
    }
}

/// A seeded multi-fault plan (the same expansion `bench chaos` uses)
/// against the sandbox tier: whatever the seed deals, the acceptance is
/// identical — taxonomy, bit-identity, quiesced drain, balanced ledger.
#[test]
fn seeded_wire_fault_sweep_never_escapes_supervision() {
    let reference = AnalysisPipeline::new(ChipSpec::training());
    for seed in [0x51EE_D001u64, 0x51EE_D002, 0x51EE_D003] {
        let plan = WireFaultPlan::expand(seed, 1, 3, 600);
        let context = format!("seed {seed:#x}: {:?}", plan.events);
        let svc = AnalysisService::start(
            AnalysisPipeline::new(ChipSpec::training()),
            ServiceConfig {
                workers: 1,
                isolation: [Isolation::Sandboxed; 2],
                sandbox: sandbox_config(Some(plan)),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..6u64)
            .map(|i| {
                let spec = OpSpec::add_relu((1 << 11) + i * 128);
                (spec, svc.submit(Request::sweep_spec(spec)).expect("admission"))
            })
            .collect();
        for (spec, ticket) in &tickets {
            match ticket.wait() {
                Ok(result) => {
                    let local = reference.run(spec.instantiate().as_ref()).expect("reference");
                    assert_eq!(*result, *local, "{context}: bit-identity for {spec:?}");
                }
                Err(err) => assert_in_taxonomy(&context, &err),
            }
        }
        let report = svc.drain(Duration::from_secs(10));
        assert!(report.quiesced, "{context}: drain must quiesce");
        let health = svc.health();
        assert_eq!(
            health.counters.terminal_states(),
            health.counters.accepted,
            "{context}: exactly-once: {:?}",
            health.counters
        );
    }
}

/// The cluster tier under a cross-shard wire-fault plan: failover and
/// respawn absorb the faults (clean specs still complete — possibly
/// after retries on the surviving shard), the drain quiesces, no shard
/// process outlives the service, and the ledger stays exactly-once.
#[test]
fn cluster_absorbs_wire_faults_with_exactly_once_accounting() {
    let plan = WireFaultPlan::expand(0xC1_0577, 2, 4, 600);
    let context = format!("cluster plan {:?}", plan.events);
    let cluster = ClusterService::start(
        ChipSpec::training(),
        ClusterConfig {
            shards: 2,
            queue_capacity: 256,
            max_failovers: 4,
            sandbox: sandbox_config(None),
            wire_faults: Some(plan),
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_millis(200),
            ..ClusterConfig::default()
        },
    )
    .expect("cluster starts");
    let reference = AnalysisPipeline::new(ChipSpec::training());
    let tickets: Vec<_> = (0..12u64)
        .map(|i| {
            let spec = OpSpec::add_relu((1 << 11) + i * 96);
            (spec, cluster.submit(spec, ascend::pipeline::Priority::Sweep).expect("admission"))
        })
        .collect();
    for (spec, ticket) in &tickets {
        match ticket.wait() {
            Ok(result) => {
                let local = reference.run(spec.instantiate().as_ref()).expect("reference");
                assert_eq!(*result, *local, "{context}: bit-identity for {spec:?}");
            }
            Err(err) => assert_in_taxonomy(&context, &err),
        }
    }
    let report = cluster.drain(Duration::from_secs(20));
    assert!(report.quiesced, "{context}: cluster drain must quiesce");
    let pids: Vec<u32> = cluster.shard_pids().into_iter().flatten().collect();
    for pid in pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "{context}: shard pid {pid} outlived the drain"
        );
    }
    let health = cluster.health();
    let c = &health.counters;
    assert_eq!(
        c.completed_ok + c.failed + c.shed_deadline + c.drain_flushed,
        c.accepted,
        "{context}: exactly-once cluster ledger: {c:?}"
    );
}
