//! Regression tests for the hardened execution path: watchdog budgets,
//! deadlock forensics, per-item panic isolation, and the supervision
//! layer — deadlines, retries, the circuit breaker, analytical
//! degradation, and crash-safe resumable batch journals.

use ascend::arch::{ChipSpec, Component};
use ascend::faults::{corrupt_journal, JournalFault, PanicSwitch};
use ascend::isa::{IsaError, Kernel, KernelBuilder};
use ascend::ops::{AddRelu, Operator, OptFlags};
use ascend::pipeline::{
    AnalysisPipeline, BatchJournal, Fidelity, JournalError, PipelineError, RunPolicy,
    JOURNAL_VERSION,
};
use ascend::sim::{CancelToken, SimBudget, SimError, Simulator};
use std::path::PathBuf;
use std::time::Duration;

/// A kernel long enough to outrun a tiny event budget.
fn long_kernel(len: usize) -> Kernel {
    let mut b = KernelBuilder::new("long");
    for _ in 0..len {
        b.compute(
            ascend::arch::ComputeUnit::Vector,
            ascend::arch::Precision::Fp16,
            1024,
            vec![],
            vec![],
        );
    }
    b.build()
}

#[test]
fn event_budget_exhaustion_is_reported_not_hung() {
    let sim = Simulator::new(ChipSpec::training())
        .with_budget(SimBudget { max_events: 16, max_cycles: 1e15 });
    let err = sim.simulate(&long_kernel(64)).unwrap_err();
    let SimError::BudgetExceeded { events, max_events, .. } = err else {
        panic!("expected BudgetExceeded, got {err}");
    };
    assert_eq!(max_events, 16);
    assert!(events > max_events);

    // The same kernel completes under the default (generous) budget.
    assert!(Simulator::new(ChipSpec::training()).simulate(&long_kernel(64)).is_ok());
}

#[test]
fn deadlock_report_names_the_blocked_queue_and_the_missing_setter() {
    // An unmatched wait: rejected statically, and when run unchecked the
    // engine must return forensics naming the waiter and the absent set.
    let mut b = KernelBuilder::new("hang");
    let f = b.new_flag();
    b.wait_flag(Component::Vector, f);
    let kernel = b.build();

    let chip = ChipSpec::training();
    assert!(ascend::isa::validate(&kernel, &chip).is_err());

    let err = Simulator::new(chip).simulate_unchecked(&kernel).unwrap_err();
    let report = err.deadlock_report().expect("deadlock, not another error");
    assert_eq!(report.kernel, "hang");
    assert_eq!(report.remaining, 1);
    assert_eq!(report.total, 1);
    assert_eq!(report.queues.len(), 1);
    assert_eq!(report.queues[0].queue, Component::Vector);
    assert_eq!(report.wait_edges.len(), 1);
    assert!(report.wait_edges[0].pending_setters.is_empty());

    let rendered = err.to_string();
    assert!(rendered.contains("deadlock in kernel `hang`"), "{rendered}");
    assert!(rendered.contains("queue vector"), "{rendered}");
    assert!(rendered.contains("blocked waiting on flag f0"), "{rendered}");
    assert!(rendered.contains("the wait is unmatched"), "{rendered}");
}

#[test]
fn timing_dependent_wait_races_are_rejected_statically() {
    // The pattern the differential fuzzer found: waits of one flag on
    // different queues, where a fast queue can steal an increment whose
    // intended consumer's remaining producer sits behind it.
    let mut b = KernelBuilder::new("steal");
    let f = b.new_flag();
    b.set_flag(Component::MteUb, f);
    b.set_flag(Component::Scalar, f);
    b.wait_flag(Component::MteL1, f);
    b.set_flag(Component::MteL1, f);
    b.wait_flag(Component::Cube, f);
    b.wait_flag(Component::Vector, f);
    assert!(matches!(
        ascend::isa::validate(&b.build(), &ChipSpec::training()),
        Err(IsaError::UnorderedWaits { flag: 0, .. })
    ));
}

/// An operator whose `build` panics — stands in for a buggy generator.
#[derive(Debug)]
struct ExplodingOp;

impl Operator for ExplodingOp {
    fn name(&self) -> String {
        "exploding".to_string()
    }

    fn flags(&self) -> OptFlags {
        OptFlags::new()
    }

    fn with_flags_dyn(&self, _flags: OptFlags) -> Box<dyn Operator> {
        Box::new(ExplodingOp)
    }

    fn build(&self, _chip: &ChipSpec) -> Result<Kernel, IsaError> {
        panic!("injected failure: generator bug");
    }
}

#[test]
fn one_poisoned_batch_item_cannot_sink_its_siblings() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(1 << 12)),
        Box::new(ExplodingOp),
        Box::new(AddRelu::new(1 << 13)),
        Box::new(AddRelu::new(1 << 14)),
    ];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    for workers in [1, 2, 4] {
        let results = pipeline.run_batch_with_workers(&refs, workers);
        assert_eq!(results.len(), 4);
        for (i, result) in results.iter().enumerate() {
            if i == 1 {
                let Err(PipelineError::Panicked { message }) = result else {
                    panic!("slot 1 must be the panicked one, got {result:?}");
                };
                assert!(message.contains("injected failure"), "{message}");
            } else {
                assert!(result.is_ok(), "slot {i}: {result:?}");
            }
        }
    }
    // The pipeline (and its shared cache) survives the panic.
    assert!(pipeline.run(&AddRelu::new(1 << 12)).is_ok());
}

/// A per-test scratch directory under the system temp dir.
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ascend-robustness-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Wraps an operator with a [`PanicSwitch`] ticked on every `build` —
/// the deterministic stand-in for a process killed mid-batch. The
/// descriptor forwards to the inner operator, so the crashed run and
/// the resumed run (using plain operators) share journal fingerprints,
/// exactly as two invocations of the same binary would.
#[derive(Debug)]
struct CrashingOp {
    inner: AddRelu,
    switch: PanicSwitch,
}

impl Operator for CrashingOp {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn flags(&self) -> OptFlags {
        self.inner.flags()
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        self.inner.with_flags_dyn(flags)
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        self.switch.tick();
        self.inner.build(chip)
    }

    fn descriptor(&self) -> String {
        self.inner.descriptor()
    }
}

/// ISSUE acceptance (a): a 64-item batch killed mid-run resumes via the
/// journal, re-running only the unfinished items.
#[test]
fn killed_batch_resumes_from_the_journal_rerunning_only_the_remainder() {
    let dir = tempdir("resume");
    let journal_path = dir.join("batch.journal.jsonl");
    let sizes: Vec<u64> = (0..64).map(|i| 1024 + 64 * i).collect();

    // First run: panic-at-stage injection "kills" the batch after 24
    // items complete — every later build panics mid-stage.
    let switch = PanicSwitch::after(24);
    let crashing: Vec<Box<dyn Operator>> = sizes
        .iter()
        .map(|&size| {
            Box::new(CrashingOp { inner: AddRelu::new(size), switch: switch.clone() })
                as Box<dyn Operator>
        })
        .collect();
    let refs: Vec<&dyn Operator> = crashing.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let results =
        pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 24);
    assert!(
        matches!(results[24], Err(PipelineError::Panicked { .. })),
        "item 25 is the one that died: {:?}",
        results[24]
    );
    assert_eq!(journal.len(), 24, "exactly the completed items are journaled");
    drop((journal, pipeline));

    // Resumed run: fresh process state — a new pipeline, plain
    // operators, the journal reopened from disk.
    let plain: Vec<Box<dyn Operator>> =
        sizes.iter().map(|&size| Box::new(AddRelu::new(size)) as Box<dyn Operator>).collect();
    let refs: Vec<&dyn Operator> = plain.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    assert_eq!(journal.recovery().recovered, 24);
    assert_eq!(journal.recovery().dropped, 0);
    let resumed = AnalysisPipeline::new(ChipSpec::training());
    let results =
        resumed.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert_eq!(results.len(), 64);
    assert!(results.iter().all(Result::is_ok), "the resumed batch completes whole");
    assert_eq!(resumed.supervisor_stats().journal_skips, 24, "journaled items replay");
    assert_eq!(resumed.timings().runs, 40, "only the unfinished items re-run");
    assert_eq!(journal.len(), 64);
    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE acceptance (b): an item that keeps blowing its per-attempt
/// budget completes the batch as `AnalyticalFallback` instead of
/// failing it — and the degraded result is not cached, so a healthier
/// policy gets a fresh chance to simulate.
#[test]
fn budget_blown_item_completes_the_batch_as_analytical_fallback() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(1 << 12)),
        Box::new(AddRelu::new(1 << 20)), // ~120k cycles: blows the budget below
        Box::new(AddRelu::new(1 << 14)),
    ];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let policy = RunPolicy::default()
        .with_budget(SimBudget { max_events: u64::MAX, max_cycles: 10_000.0 })
        .with_retries(1)
        .with_fallback(true);
    let results = pipeline.run_batch_supervised_with_workers(&refs, 1, &policy);
    let fidelities: Vec<Fidelity> = results
        .iter()
        .map(|r| r.as_ref().expect("fallback keeps the batch whole").fidelity)
        .collect();
    assert_eq!(
        fidelities,
        [Fidelity::Simulated, Fidelity::AnalyticalFallback, Fidelity::Simulated]
    );
    let stats = pipeline.supervisor_stats();
    assert_eq!(stats.retries, 1, "one bounded retry before degrading");
    assert_eq!(stats.budget_trips, 2, "initial attempt plus the retry");
    assert_eq!(stats.hard_failures, 1);
    assert_eq!(stats.fallbacks, 1);

    // Degraded results are not cached: under a permissive policy the
    // same operator simulates for real.
    let healthy = pipeline.run_supervised(ops[1].as_ref(), &RunPolicy::default()).unwrap();
    assert_eq!(healthy.fidelity, Fidelity::Simulated);
}

#[test]
fn lapsed_deadline_preempts_the_item_and_degrades_it() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let policy =
        RunPolicy::default().with_deadline(Duration::ZERO).with_retries(1).with_fallback(true);
    let result = pipeline.run_supervised(&AddRelu::new(1 << 14), &policy).unwrap();
    assert_eq!(result.fidelity, Fidelity::AnalyticalFallback);
    let stats = pipeline.supervisor_stats();
    assert!(stats.deadline_preemptions >= 1, "{stats:?}");
    assert_eq!(stats.fallbacks, 1);
}

#[test]
fn torn_journal_tail_is_dropped_and_only_that_item_re_runs() {
    let dir = tempdir("torn");
    let journal_path = dir.join("batch.journal.jsonl");
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(1 << 10)),
        Box::new(AddRelu::new(1 << 11)),
        Box::new(AddRelu::new(1 << 12)),
    ];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let results =
        pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert!(results.iter().all(Result::is_ok));
    drop((journal, pipeline));

    // Tear the tail of the last record, as a mid-write kill would.
    corrupt_journal(&journal_path, JournalFault::TruncateTailBytes(7)).unwrap();

    let journal = BatchJournal::open(&journal_path).unwrap();
    assert_eq!(journal.recovery().recovered, 2);
    assert_eq!(journal.recovery().dropped, 1);
    let resumed = AnalysisPipeline::new(ChipSpec::training());
    let results =
        resumed.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(resumed.supervisor_stats().journal_skips, 2);
    assert_eq!(resumed.timings().runs, 1, "only the torn item re-runs");
    assert_eq!(journal.len(), 3, "the re-run is journaled again");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicated_journal_records_recover_with_last_wins_semantics() {
    let dir = tempdir("duplicate");
    let journal_path = dir.join("batch.journal.jsonl");
    let ops: Vec<Box<dyn Operator>> =
        vec![Box::new(AddRelu::new(1 << 10)), Box::new(AddRelu::new(1 << 11))];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    drop((journal, pipeline));

    // The duplicate an append-retry-after-crash produces.
    corrupt_journal(&journal_path, JournalFault::DuplicateLastRecord).unwrap();

    let journal = BatchJournal::open(&journal_path).unwrap();
    assert_eq!(journal.recovery().recovered, 2, "duplicates dedup to the last record");
    assert_eq!(journal.recovery().dropped, 0);
    let resumed = AnalysisPipeline::new(ChipSpec::training());
    let results =
        resumed.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(resumed.supervisor_stats().journal_skips, 2, "nothing re-runs");
    assert_eq!(resumed.timings().runs, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// An operator that always panics, with a distinct fingerprint per size.
#[derive(Debug)]
struct ExplodingSized(u64);

impl Operator for ExplodingSized {
    fn name(&self) -> String {
        format!("exploding_{}", self.0)
    }

    fn flags(&self) -> OptFlags {
        OptFlags::new()
    }

    fn with_flags_dyn(&self, _flags: OptFlags) -> Box<dyn Operator> {
        Box::new(ExplodingSized(self.0))
    }

    fn build(&self, _chip: &ChipSpec) -> Result<Kernel, IsaError> {
        panic!("injected failure: generator bug {}", self.0);
    }
}

#[test]
fn consecutive_hard_failures_open_the_breaker_until_reset() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let policy = RunPolicy::default().with_retries(0).with_breaker(2).with_fallback(false);

    // Two consecutive items whose every attempt fails trip the breaker.
    for size in [1, 2] {
        let err = pipeline.run_supervised(&ExplodingSized(size), &policy).unwrap_err();
        assert!(matches!(err, PipelineError::Panicked { .. }), "{err}");
    }
    assert!(pipeline.breaker_is_open());
    assert_eq!(pipeline.supervisor_stats().breaker_trips, 1);

    // A healthy item is now short-circuited without running.
    let err = pipeline.run_supervised(&AddRelu::new(1 << 12), &policy).unwrap_err();
    assert!(
        matches!(err, PipelineError::CircuitOpen { consecutive_failures: 2 }),
        "expected CircuitOpen, got {err}"
    );
    assert_eq!(pipeline.supervisor_stats().breaker_short_circuits, 1);
    assert_eq!(pipeline.timings().runs, 0, "the short-circuited item never ran");

    // After an operator reset, the same item runs for real again.
    pipeline.reset_breaker();
    assert!(!pipeline.breaker_is_open());
    assert!(pipeline.run_supervised(&AddRelu::new(1 << 12), &policy).is_ok());
}

#[test]
fn backoff_schedule_is_reproducible_across_policy_instances() {
    // Two processes building the same policy must sleep the same
    // amounts — retry storms stay reproducible from the printed seed.
    let a = RunPolicy::resilient();
    let b = RunPolicy::resilient();
    for attempt in 1..=4 {
        assert_eq!(a.backoff_delay(0x00A5_CE4D, attempt), b.backoff_delay(0x00A5_CE4D, attempt));
    }
}

#[test]
fn unversioned_v0_journals_still_read_and_replay() {
    let dir = tempdir("v0-journal");
    let journal_path = dir.join("batch.journal.jsonl");
    let ops: Vec<Box<dyn Operator>> =
        vec![Box::new(AddRelu::new(1 << 10)), Box::new(AddRelu::new(1 << 11))];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    drop((journal, pipeline));

    // Rewrite the file as the pre-versioning format: no `version` field.
    let contents = std::fs::read_to_string(&journal_path).unwrap();
    assert!(contents.contains("\"version\":1"), "current builds stamp their version");
    std::fs::write(&journal_path, contents.replace("\"version\":1,", "")).unwrap();

    let journal = BatchJournal::open(&journal_path).unwrap();
    assert_eq!(journal.recovery().recovered, 2, "v0 records read fine");
    assert_eq!(journal.recovery().dropped, 0);
    let resumed = AnalysisPipeline::new(ChipSpec::training());
    let results =
        resumed.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(resumed.supervisor_stats().journal_skips, 2, "v0 records replay");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journals_from_a_newer_build_are_refused_not_rerun() {
    let dir = tempdir("future-journal");
    let journal_path = dir.join("batch.journal.jsonl");
    let ops: Vec<Box<dyn Operator>> = vec![Box::new(AddRelu::new(1 << 10))];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&journal_path).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    drop((journal, pipeline));

    // Stamp the record as if a future build wrote it. Silently dropping
    // it would re-run the item and append an old-format record into a
    // newer-format journal — the open must refuse instead.
    let contents = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::write(&journal_path, contents.replace("\"version\":1", "\"version\":9")).unwrap();

    match BatchJournal::open(&journal_path) {
        Err(JournalError::UnsupportedVersion { found: 9, supported }) => {
            assert_eq!(supported, JOURNAL_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// An operator whose `build` takes a while — long enough that an
/// unbounded cancellation (one that waited out retries, fallback, or
/// the full batch) is clearly distinguishable from a stage-bounded one.
#[derive(Debug)]
struct SlowBuildOp {
    inner: AddRelu,
    delay: Duration,
}

impl Operator for SlowBuildOp {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn flags(&self) -> OptFlags {
        self.inner.flags()
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        self.inner.with_flags_dyn(flags)
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        std::thread::sleep(self.delay);
        self.inner.build(chip)
    }

    fn descriptor(&self) -> String {
        self.inner.descriptor()
    }
}

/// Preemption latency is bounded by one pipeline stage: a token
/// signalled while `build` is in flight preempts at the next stage
/// boundary — it does not wait out retries or produce a fallback, even
/// under a policy that allows five retries of a slow operator.
#[test]
fn cancellation_latency_is_bounded_by_one_stage() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let stage = Duration::from_millis(150);
    let op = SlowBuildOp { inner: AddRelu::new(1 << 12), delay: stage };
    let policy = RunPolicy::default().with_retries(5).with_fallback(true);
    let token = CancelToken::new();

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let started = std::time::Instant::now();
    let result = pipeline.run_supervised_with_cancel(&op, &policy, &token);
    let latency = started.elapsed();
    canceller.join().unwrap();

    match result {
        Err(PipelineError::Runtime(SimError::Cancelled { .. })) => {}
        other => panic!("expected prompt cancellation, got {other:?}"),
    }
    // One in-flight build (150ms) may finish before the boundary poll
    // notices; six retried builds (900ms+) must not happen. The bound
    // leaves generous slack for CI scheduling noise.
    assert!(
        latency < stage * 4,
        "cancellation took {latency:?}; preemption must not wait out retries"
    );
    let stats = pipeline.supervisor_stats();
    assert_eq!(stats.retries, 0, "a cancelled attempt is not retried");
    assert_eq!(stats.fallbacks, 0, "preemption does not degrade to a fallback");
}

/// Regression for the fault-helper retarget: `corrupt_journal` is now a
/// facade over the shared `corrupt_file` disk injector, and journal
/// recovery must behave identically whether a crash is simulated
/// at-rest (truncating a closed file) or live (an append torn mid-write
/// by a `FaultyFile` running out of "disk"). Three framings of the same
/// torn-tail crash, one recovery outcome.
#[test]
fn journal_recovery_is_identical_under_the_shared_disk_injector() {
    use ascend::faults::{corrupt_file, DiskFault, FaultyFile};
    use std::io::Write as _;

    let dir = tempdir("shared-injector");
    let pristine = dir.join("pristine.journal.jsonl");
    let ops: Vec<Box<dyn Operator>> =
        vec![Box::new(AddRelu::new(1 << 10)), Box::new(AddRelu::new(1 << 11))];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    let journal = BatchJournal::open(&pristine).unwrap();
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let results =
        pipeline.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &journal);
    assert!(results.iter().all(Result::is_ok));
    drop(journal);
    let bytes = std::fs::read(&pristine).unwrap();

    // Framing 1: the journal-flavoured facade.
    let via_facade = dir.join("facade.journal.jsonl");
    std::fs::write(&via_facade, &bytes).unwrap();
    corrupt_journal(&via_facade, JournalFault::TruncateTailBytes(7)).unwrap();

    // Framing 2: the shared at-rest injector, called directly.
    let via_disk = dir.join("disk.journal.jsonl");
    std::fs::write(&via_disk, &bytes).unwrap();
    corrupt_file(&via_disk, DiskFault::TruncateTailBytes(7)).unwrap();

    // Framing 3: a live torn write — the journal replayed through a
    // FaultyFile whose "disk" fills 7 bytes short of the full contents.
    let via_live = dir.join("live.journal.jsonl");
    let mut faulty =
        FaultyFile::create(&via_live).unwrap().fail_writes_after(bytes.len() as u64 - 7);
    assert!(faulty.write_all(&bytes).is_err(), "the last record must tear");
    drop(faulty);

    assert_eq!(
        std::fs::read(&via_facade).unwrap(),
        std::fs::read(&via_disk).unwrap(),
        "facade and shared injector must corrupt byte-identically"
    );
    assert_eq!(
        std::fs::read(&via_disk).unwrap(),
        std::fs::read(&via_live).unwrap(),
        "an at-rest truncation and a live torn write must leave the same file"
    );

    for path in [&via_facade, &via_disk, &via_live] {
        let recovered = BatchJournal::open(path).unwrap();
        assert_eq!(recovered.recovery().recovered, 1, "{}", path.display());
        assert_eq!(recovered.recovery().dropped, 1, "{}", path.display());
        // The surviving record replays; the torn one re-runs and is
        // re-journaled — recovery semantics unchanged by the retarget.
        let resumed = AnalysisPipeline::new(ChipSpec::training());
        let results =
            resumed.run_batch_resumable_with_workers(&refs, 1, &RunPolicy::default(), &recovered);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(resumed.supervisor_stats().journal_skips, 1);
        assert_eq!(recovered.len(), 2);
    }
    std::fs::remove_dir_all(&dir).ok();
}
