//! Regression tests for the hardened execution path: watchdog budgets,
//! deadlock forensics, and per-item panic isolation in the pipeline.

use ascend::arch::{ChipSpec, Component};
use ascend::isa::{IsaError, Kernel, KernelBuilder};
use ascend::ops::{AddRelu, Operator, OptFlags};
use ascend::pipeline::{AnalysisPipeline, PipelineError};
use ascend::sim::{SimBudget, SimError, Simulator};

/// A kernel long enough to outrun a tiny event budget.
fn long_kernel(len: usize) -> Kernel {
    let mut b = KernelBuilder::new("long");
    for _ in 0..len {
        b.compute(
            ascend::arch::ComputeUnit::Vector,
            ascend::arch::Precision::Fp16,
            1024,
            vec![],
            vec![],
        );
    }
    b.build()
}

#[test]
fn event_budget_exhaustion_is_reported_not_hung() {
    let sim = Simulator::new(ChipSpec::training())
        .with_budget(SimBudget { max_events: 16, max_cycles: 1e15 });
    let err = sim.simulate(&long_kernel(64)).unwrap_err();
    let SimError::BudgetExceeded { events, max_events, .. } = err else {
        panic!("expected BudgetExceeded, got {err}");
    };
    assert_eq!(max_events, 16);
    assert!(events > max_events);

    // The same kernel completes under the default (generous) budget.
    assert!(Simulator::new(ChipSpec::training()).simulate(&long_kernel(64)).is_ok());
}

#[test]
fn deadlock_report_names_the_blocked_queue_and_the_missing_setter() {
    // An unmatched wait: rejected statically, and when run unchecked the
    // engine must return forensics naming the waiter and the absent set.
    let mut b = KernelBuilder::new("hang");
    let f = b.new_flag();
    b.wait_flag(Component::Vector, f);
    let kernel = b.build();

    let chip = ChipSpec::training();
    assert!(ascend::isa::validate(&kernel, &chip).is_err());

    let err = Simulator::new(chip).simulate_unchecked(&kernel).unwrap_err();
    let report = err.deadlock_report().expect("deadlock, not another error");
    assert_eq!(report.kernel, "hang");
    assert_eq!(report.remaining, 1);
    assert_eq!(report.total, 1);
    assert_eq!(report.queues.len(), 1);
    assert_eq!(report.queues[0].queue, Component::Vector);
    assert_eq!(report.wait_edges.len(), 1);
    assert!(report.wait_edges[0].pending_setters.is_empty());

    let rendered = err.to_string();
    assert!(rendered.contains("deadlock in kernel `hang`"), "{rendered}");
    assert!(rendered.contains("queue vector"), "{rendered}");
    assert!(rendered.contains("blocked waiting on flag f0"), "{rendered}");
    assert!(rendered.contains("the wait is unmatched"), "{rendered}");
}

#[test]
fn timing_dependent_wait_races_are_rejected_statically() {
    // The pattern the differential fuzzer found: waits of one flag on
    // different queues, where a fast queue can steal an increment whose
    // intended consumer's remaining producer sits behind it.
    let mut b = KernelBuilder::new("steal");
    let f = b.new_flag();
    b.set_flag(Component::MteUb, f);
    b.set_flag(Component::Scalar, f);
    b.wait_flag(Component::MteL1, f);
    b.set_flag(Component::MteL1, f);
    b.wait_flag(Component::Cube, f);
    b.wait_flag(Component::Vector, f);
    assert!(matches!(
        ascend::isa::validate(&b.build(), &ChipSpec::training()),
        Err(IsaError::UnorderedWaits { flag: 0, .. })
    ));
}

/// An operator whose `build` panics — stands in for a buggy generator.
#[derive(Debug)]
struct ExplodingOp;

impl Operator for ExplodingOp {
    fn name(&self) -> String {
        "exploding".to_string()
    }

    fn flags(&self) -> OptFlags {
        OptFlags::new()
    }

    fn with_flags_dyn(&self, _flags: OptFlags) -> Box<dyn Operator> {
        Box::new(ExplodingOp)
    }

    fn build(&self, _chip: &ChipSpec) -> Result<Kernel, IsaError> {
        panic!("injected failure: generator bug");
    }
}

#[test]
fn one_poisoned_batch_item_cannot_sink_its_siblings() {
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(1 << 12)),
        Box::new(ExplodingOp),
        Box::new(AddRelu::new(1 << 13)),
        Box::new(AddRelu::new(1 << 14)),
    ];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();
    for workers in [1, 2, 4] {
        let results = pipeline.run_batch_with_workers(&refs, workers);
        assert_eq!(results.len(), 4);
        for (i, result) in results.iter().enumerate() {
            if i == 1 {
                let Err(PipelineError::Panicked { message }) = result else {
                    panic!("slot 1 must be the panicked one, got {result:?}");
                };
                assert!(message.contains("injected failure"), "{message}");
            } else {
                assert!(result.is_ok(), "slot {i}: {result:?}");
            }
        }
    }
    // The pipeline (and its shared cache) survives the panic.
    assert!(pipeline.run(&AddRelu::new(1 << 12)).is_ok());
}
