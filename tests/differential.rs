//! The validator↔engine differential fuzzer.
//!
//! The repository's soundness contract has two one-directional halves:
//!
//! 1. **Accepted ⇒ completes.** Every kernel `validate()` accepts must
//!    simulate to completion — no deadlock, no watchdog trip — with and
//!    without *timing* faults (degraded bandwidth, latency jitter change
//!    when things happen, never whether they happen).
//! 2. **Deadlocks ⇒ rejected.** Every kernel the engine stalls on must
//!    have been rejected by `validate()` — the static analysis may be
//!    conservative, but it must never bless a kernel the engine cannot
//!    finish.
//!
//! Kernels are drawn from the seeded adversarial generator in
//! `ascend-faults`, which deliberately produces both valid and invalid
//! synchronization structures. The vendored proptest honors a
//! `PROPTEST_CASES` environment variable, which CI's fuzz job uses to run
//! a deeper sweep than the local default.

use ascend::arch::{ChipSpec, MteEngine};
use ascend::faults::{generator, FaultPlan, SplitMix64};
use ascend::isa::validate;
use ascend::sim::{SimBudget, SimError, Simulator};
use proptest::prelude::*;

const MAX_LEN: usize = 24;

/// A watchdog tight enough to catch a hung run quickly but far above
/// anything a 24-instruction kernel can legitimately need.
fn guarded_simulator(chip: ChipSpec) -> Simulator {
    Simulator::new(chip).with_budget(SimBudget { max_events: 1 << 20, max_cycles: 1e12 })
}

/// A timing-only fault plan derived from `seed`: degraded (but non-zero)
/// bandwidth on every engine plus bounded latency jitter. Such plans must
/// never change a kernel's liveness.
fn timing_plan(seed: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = FaultPlan::new(seed).with_latency_jitter(rng.unit_f64() * 0.5);
    for engine in MteEngine::ALL {
        plan = plan.degrade_bandwidth(engine, 0.25 + rng.unit_f64());
    }
    assert!(plan.is_timing_only());
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Contract half 1: accepted kernels complete, bare and under timing
    // faults.
    #[test]
    fn accepted_kernels_simulate_to_completion(seed in 0u64..u64::MAX) {
        let chip = ChipSpec::training();
        let kernel = generator::generate(seed, MAX_LEN);
        if validate(&kernel, &chip).is_ok() {
            let sim = guarded_simulator(chip);
            match sim.simulate(&kernel) {
                Ok(_) => {}
                Err(err) => prop_assert!(
                    false,
                    "validated kernel (seed {seed}) failed to complete: {err}"
                ),
            }
            match sim.simulate_with_faults(&kernel, &timing_plan(seed ^ 0xD1FF)) {
                Ok(_) => {}
                Err(err) => prop_assert!(
                    false,
                    "timing faults hung a valid kernel (seed {seed}): {err}"
                ),
            }
        }
    }

    // Contract half 2: anything the engine deadlocks on was rejected.
    #[test]
    fn engine_deadlocks_only_on_rejected_kernels(seed in 0u64..u64::MAX) {
        let chip = ChipSpec::training();
        let kernel = generator::generate(seed, MAX_LEN);
        let sim = guarded_simulator(chip.clone());
        if let Err(SimError::Deadlock(report)) = sim.simulate_unchecked(&kernel) {
            prop_assert!(
                validate(&kernel, &chip).is_err(),
                "engine deadlocked on a kernel the validator accepted (seed {seed}):\n{report}"
            );
        }
    }

    // Sync faults re-enter the contract: a fault-mutated kernel is a new
    // kernel, and the validator's verdict on *it* must still agree with
    // the engine.
    #[test]
    fn sync_faulted_kernels_still_satisfy_the_contract(seed in 0u64..u64::MAX) {
        let chip = ChipSpec::training();
        let kernel = generator::generate(seed, MAX_LEN);
        let mut rng = SplitMix64::new(seed ^ 0x5EED);
        let plan = FaultPlan::new(seed ^ 0x5EED)
            .drop_set_flags(rng.below(3) as usize)
            .duplicate_set_flags(rng.below(3) as usize);
        let mutated = plan.apply_to_kernel(&kernel);
        let sim = guarded_simulator(chip.clone());
        if let Err(SimError::Deadlock(report)) = sim.simulate_unchecked(&mutated) {
            prop_assert!(
                validate(&mutated, &chip).is_err(),
                "engine deadlocked on a mutated kernel the validator accepted \
                 (seed {seed}):\n{report}"
            );
        }
    }

    // The watchdog never fires on generator-sized kernels: whatever the
    // engine's verdict, it must reach it within budget.
    #[test]
    fn watchdog_stays_silent_on_bounded_kernels(seed in 0u64..u64::MAX) {
        let chip = ChipSpec::training();
        let kernel = generator::generate(seed, MAX_LEN);
        let sim = guarded_simulator(chip);
        prop_assert!(
            !matches!(
                sim.simulate_unchecked(&kernel),
                Err(SimError::BudgetExceeded { .. })
            ),
            "watchdog tripped on a {}-instruction kernel (seed {seed})",
            kernel.len()
        );
    }
}
