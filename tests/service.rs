//! Acceptance suite for the resident [`AnalysisService`]: admission
//! control under seeded overload, loss-free shedding, bounded queueing
//! delay, priority scheduling, hedged stragglers, and graceful drain
//! with workers mid-flight and an injected worker panic.
//!
//! The soak test self-calibrates: it measures the service's unloaded
//! latency first and derives the 2x-overload arrival rate from that
//! measurement, so the same invariants hold in debug and release
//! builds.

use ascend::arch::ChipSpec;
use ascend::faults::{FaultPlan, FaultedOperator, LoadProfile, PanicOperator, PanicSwitch};
use ascend::ops::{AddRelu, Operator};
use ascend::pipeline::{AnalysisPipeline, AnalysisService, PipelineError, Request, ServiceConfig};
use std::time::{Duration, Instant};

fn service(config: ServiceConfig) -> AnalysisService {
    AnalysisService::start(AnalysisPipeline::new(ChipSpec::training()), config)
}

/// A unique (never cache-hitting) operator; ~1 ms of work even in
/// release builds, so queueing effects dominate scheduler noise.
fn unique_op(index: u64) -> Box<dyn Operator> {
    Box::new(AddRelu::new((1 << 22) + index * 257))
}

#[test]
fn soak_at_2x_overload_bounds_the_queue_and_loses_nothing() {
    // The queue bound is the knob that caps sojourn time: an admitted
    // item waits at most ~(queue/workers + 1) service times, which must
    // land well inside the 10x-unloaded-p50 envelope even with worker
    // contention inflating per-item service under load.
    const WORKERS: usize = 2;
    const QUEUE: usize = 4;
    let svc = service(ServiceConfig {
        workers: WORKERS,
        queue_capacity: QUEUE,
        ..ServiceConfig::default()
    });

    // Phase 1 — unloaded baseline: closed loop, one request at a time.
    let baseline_start = Instant::now();
    const BASELINE: u64 = 12;
    for i in 0..BASELINE {
        let ticket = svc.submit(Request::interactive(unique_op(i))).unwrap();
        ticket.wait().unwrap();
    }
    let mean_service = baseline_start.elapsed() / u32::try_from(BASELINE).unwrap();
    let unloaded_p50 = svc.health().interactive.p50;
    assert!(unloaded_p50 > 0.0, "baseline must record latency samples");

    // Phase 2 — open-loop replay at 2x the measured service capacity,
    // with a burst riding on top and a seeded fraction of fault-mutated
    // kernels in the mix.
    let capacity_hz = WORKERS as f64 / mean_service.as_secs_f64();
    let profile = LoadProfile::new(0x50A4, 2.0 * capacity_hz, 40 * mean_service)
        .with_burst(10 * mean_service, 3 * mean_service, 3.0)
        .with_interactive_fraction(1.0);
    let schedule = profile.schedule();
    assert!(schedule.len() > 50, "the overload phase needs real traffic");

    let start = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for (i, arrival) in schedule.iter().enumerate() {
        if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let inner = unique_op(BASELINE + i as u64);
        let op: Box<dyn Operator> = if arrival.draw % 8 == 0 {
            Box::new(FaultedOperator::new(inner, FaultPlan::new(arrival.draw).truncate_to(5)))
        } else {
            inner
        };
        match svc.submit(Request::interactive(op)) {
            Ok(ticket) => tickets.push(ticket),
            Err(PipelineError::Overloaded { queue_depth, .. }) => {
                // Shed requests are told, with the depth that shed them —
                // never silently dropped.
                assert_eq!(queue_depth, QUEUE);
                rejected += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
        let depth = svc.health().queue_depth;
        assert!(depth <= QUEUE, "queue depth {depth} exceeded its bound {QUEUE}");
    }
    assert_eq!(
        tickets.len() as u64 + rejected,
        schedule.len() as u64,
        "every arrival was either admitted or told it was shed"
    );
    assert!(rejected > 0, "a sustained 2x overload must shed at admission");

    // Phase 3 — drain and audit the ledger.
    let report = svc.drain(Duration::from_secs(30));
    assert!(report.quiesced, "drain must quiesce: {report:?}");
    let health = svc.health();
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every accepted ticket reaches exactly one terminal state: {:?}",
        health.counters
    );
    assert_eq!(health.counters.accepted, BASELINE + tickets.len() as u64);
    assert_eq!(health.counters.rejected_overload, rejected);
    assert!(
        tickets.iter().all(|t| t.try_result().is_some()),
        "an admitted ticket must be settled after drain"
    );

    // Bounded delay: the admission queue caps sojourn at roughly
    // (queue/workers + 1) service times, inside the 10x envelope.
    let loaded_p99 = health.interactive.p99;
    assert!(
        loaded_p99 < 10.0 * unloaded_p50,
        "p99 under load ({:.2} ms) must stay under 10x unloaded p50 ({:.2} ms)",
        loaded_p99 * 1e3,
        unloaded_p50 * 1e3
    );
}

#[test]
fn drain_returns_on_time_with_workers_midflight_and_a_panic() {
    let svc = service(ServiceConfig { workers: 2, queue_capacity: 32, ..ServiceConfig::default() });
    let mut tickets = Vec::new();
    // A poison item first: wait for its panic so the pool has provably
    // survived one — the regression this test pins is that a panicking
    // item neither wedges drain nor leaks its in-flight slot.
    let poison = PanicOperator::new(Box::new(AddRelu::new(1 << 10)), PanicSwitch::after(0));
    let poison_ticket = svc.submit(Request::sweep(Box::new(poison))).unwrap();
    assert!(
        matches!(poison_ticket.wait(), Err(PipelineError::Panicked { .. })),
        "the poison ticket fails with the panic, not a hang"
    );
    tickets.push(poison_ticket);
    // Then long items: two go mid-flight, the rest stay queued when the
    // drain lands.
    for i in 0..6u64 {
        tickets.push(svc.submit(Request::sweep(Box::new(AddRelu::new((1 << 23) + i)))).unwrap());
    }
    std::thread::sleep(Duration::from_millis(1));

    let deadline = Duration::from_secs(10);
    let report = svc.drain(deadline);
    assert!(report.quiesced, "a panicking item must not wedge drain: {report:?}");
    assert!(report.elapsed < deadline, "drain must beat its deadline: {report:?}");
    assert!(report.flushed_queued > 0, "some items were still queued at drain: {report:?}");

    let health = svc.health();
    // The pipeline's per-item isolation absorbs the operator panic and
    // fails the ticket; `worker_panics` counts only panics escaping
    // that isolation, for which the in-flight guard is the backstop.
    assert!(health.counters.failed >= 1, "{:?}", health.counters);
    assert_eq!(health.counters.worker_panics, 0, "{:?}", health.counters);
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "panic and cancellation still produce exactly one terminal state each: {:?}",
        health.counters
    );
    let outcomes: Vec<_> = tickets.iter().map(|t| t.try_result()).collect();
    assert!(outcomes.iter().all(Option::is_some), "every ticket is settled after drain");
    assert!(
        outcomes.iter().flatten().any(
            |outcome| matches!(outcome, Err(PipelineError::Panicked { message }) if !message.is_empty())
        ),
        "the poison ticket reports the panic"
    );
}

#[test]
fn hedging_rescues_a_straggler_and_counts_the_win() {
    // hedge_after = 0 makes the probe attempt expire on its first
    // deadline poll, deterministically: every uncached item "straggles",
    // is hedged, and the full-policy second attempt wins.
    let svc = service(ServiceConfig {
        workers: 1,
        hedge_after: Some(Duration::ZERO),
        ..ServiceConfig::default()
    });
    let ticket = svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 14)))).unwrap();
    let result = ticket.wait().expect("the hedged attempt succeeds");
    assert!(result.cycles() > 0.0);
    let counters = svc.health().counters;
    assert_eq!(counters.hedges, 1, "{counters:?}");
    assert_eq!(counters.hedge_wins, 1, "{counters:?}");
    svc.drain(Duration::from_secs(5));
}

#[test]
fn interactive_requests_overtake_queued_sweeps() {
    let svc = service(ServiceConfig { workers: 1, queue_capacity: 8, ..ServiceConfig::default() });
    // Occupy the only worker, then queue a sweep before an interactive
    // request: the interactive one must be dequeued first.
    let head = svc.submit(Request::sweep(Box::new(AddRelu::new(1 << 22)))).unwrap();
    let sweep = svc.submit(Request::sweep(Box::new(AddRelu::new((1 << 22) + 1)))).unwrap();
    let interactive = svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 12)))).unwrap();
    interactive.wait().expect("interactive completes");
    assert!(
        sweep.try_result().is_none(),
        "the earlier-queued sweep is still waiting when the interactive answer lands"
    );
    head.wait().expect("head of line completes");
    sweep.wait().expect("sweep completes eventually");
    let report = svc.drain(Duration::from_secs(5));
    assert!(report.quiesced);
}
