//! Kill-matrix acceptance suite for the sandboxed isolation tier.
//!
//! A service whose classes run [`Isolation::Sandboxed`] is fed a batch
//! mixing well-behaved operator specs with the fault library's hostile
//! modes — a hot loop that never polls, an `abort()`, an allocation
//! bomb, muted heartbeats, and two frame-protocol saboteurs. The
//! invariants:
//!
//! * every hostile item terminates with the *matching* typed error
//!   (`WorkerHung` / `WorkerCrashed` / `WorkerOverMemory` /
//!   `WorkerProtocol`),
//! * every clean item's result is **bit-identical** to the in-process
//!   tier's result for the same spec,
//! * the service itself never restarts — it keeps serving after the
//!   matrix — and its ticket accounting balances exactly once,
//! * drain forcefully preempts a sandboxed child instead of waiting out
//!   its wall-clock limit.
//!
//! Worker processes are hosted by the dedicated `sandbox_worker` binary
//! (test binaries cannot re-exec themselves as workers).

use ascend::arch::ChipSpec;
use ascend::faults::HostileMode;
use ascend::ops::OpSpec;
use ascend::pipeline::{
    AnalysisPipeline, AnalysisService, Isolation, PipelineError, Priority, Request, SandboxConfig,
    ServiceConfig,
};
use ascend::sim::SimError;
use std::path::PathBuf;
use std::time::Duration;

fn worker_cmd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sandbox_worker"))
}

/// Sandbox tuning tight enough to keep the whole matrix inside a few
/// seconds: the hot loop dies at the wall clock, the mute dies at the
/// heartbeat timeout, the bomb dies well short of its target.
fn sandbox_config() -> SandboxConfig {
    SandboxConfig {
        worker_cmd: Some(worker_cmd()),
        heartbeat_interval: Duration::from_millis(15),
        heartbeat_timeout: Duration::from_millis(300),
        wall_clock_limit: Duration::from_secs(3),
        rss_limit_bytes: Some(64 * 1024 * 1024),
        poll_interval: Duration::from_millis(5),
        recycle_after: 4,
        wire_faults: None,
    }
}

fn sandboxed_service(chip: ChipSpec) -> AnalysisService {
    AnalysisService::start(
        AnalysisPipeline::new(chip),
        ServiceConfig {
            workers: 2,
            isolation: [Isolation::Sandboxed; 2],
            sandbox: sandbox_config(),
            ..ServiceConfig::default()
        },
    )
}

fn clean_specs() -> Vec<OpSpec> {
    vec![
        OpSpec::add_relu(1 << 12),
        OpSpec::gelu(1 << 10),
        OpSpec::softmax(1 << 9),
        OpSpec::layer_norm(1 << 9),
        OpSpec::matmul(24, 24, 24),
        OpSpec::avg_pool(1 << 10),
    ]
}

#[test]
fn kill_matrix_contains_every_hostile_mode_and_spares_the_rest() {
    let svc = sandboxed_service(ChipSpec::training());

    let hostile = [
        HostileMode::Spin,
        HostileMode::Abort,
        HostileMode::Grow { megabytes: 512 },
        HostileMode::Mute,
        HostileMode::GarbageStdout,
        HostileMode::TruncateFrame,
    ];
    // Interleave clean and hostile work so kills land between healthy
    // jobs on warm workers, not in a separate phase.
    let clean_tickets: Vec<_> = clean_specs()
        .into_iter()
        .map(|spec| svc.submit(Request::sweep_spec(spec)).expect("admission"))
        .collect();
    let hostile_tickets: Vec<_> = hostile
        .iter()
        .map(|mode| {
            svc.submit(Request::from_spec(
                ascend::pipeline::WorkSpec::hostile(*mode),
                Priority::Interactive,
            ))
            .expect("admission")
        })
        .collect();

    for (mode, ticket) in hostile.iter().zip(&hostile_tickets) {
        let err = ticket.wait().expect_err("hostile work must not produce a result");
        match (mode, &err) {
            (HostileMode::Spin, PipelineError::WorkerHung { waited, heartbeats }) => {
                assert!(*waited >= Duration::from_millis(2900), "spin dies at the wall clock");
                assert!(*heartbeats > 0, "a spinning worker still heartbeats");
            }
            (HostileMode::Mute, PipelineError::WorkerHung { waited, .. }) => {
                assert!(
                    *waited < Duration::from_millis(2900),
                    "mute dies at the heartbeat timeout, not the wall clock (waited {waited:?})"
                );
            }
            (HostileMode::Abort, PipelineError::WorkerCrashed { signal: Some(6), code: None }) => {}
            (
                HostileMode::Grow { .. },
                PipelineError::WorkerOverMemory { rss_bytes, budget_bytes },
            ) => {
                assert!(rss_bytes > budget_bytes, "the sample that killed it was over budget");
            }
            (HostileMode::GarbageStdout, PipelineError::WorkerProtocol { detail }) => {
                assert!(detail.contains("magic"), "garbage fails the magic check: {detail}");
            }
            (HostileMode::TruncateFrame, PipelineError::WorkerProtocol { detail }) => {
                assert!(detail.contains("truncated"), "torn frames are named: {detail}");
            }
            (mode, err) => panic!("{mode:?} produced the wrong error: {err:?}"),
        }
    }

    // Bit-identity: the sandboxed results equal a fresh in-process run
    // of the same specs on an identical pipeline (separate service, so
    // no shared cache can mask a divergence).
    let reference = AnalysisPipeline::new(ChipSpec::training());
    for (spec, ticket) in clean_specs().into_iter().zip(&clean_tickets) {
        let sandboxed = ticket.wait().expect("clean work succeeds despite neighboring kills");
        let local = reference.run(spec.instantiate().as_ref()).expect("reference run");
        assert_eq!(*sandboxed, *local, "sandboxed result must be bit-identical for {spec:?}");
    }

    // The service survived: it still serves new work after the matrix.
    let after = svc
        .submit(Request::interactive_spec(OpSpec::add_relu((1 << 12) + 257)))
        .expect("the service keeps accepting after kills")
        .wait()
        .expect("and keeps completing");
    assert!(after.cycles() > 0.0);

    let report = svc.drain(Duration::from_secs(10));
    assert!(report.quiesced, "drain quiesces despite the kill matrix");
    let health = svc.health();
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every admitted ticket ended exactly once: {:?}",
        health.counters
    );
    assert_eq!(health.counters.worker_panics, 0, "kills never surface as service panics");
    assert_eq!(health.counters.completed_ok, 7, "six clean specs plus the post-matrix probe");
    assert_eq!(health.counters.failed, 6, "each hostile item failed exactly once");

    // The kill taxonomy is visible in the health snapshot.
    assert_eq!(health.sandbox.hung, 2, "spin (wall clock) + mute (heartbeat)");
    assert_eq!(health.sandbox.crashed, 1, "abort");
    assert_eq!(health.sandbox.over_memory, 1, "allocation bomb");
    assert_eq!(health.sandbox.protocol, 2, "garbage + truncation");
    assert_eq!(health.sandbox.jobs_ok, 7);
    assert!(health.sandbox.spawned >= 6, "every kill costs (at least) a fresh worker");
}

#[test]
fn warm_workers_are_reused_and_recycled() {
    let svc = sandboxed_service(ChipSpec::inference());
    let mut specs = Vec::new();
    for i in 0..10u64 {
        specs.push(OpSpec::add_relu((1 << 11) + i * 64));
    }
    let tickets: Vec<_> = specs
        .iter()
        .map(|spec| svc.submit(Request::sweep_spec(*spec)).expect("admission"))
        .collect();
    for ticket in &tickets {
        ticket.wait().expect("clean work");
    }
    svc.drain(Duration::from_secs(10));
    let sandbox = svc.health().sandbox;
    assert_eq!(sandbox.jobs_ok, 10);
    assert!(
        sandbox.spawned < 10,
        "warm workers serve multiple jobs (spawned {} for 10 jobs)",
        sandbox.spawned
    );
    assert!(sandbox.recycled >= 1, "the recycle bound (4 jobs) retires workers");
    assert_eq!(sandbox.kills(), 0, "no kills on a clean batch");
}

#[test]
fn drain_preempts_a_sandboxed_child_instead_of_waiting_out_its_clock() {
    let mut config = sandbox_config();
    // Make the wall clock and heartbeat timeouts far longer than the
    // drain bound: only forceful preemption can quiesce in time.
    config.wall_clock_limit = Duration::from_secs(30);
    config.heartbeat_timeout = Duration::from_secs(30);
    let svc = AnalysisService::start(
        AnalysisPipeline::new(ChipSpec::training()),
        ServiceConfig {
            workers: 1,
            isolation: [Isolation::Sandboxed; 2],
            sandbox: config,
            ..ServiceConfig::default()
        },
    );
    let spinner = svc
        .submit(Request::interactive_spec(ascend::pipeline::WorkSpec::hostile(HostileMode::Spin)))
        .expect("admission");
    // Give the child time to actually start spinning.
    std::thread::sleep(Duration::from_millis(200));
    let report = svc.drain(Duration::from_secs(5));
    assert!(report.quiesced, "drain must not wait for a 30s wall clock");
    assert!(report.elapsed < Duration::from_secs(5));
    match spinner.wait() {
        Err(PipelineError::Runtime(SimError::Cancelled { .. })) => {}
        other => panic!("preempted sandboxed work reports cancellation, got {other:?}"),
    }
    let health = svc.health();
    assert_eq!(health.sandbox.preempted, 1, "the kill is attributed to preemption");
    assert_eq!(health.sandbox.hung, 0, "not to a hang");
    assert_eq!(health.counters.terminal_states(), health.counters.accepted);
}
