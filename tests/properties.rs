//! Property-based tests over the core data structures and the simulator's
//! execution invariants.

use ascend::arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend::isa::{Instruction, KernelBuilder, KernelStats, Region};
use ascend::profile::{Profile, Profiler};
use ascend::roofline::{analyze, ideal_compute_rate, Thresholds};
use ascend::sim::Simulator;
use proptest::prelude::*;

/// A randomly generated, well-formed tiled kernel: per tile a GM→UB load,
/// a vector op, and a UB→GM store, with optional sync and in-place reuse.
#[derive(Debug, Clone)]
struct TiledKernelSpec {
    tiles: u64,
    tile_bytes: u64,
    in_place: bool,
    sync: bool,
    barrier_every: u64,
    ops_scale: u64,
}

fn kernel_spec() -> impl Strategy<Value = TiledKernelSpec> {
    (1u64..24, 1u64..32, any::<bool>(), any::<bool>(), 0u64..4, 1u64..6).prop_map(
        |(tiles, kib, in_place, sync, barrier_every, ops_scale)| TiledKernelSpec {
            tiles,
            tile_bytes: kib * 1024,
            in_place,
            sync,
            barrier_every,
            ops_scale,
        },
    )
}

fn build(spec: &TiledKernelSpec) -> ascend::isa::Kernel {
    let mut b = KernelBuilder::new("prop");
    let tile = spec.tile_bytes;
    for i in 0..spec.tiles {
        let gm_in = Region::new(Buffer::Gm, i * tile, tile);
        let gm_out = Region::new(Buffer::Gm, (spec.tiles + i) * tile, tile);
        let ub_in = Region::new(Buffer::Ub, 0, tile);
        let ub_out = if spec.in_place { ub_in } else { Region::new(Buffer::Ub, tile, tile) };
        b.transfer(TransferPath::GmToUb, gm_in, ub_in).unwrap();
        if spec.sync {
            b.sync(Component::MteGm, Component::Vector);
        }
        b.compute(
            ComputeUnit::Vector,
            Precision::Fp16,
            (tile / 2) * spec.ops_scale,
            vec![ub_in],
            vec![ub_out],
        );
        if spec.sync {
            b.sync(Component::Vector, Component::MteUb);
        }
        b.transfer(TransferPath::UbToGm, ub_out, gm_out).unwrap();
        if spec.barrier_every > 0 && i % spec.barrier_every == spec.barrier_every - 1 {
            b.barrier_all();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_is_deterministic(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let sim = Simulator::new(chip);
        let a = sim.simulate(&kernel).unwrap();
        let b = sim.simulate(&kernel).unwrap();
        prop_assert_eq!(a.records(), b.records());
        prop_assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn every_instruction_executes_exactly_once(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let trace = Simulator::new(chip).simulate(&kernel).unwrap();
        prop_assert_eq!(trace.records().len(), kernel.len());
        for (i, record) in trace.records().iter().enumerate() {
            prop_assert_eq!(record.index, i);
            prop_assert!(record.end >= record.start);
            prop_assert!(record.start >= 0.0);
        }
    }

    #[test]
    fn total_time_bounds_every_queue(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let trace = Simulator::new(chip).simulate(&kernel).unwrap();
        for component in Component::ALL {
            prop_assert!(trace.busy_cycles(component) <= trace.total_cycles() + 1e-6);
            let ratio = trace.time_ratio(component);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ratio));
        }
        // And the end-to-end time is at least the critical serial chain of
        // the busiest queue.
        let busiest = Component::ALL
            .into_iter()
            .map(|c| trace.busy_cycles(c))
            .fold(0.0, f64::max);
        prop_assert!(trace.total_cycles() >= busiest - 1e-6);
    }

    #[test]
    fn same_queue_records_never_overlap(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let trace = Simulator::new(chip).simulate(&kernel).unwrap();
        for component in Component::ALL {
            let records = trace.records_of(component);
            for pair in records.windows(2) {
                prop_assert!(
                    pair[1].start >= pair[0].end - 1e-9,
                    "{component}: {:?} overlaps {:?}", pair[0], pair[1]
                );
            }
        }
    }

    #[test]
    fn flags_order_producer_before_consumer(spec in kernel_spec()) {
        prop_assume!(spec.sync);
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let trace = Simulator::new(chip).simulate(&kernel).unwrap();
        // Every wait starts at or after its matching set completes
        // (counting semantics: k-th set matches k-th wait per flag).
        let mut sets: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        let mut waits: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for (instr, record) in kernel.instructions().iter().zip(trace.records()) {
            match instr {
                Instruction::SetFlag { flag, .. } => sets.entry(flag.raw()).or_default().push(record.end),
                Instruction::WaitFlag { flag, .. } => waits.entry(flag.raw()).or_default().push(record.start),
                _ => {}
            }
        }
        for (flag, wait_times) in waits {
            let set_times = &sets[&flag];
            for (k, wait) in wait_times.iter().enumerate() {
                prop_assert!(*wait >= set_times[k] - 1e-9, "flag {flag} wait {k}");
            }
        }
    }

    #[test]
    fn profile_matches_static_stats(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let (profile, _) = Profiler::new(chip).run(&kernel).unwrap();
        let stats = KernelStats::of(&kernel);
        prop_assert_eq!(&profile.ops, &stats.ops);
        prop_assert_eq!(&profile.bytes, &stats.bytes);
    }

    #[test]
    fn utilization_identity_holds_for_random_kernels(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let kernel = build(&spec);
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        for m in analysis.metrics() {
            prop_assert!((m.utilization - m.efficiency * m.time_ratio).abs() < 1e-9);
            prop_assert!(m.utilization <= 1.0 + 1e-9, "{}: U={}", m.component, m.utilization);
        }
    }

    #[test]
    fn in_place_reuse_never_beats_separate_buffers(
        tiles in 2u64..16, kib in 2u64..32, ops_scale in 1u64..4,
    ) {
        let chip = ChipSpec::training();
        let base = TiledKernelSpec {
            tiles, tile_bytes: kib * 1024, in_place: true, sync: true,
            barrier_every: 0, ops_scale,
        };
        let rsd = TiledKernelSpec { in_place: false, ..base.clone() };
        let sim = Simulator::new(chip);
        let t_in_place = sim.simulate(&build(&base)).unwrap().total_cycles();
        let t_separate = sim.simulate(&build(&rsd)).unwrap().total_cycles();
        prop_assert!(
            t_separate <= t_in_place + 1e-6,
            "separate result buffers can only help: {t_separate} > {t_in_place}"
        );
    }

    #[test]
    fn barriers_never_speed_things_up(spec in kernel_spec()) {
        let chip = ChipSpec::training();
        let with = build(&spec);
        let without = build(&TiledKernelSpec { barrier_every: 0, ..spec.clone() });
        let sim = Simulator::new(chip);
        let t_with = sim.simulate(&with).unwrap().total_cycles();
        let t_without = sim.simulate(&without).unwrap().total_cycles();
        prop_assert!(t_without <= t_with + 1e-6);
    }

    #[test]
    fn harmonic_mean_ideal_is_bounded_by_the_peaks(
        fp16 in 1u64..1_000_000, int8 in 1u64..1_000_000,
    ) {
        let chip = ChipSpec::training();
        let mut p = Profile::empty("prop");
        p.ops.insert((ComputeUnit::Cube, Precision::Fp16), fp16);
        p.ops.insert((ComputeUnit::Cube, Precision::Int8), int8);
        let ideal = ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        let lo = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
        let hi = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
        prop_assert!(ideal >= lo - 1e-9 && ideal <= hi + 1e-9);
    }

    #[test]
    fn regions_overlap_iff_intervals_intersect(
        a_off in 0u64..10_000, a_len in 0u64..4_096,
        b_off in 0u64..10_000, b_len in 0u64..4_096,
    ) {
        let a = Region::new(Buffer::Ub, a_off, a_len);
        let b = Region::new(Buffer::Ub, b_off, b_len);
        let expected = a_len > 0 && b_len > 0 && a_off < b_off + b_len && b_off < a_off + a_len;
        prop_assert_eq!(a.overlaps(&b), expected);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}
