//! The online divergence-audit tier: forensic comparison, quarantine,
//! and engine demotion.
//!
//! The load-bearing guarantee is *no false negatives*: a seeded
//! property test perturbs exactly one observable field of a shadow
//! trace — any record's queue, timestamps, duration, stall attribution,
//! the total, or the record count itself — and the comparator must
//! produce a [`DivergenceReport`] every time (and a changed
//! fingerprint, since sampling and quarantine key off the fingerprint).
//! The integration tests then drive a [`BuggyEngine`] through the
//! inline audit path and prove the operational contract: a caught
//! fingerprint is purged from the memory cache *and* barred from the
//! durable store across restart, the request is re-answered from the
//! oracle as `Fidelity::Audited`, the divergence breaker demotes the
//! pipeline to the reference engine, and none of it ever trips the
//! transient-failure breaker (a correctness defect is not a transient).

use ascend::arch::{ChipSpec, Component};
use ascend::faults::BuggyEngine;
use ascend::ops::{AddRelu, Operator};
use ascend::pipeline::divergence::{self, trace_fingerprint};
use ascend::pipeline::{AnalysisPipeline, AuditPolicy, Fidelity, ResultStore};
use ascend::sim::{Simulator, StallCause, Trace};
use proptest::prelude::*;
use std::path::PathBuf;

fn base_trace() -> Trace {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(4096).build(&chip).unwrap();
    Simulator::new(chip).simulate(&kernel).unwrap()
}

/// A unique scratch directory per test; callers clean it up on success
/// so a failing run leaves the evidence behind.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ascend-audit-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Applies one single-field perturbation to a copy of `trace`.
/// `field` selects what to corrupt, `pick` selects which record, and
/// `nudge` how many ULPs (never zero) an `f64` moves.
fn perturb(trace: &Trace, field: u8, pick: usize, nudge: u64) -> Trace {
    let mut records = trace.records().to_vec();
    let mut total = trace.total_cycles();
    let i = pick % records.len();
    match field {
        0 => {
            let r = &mut records[i];
            r.available_at = f64::from_bits(r.available_at.to_bits().wrapping_add(nudge));
        }
        1 => {
            let r = &mut records[i];
            r.start = f64::from_bits(r.start.to_bits().wrapping_add(nudge));
        }
        2 => {
            // The BuggyEngine-shaped defect: a skewed duration.
            let r = &mut records[i];
            r.end = f64::from_bits(r.end.to_bits().wrapping_add(nudge));
        }
        3 => {
            let r = &mut records[i];
            r.stall = match r.stall {
                StallCause::None => StallCause::QueueBusy,
                StallCause::QueueBusy => StallCause::Flag,
                StallCause::Flag => StallCause::Region,
                StallCause::Region => StallCause::None,
            };
        }
        4 => {
            let r = &mut records[i];
            r.queue = match r.queue {
                None => Some(Component::Vector),
                Some(Component::Vector) => Some(Component::Cube),
                Some(_) => None,
            };
        }
        5 => total = f64::from_bits(total.to_bits().wrapping_add(nudge)),
        _ => {
            // Structural: the shadow run produced fewer records.
            records.remove(i);
        }
    }
    Trace::from_parts(trace.kernel_name(), records, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // No false negatives: every single-field perturbation of a shadow
    // trace yields a report, and moves the fingerprint the sampler and
    // quarantine key off.
    #[test]
    fn any_single_perturbation_is_reported(
        field in 0u8..7,
        pick in 0usize..64,
        nudge in 1u64..32,
    ) {
        let base = base_trace();
        let bad = perturb(&base, field, pick, nudge);
        let report = divergence::compare(&base, &bad);
        prop_assert!(
            report.is_some(),
            "field {field} pick {pick} nudge {nudge}: perturbation went undetected"
        );
        prop_assert!(
            trace_fingerprint(&base) != trace_fingerprint(&bad),
            "perturbation must move the fingerprint"
        );
        // And the comparator is not trigger-happy: identical traces are
        // clean in the same breath.
        prop_assert!(divergence::compare(&base, &base).is_none());
    }
}

/// A caught fingerprint is gone from the memory cache and barred from
/// the durable store — including across restart — and the request is
/// re-answered from the oracle.
#[test]
fn quarantine_purges_memory_and_disk_across_restart() {
    let dir = scratch("quarantine");
    let path = dir.join("store.astr");
    let truth = AnalysisPipeline::new(ChipSpec::training());
    let op = AddRelu::new(4096);

    let pipeline = AnalysisPipeline::new(ChipSpec::training())
        .with_store(&path)
        .unwrap()
        .with_buggy_engine(BuggyEngine::new(0xBAD))
        .with_audit(AuditPolicy::default().with_rate(1.0).with_demotion(10, 64));
    let result = pipeline.run(&op).unwrap();
    assert_eq!(result.fidelity, Fidelity::Audited, "audited request is re-answered by the oracle");
    let expected = truth.run(&op).unwrap();
    assert!(divergence::compare(&result.trace, &expected.trace).is_none());
    let stats = pipeline.audit_stats();
    assert_eq!((stats.audits, stats.divergences, stats.quarantined), (1, 1, 1));
    assert!(!pipeline.breaker_is_open(), "audits must not feed the transient-failure breaker");

    // The memory cache holds the oracle answer now, not the poisoned one.
    let hits_before = pipeline.cache_stats().hits;
    let again = pipeline.run(&op).unwrap();
    assert_eq!(pipeline.cache_stats().hits, hits_before + 1, "second ask is a cache hit");
    assert_eq!(again.fidelity, Fidelity::Audited);
    assert!(divergence::compare(&again.trace, &expected.trace).is_none());
    pipeline.flush_store();
    drop(pipeline);

    // On disk: a tombstone and nothing live (Audited results are never
    // persisted, and the tombstone bars the fingerprint for good).
    let report = ResultStore::verify(&path).unwrap();
    assert!(report.is_clean(), "store must verify clean: {report}");
    assert_eq!((report.tombstones, report.live, report.resurrected), (1, 0, 0));

    // Across restart: a clean pipeline must recompute, not resurrect.
    let fresh = AnalysisPipeline::new(ChipSpec::training()).with_store(&path).unwrap();
    let recomputed = fresh.run(&op).unwrap();
    assert!(divergence::compare(&recomputed.trace, &expected.trace).is_none());
    assert_eq!(fresh.store_stats().unwrap().hits, 0, "quarantined key must never hit disk");
    assert_eq!(fresh.timings().runs, 1, "the key re-simulates from scratch");
    std::fs::remove_dir_all(&dir).ok();
}

/// The divergence-rate breaker demotes the whole pipeline to the
/// reference engine: the buggy fast path is out of the serving path for
/// the rest of the run, and sampling stops with it.
#[test]
fn breaker_demotes_to_reference_engine() {
    let truth = AnalysisPipeline::new(ChipSpec::training());
    let pipeline = AnalysisPipeline::new(ChipSpec::training())
        .with_buggy_engine(BuggyEngine::new(0xBAD))
        .with_audit(AuditPolicy::default().with_rate(1.0).with_demotion(1, 16));

    let first = pipeline.run(&AddRelu::new(2048)).unwrap();
    assert_eq!(first.fidelity, Fidelity::Audited);
    assert!(pipeline.is_demoted(), "one divergence trips demote_after = 1");
    assert!(pipeline.audit_stats().demoted);

    // Every subsequent request is answered by the reference engine:
    // oracle-exact despite the buggy engine still being configured.
    for elements in [1024u64, 4096, 8192] {
        let got = pipeline.run(&AddRelu::new(elements)).unwrap();
        assert_eq!(
            got.fidelity,
            Fidelity::Simulated,
            "demotion is an engine swap, not a downgrade"
        );
        let expected = truth.run(&AddRelu::new(elements)).unwrap();
        assert!(
            divergence::compare(&got.trace, &expected.trace).is_none(),
            "demoted pipeline must serve reference-exact results"
        );
    }
    assert_eq!(pipeline.audit_stats().audits, 1, "a demoted pipeline stops sampling");
    assert!(!pipeline.breaker_is_open(), "demotion is not a transient failure");
}

/// Control: with the audit tier off, the buggy engine's output *does*
/// reach the caller — proving the detections above are the audit tier's
/// doing, not some upstream validation.
#[test]
fn without_audit_the_bug_is_served() {
    let truth = AnalysisPipeline::new(ChipSpec::training());
    let pipeline =
        AnalysisPipeline::new(ChipSpec::training()).with_buggy_engine(BuggyEngine::new(0xBAD));
    let op = AddRelu::new(4096);
    let got = pipeline.run(&op).unwrap();
    assert_eq!(got.fidelity, Fidelity::Simulated);
    let expected = truth.run(&op).unwrap();
    let report = divergence::compare(&got.trace, &expected.trace);
    assert!(report.is_some(), "the buggy engine must actually perturb the trace");
    assert!(!pipeline.audit_stats().any_activity());
}
