//! Tooling-layer integration: the text kernel format, trace exports,
//! markdown reports, calibration, and the autotuner, driven end to end.

use ascend::arch::{ChipSpec, Component, ComputeUnit, MteEngine, Precision};
use ascend::isa::{kernel_to_text, parse_kernel};
use ascend::ops::{AddRelu, Operator, OptFlags};
use ascend::optimize::autotune::tune;
use ascend::profile::calibration;
use ascend::profile::Profiler;
use ascend::roofline::{analyze, report, Thresholds};
use ascend::sim::{Simulator, StallCause};

#[test]
fn generated_kernels_survive_a_text_round_trip_and_simulate_identically() {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(1 << 16).with_flags(OptFlags::new().rsd(true)).build(&chip).unwrap();
    let text = kernel_to_text(&kernel);
    let reparsed = parse_kernel(&text).unwrap();
    assert_eq!(kernel, reparsed);
    let sim = Simulator::new(chip);
    assert_eq!(
        sim.simulate(&kernel).unwrap().total_cycles(),
        sim.simulate(&reparsed).unwrap().total_cycles()
    );
}

#[test]
fn chrome_trace_labels_match_the_kernel() {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(1 << 14).build(&chip).unwrap();
    let trace = Simulator::new(chip).simulate(&kernel).unwrap();
    let labels: Vec<String> = kernel.iter().map(ToString::to_string).collect();
    let json = trace.to_chrome_trace(Some(&labels));
    assert!(json.contains("move gm->ub"));
    assert!(json.contains("vector.fp16"));
    // Well-formed enough for a JSON parser.
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), kernel.len());
}

#[test]
fn stall_attribution_accounts_for_queue_delays() {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(1 << 17).build(&chip).unwrap();
    let trace = Simulator::new(chip).simulate(&kernel).unwrap();
    // Total queue delay equals the sum over the attribution classes.
    for component in Component::ALL {
        let total: f64 = trace.records_of(component).iter().map(|r| r.queue_delay()).sum();
        let by_cause: f64 =
            [StallCause::None, StallCause::QueueBusy, StallCause::Flag, StallCause::Region]
                .into_iter()
                .map(|c| trace.stall_cycles(component, c))
                .sum();
        assert!((total - by_cause).abs() < 1e-6, "{component}");
    }
    // The in-place baseline must show real region stalls somewhere.
    let region_stalls: f64 =
        Component::ALL.into_iter().map(|c| trace.stall_cycles(c, StallCause::Region)).sum();
    assert!(region_stalls > 0.0, "the RSD pathology must appear as region stalls");
}

#[test]
fn sparkline_tracks_the_gantt() {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(1 << 17).build(&chip).unwrap();
    let trace = Simulator::new(chip).simulate(&kernel).unwrap();
    let series = trace.utilization_series(Component::MteUb, 20);
    assert_eq!(series.len(), 20);
    assert!(series.iter().all(|v| (0.0..=1.0).contains(v)));
    let mean: f64 = series.iter().sum::<f64>() / 20.0;
    assert!((mean - trace.time_ratio(Component::MteUb)).abs() < 0.05);
}

#[test]
fn markdown_report_flows_from_any_operator() {
    let chip = ChipSpec::inference();
    let kernel = AddRelu::new(1 << 16).build(&chip).unwrap();
    let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    let md = report::to_markdown(&analysis, &profile, &chip);
    assert!(md.contains("add_relu"));
    assert!(md.contains("insufficient parallelism"));
}

#[test]
fn calibration_matches_spec_derived_efficiency() {
    let chip = ChipSpec::training();
    let bytes = 64 << 10;
    let point = calibration::measure_bandwidth(&chip, ascend::arch::TransferPath::GmToUb, bytes, 8)
        .unwrap();
    let spec = chip.transfer(ascend::arch::TransferPath::GmToUb).unwrap();
    // Back-to-back streaming achieves exactly the per-transfer efficiency
    // (the queue never idles), modulo the single dispatch lead-in.
    assert!((point.fraction() - spec.efficiency(bytes)).abs() < 0.02);
}

#[test]
fn autotuner_beats_a_bad_manual_tile() {
    let chip = ChipSpec::training();
    let result = tune(&chip, &[512, 4096, 16384, 49152], |tile| {
        Box::new(AddRelu::new(1 << 18).with_tile(tile))
    })
    .unwrap();
    let bad = {
        let op = AddRelu::new(1 << 18).with_tile(512);
        let kernel = op.build(&chip).unwrap();
        Simulator::new(chip).simulate(&kernel).unwrap().total_cycles()
    };
    assert!(result.best_cycles < bad);
    assert!(result.best_value > 512);
}

#[test]
fn chip_scaling_composes() {
    let custom = ChipSpec::training()
        .with_mte_bandwidth_scale(MteEngine::Gm, 2.0)
        .with_compute_scale(ComputeUnit::Vector, 2.0)
        .with_frequency(2.0e9);
    assert!(
        custom.peak_ops_per_sec(ComputeUnit::Vector, Precision::Fp16).unwrap()
            > ChipSpec::training().peak_ops_per_sec(ComputeUnit::Vector, Precision::Fp16).unwrap()
    );
    // A kernel still simulates on the custom part, faster.
    let base = ChipSpec::training();
    let kernel = AddRelu::new(1 << 16).build(&base).unwrap();
    let t0 = Simulator::new(base).simulate(&kernel).unwrap().total_cycles();
    let t1 = Simulator::new(custom).simulate(&kernel).unwrap().total_cycles();
    assert!(t1 < t0);
}
