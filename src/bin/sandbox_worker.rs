//! Dedicated sandbox-worker host: a binary whose only job is to serve
//! sandboxed pipeline work (see `ascend_pipeline::SandboxedExecutor`).
//!
//! The production binaries self-host workers by re-executing themselves
//! (their `main` calls `run_worker_if_requested` first thing). Test
//! harnesses cannot — the test binary Cargo runs does not own its
//! `main` — so they point `SandboxConfig::worker_cmd` at this binary via
//! `env!("CARGO_BIN_EXE_sandbox_worker")`.

fn main() {
    ascend_pipeline::run_worker_if_requested();
    eprintln!(
        "sandbox_worker only serves sandbox jobs; run it with {}=1 and a parent supervisor",
        ascend_pipeline::WORKER_ENV
    );
    std::process::exit(2);
}
