//! Dedicated worker host: a binary whose only job is to serve
//! supervised child-process work — sandbox jobs (see
//! `ascend_pipeline::SandboxedExecutor`) or a resident cluster shard
//! (see `ascend_pipeline::ClusterService`), depending on which marker
//! env var the parent set.
//!
//! The production binaries self-host workers by re-executing themselves
//! (their `main` calls `run_worker_if_requested` first thing). Test
//! harnesses cannot — the test binary Cargo runs does not own its
//! `main` — so they point `SandboxConfig::worker_cmd` at this binary via
//! `env!("CARGO_BIN_EXE_sandbox_worker")`.

fn main() {
    ascend_pipeline::run_worker_if_requested();
    eprintln!(
        "sandbox_worker only serves supervised jobs; run it under a parent supervisor with \
         {}=1 (sandbox worker) or {}=1 (cluster shard)",
        ascend_pipeline::WORKER_ENV,
        ascend_pipeline::CLUSTER_SHARD_ENV
    );
    std::process::exit(2);
}
