#![warn(missing_docs)]

//! Umbrella crate: re-exports every crate of the Ascend roofline workspace.
pub use ascend_arch as arch;
pub use ascend_faults as faults;
pub use ascend_isa as isa;
pub use ascend_models as models;
pub use ascend_ops as ops;
pub use ascend_optimize as optimize;
pub use ascend_pipeline as pipeline;
pub use ascend_profile as profile;
pub use ascend_roofline as roofline;
pub use ascend_sim as sim;
