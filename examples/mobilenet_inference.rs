//! The MobileNetV3 inference end-to-end study (paper, Section 6.2.2):
//! analyze all 155 operators, optimize the stream, compare distributions.
//!
//! Run with `cargo run --release --example mobilenet_inference`.

use ascend::arch::ChipSpec;
use ascend::models::{convert_for_framework, zoo, Framework, ModelRunner, Phase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::inference();
    let runner = ModelRunner::new(chip.clone());
    let model = zoo::mobilenet_v3(Phase::Inference);
    println!("{} operators per inference pass", model.total_invocations());

    let result = runner.optimize(&model)?;
    println!("\nbefore:\n{}", result.before.summary());
    println!("after:\n{}", result.after.summary());
    println!(
        "computation: {:.0} us -> {:.0} us ({:.2}x)",
        chip.cycles_to_micros(result.before.total_cycles),
        chip.cycles_to_micros(result.after.total_cycles),
        result.computation_speedup()
    );

    // Framework frontends barely matter (Figure 14b).
    println!("\nbottleneck distribution per framework frontend:");
    for framework in Framework::ALL {
        let converted = convert_for_framework(&model, framework);
        let report = runner.analyze(&converted)?;
        println!("  {:<12} {}", framework.name(), report.distribution_by_count().summary());
    }

    // Every analysis above shared one cached pipeline.
    println!("\n{}", runner.pipeline().instrumentation_footer());
    Ok(())
}
