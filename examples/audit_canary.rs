//! Chaos canary for the online divergence-audit tier: a deliberately
//! buggy fast engine serves perturbed results, and the canary proves
//! the audit tier catches it within its sampling budget, quarantines
//! every caught fingerprint (memory *and* disk, surviving restart),
//! demotes the pipeline to the reference engine, and never serves a
//! caught-divergent result again.
//!
//! Run with `cargo run --release --example audit_canary`; CI runs it in
//! the `chaos-audit` job. Everything is seeded: the buggy engine, the
//! audit sampler, and the op stream replay identically, so the
//! detection-latency assertions are exact, not statistical.
//!
//! Three phases:
//! 1. **Inline detection** — a pipeline with `BuggyEngine` (every key
//!    afflicted) and an inline audit at rate `r` must flag its first
//!    divergence within `3/r` requests and demote after the configured
//!    divergence count, with every flagged request re-answered from the
//!    oracle as `Fidelity::Audited`.
//! 2. **Restart** — a clean pipeline over the same store file must
//!    recompute every quarantined key from scratch (tombstones bar the
//!    poisoned records from recovery), and `bench store verify`
//!    semantics (`ResultStore::verify`) must report the segment clean
//!    with the expected tombstone count and zero resurrections.
//! 3. **Service end-to-end** — an `AnalysisService` with the deferred
//!    audit tier drains shadow audits on worker slack, trips the same
//!    demotion breaker, and serves reference-fidelity results
//!    afterwards.

use ascend::arch::ChipSpec;
use ascend::faults::BuggyEngine;
use ascend::ops::AddRelu;
use ascend::pipeline::divergence;
use ascend::pipeline::{
    AnalysisPipeline, AnalysisService, AuditPolicy, Fidelity, Request, ResultStore, ServiceConfig,
};
use std::time::{Duration, Instant};

const AUDIT_RATE: f64 = 0.25;
const DEMOTE_AFTER: u32 = 2;
const BUG_SEED: u64 = 0x0B06_5EED;

/// Detection budget from the acceptance contract: a divergence must be
/// flagged within `3/r` requests of continuous buggy traffic.
const DETECT_BUDGET: u64 = (3.0 / AUDIT_RATE) as u64;

/// The deterministic op stream: distinct shapes so every request is a
/// distinct fingerprint (no cache hits masking the engine).
fn op_for(i: u64) -> AddRelu {
    AddRelu::new(1_000 + i * 97)
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("ascend-audit-canary-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let store_path = scratch.join("canary.astr");

    let truth = AnalysisPipeline::new(ChipSpec::training());
    let policy = AuditPolicy::default().with_rate(AUDIT_RATE).with_demotion(DEMOTE_AFTER, 64);
    let bug = BuggyEngine::new(BUG_SEED);

    // Phase 1: inline detection and demotion under continuous bad output.
    let pipeline = AnalysisPipeline::new(ChipSpec::training())
        .with_store(&store_path)
        .expect("canary store must attach")
        .with_buggy_engine(bug)
        .with_audit(policy.clone());

    let budget = DETECT_BUDGET * u64::from(DEMOTE_AFTER);
    let mut first_detection = None;
    let mut demoted_at = None;
    let mut quarantined: Vec<u64> = Vec::new();
    for i in 0..budget {
        let op = op_for(i);
        let result = pipeline.run(&op).expect("buggy engine still completes");
        if result.fidelity == Fidelity::Audited {
            first_detection.get_or_insert(i);
            quarantined.push(i);
            // The re-answered result must be oracle-exact, not the
            // perturbed one the fast engine produced.
            let expected = truth.run(&op).unwrap();
            assert!(
                divergence::compare(&result.trace, &expected.trace).is_none(),
                "request {i}: audited result must match the oracle"
            );
        }
        if pipeline.is_demoted() {
            demoted_at = Some(i);
            break;
        }
    }
    let first = first_detection.expect("audit tier never flagged a divergence");
    assert!(
        first < DETECT_BUDGET,
        "first detection took {} requests, budget is {DETECT_BUDGET}",
        first + 1
    );
    let demoted_at = demoted_at.expect("divergence breaker never tripped");
    let stats = pipeline.audit_stats();
    assert!(stats.demoted, "stats must report demotion");
    assert_eq!(stats.divergences, u64::from(DEMOTE_AFTER), "breaker trips exactly on threshold");
    assert_eq!(
        stats.quarantined,
        quarantined.len() as u64,
        "every divergence quarantines its fingerprint"
    );
    println!(
        "phase 1: first divergence at request {} (budget {DETECT_BUDGET}), demoted at request {} \
         after {} divergences",
        first + 1,
        demoted_at + 1,
        stats.divergences
    );

    // Post-demotion the reference engine answers: the bug is out of the
    // serving path, so fresh keys and re-asked quarantined keys are all
    // oracle-exact.
    for i in (demoted_at + 1)..(demoted_at + 4) {
        let got = pipeline.run(&op_for(i)).unwrap();
        let expected = truth.run(&op_for(i)).unwrap();
        assert!(
            divergence::compare(&got.trace, &expected.trace).is_none(),
            "request {i}: demoted pipeline must serve reference-exact results"
        );
    }
    for &i in &quarantined {
        let got = pipeline.run(&op_for(i)).unwrap();
        let expected = truth.run(&op_for(i)).unwrap();
        assert!(
            divergence::compare(&got.trace, &expected.trace).is_none(),
            "request {i}: re-asked quarantined key must be oracle-exact"
        );
    }
    pipeline.flush_store();
    drop(pipeline);
    println!("phase 1: post-demotion traffic and re-asked quarantined keys all oracle-exact");

    // Phase 2: the quarantine must hold across restart. A clean pipeline
    // over the same store recomputes every quarantined key (zero disk
    // hits for them), and the segment verifies clean with tombstones.
    let report = ResultStore::verify(&store_path).expect("canary store must verify");
    assert!(report.is_clean(), "canary store must verify clean: {report}");
    assert_eq!(report.resurrected, 0, "no record may outlive its tombstone");
    assert_eq!(
        report.tombstones,
        quarantined.len() as u64,
        "one tombstone per quarantined fingerprint"
    );

    let fresh = AnalysisPipeline::new(ChipSpec::training())
        .with_store(&store_path)
        .expect("restart must attach the store");
    for &i in &quarantined {
        let got = fresh.run(&op_for(i)).unwrap();
        let expected = truth.run(&op_for(i)).unwrap();
        assert!(
            divergence::compare(&got.trace, &expected.trace).is_none(),
            "request {i}: restarted pipeline must not resurrect a quarantined result"
        );
    }
    let fresh_stats = fresh.store_stats().unwrap();
    assert_eq!(fresh_stats.hits, 0, "quarantined fingerprints must never serve from disk");
    assert_eq!(
        fresh.timings().runs,
        quarantined.len() as u64,
        "every quarantined key re-simulates from scratch after restart"
    );
    println!(
        "phase 2: {} tombstone(s) verified on disk, 0 resurrections, all keys recomputed clean",
        report.tombstones
    );

    // Phase 3: the deferred tier inside a resident service. Audit rate
    // 1.0 makes every completed request an audit candidate; the shadow
    // runs drain on worker slack and the same breaker demotes.
    let service = AnalysisService::start(
        AnalysisPipeline::new(ChipSpec::training()).with_buggy_engine(BuggyEngine::new(BUG_SEED)),
        ServiceConfig {
            workers: 2,
            audit: Some(AuditPolicy::default().with_rate(1.0).with_demotion(DEMOTE_AFTER, 64)),
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|i| service.submit(Request::sweep(Box::new(op_for(i)))).expect("submit"))
        .collect();
    for ticket in &tickets {
        ticket.wait().expect("buggy engine still completes");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let health = loop {
        let health = service.health();
        if health.audit.demoted {
            break health;
        }
        assert!(Instant::now() < deadline, "service never demoted; audit stats: {}", health.audit);
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(health.audit.divergences >= u64::from(DEMOTE_AFTER));
    let ticket = service.submit(Request::interactive(Box::new(op_for(1_000)))).expect("submit");
    let got = ticket.wait().expect("demoted service still serves");
    let expected = truth.run(&op_for(1_000)).unwrap();
    assert!(
        divergence::compare(&got.trace, &expected.trace).is_none(),
        "demoted service must serve reference-exact results"
    );
    let drain = service.drain(Duration::from_secs(10));
    assert!(drain.quiesced, "drain must quiesce");
    let health = service.health();
    println!(
        "phase 3: service demoted after {} divergence(s) on {} audit(s); post-demotion request \
         oracle-exact",
        health.audit.divergences, health.audit.audits
    );

    println!("audit canary: detection, quarantine, restart survival, and demotion all hold");
    std::fs::remove_dir_all(&scratch).ok();
}
