//! Supervised, crash-safe batch execution: run a sweep under a
//! `RunPolicy` (deadlines, retries, analytical fallback) with every
//! completed item journaled to disk, then reopen the journal and show
//! that a re-run replays finished items instead of re-simulating them.
//!
//! Run with `cargo run --example resumable_batch`.

use ascend::arch::ChipSpec;
use ascend::ops::{AddRelu, Operator};
use ascend::pipeline::{AnalysisPipeline, BatchJournal, RunPolicy};
use ascend::sim::SimBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A sweep of operators, including one that is far too large for
    //    the watchdog budget the policy imposes below.
    let ops: Vec<Box<dyn Operator>> = (10..=16)
        .map(|shift| Box::new(AddRelu::new(1 << shift)) as Box<dyn Operator>)
        .chain(std::iter::once(Box::new(AddRelu::new(1 << 20)) as Box<dyn Operator>))
        .collect();
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();

    // 2. The supervision policy: a per-attempt cycle budget, one retry,
    //    and graceful degradation to the closed-form analytical estimate
    //    when an item keeps blowing the budget.
    let policy = RunPolicy::default()
        .with_budget(SimBudget { max_events: u64::MAX, max_cycles: 10_000.0 })
        .with_retries(1)
        .with_fallback(true);

    // 3. First pass: every completed item is appended — and fsync'd —
    //    to the write-ahead journal before the batch moves on.
    let journal_path =
        std::env::temp_dir().join(format!("ascend_resumable_batch_{}.jsonl", std::process::id()));
    let journal = BatchJournal::open(&journal_path)?;
    let pipeline = AnalysisPipeline::new(ChipSpec::training());
    let results = pipeline.run_batch_resumable(&refs, &policy, &journal);
    for (op, result) in ops.iter().zip(&results) {
        let result = result.as_ref().expect("fallback keeps the batch whole");
        println!(
            "{:<24} {:>10.0} cycles  fidelity: {:?}",
            op.name(),
            result.cycles(),
            result.fidelity
        );
    }
    println!("\nfirst pass:  {}", pipeline.supervisor_stats());

    // 4. Second pass, as if the process had been killed and restarted:
    //    a fresh pipeline reopens the journal and replays every
    //    journaled item instead of re-simulating it.
    let journal = BatchJournal::open(&journal_path)?;
    println!(
        "\nreopened journal: {} record(s) recovered, {} dropped",
        journal.recovery().recovered,
        journal.recovery().dropped
    );
    let resumed = AnalysisPipeline::new(ChipSpec::training());
    let replayed = resumed.run_batch_resumable(&refs, &policy, &journal);
    assert!(replayed.iter().all(Result::is_ok));
    println!("second pass: {}", resumed.supervisor_stats());
    println!("(every item was a journal replay — zero simulator runs)");

    std::fs::remove_file(&journal_path)?;
    Ok(())
}
