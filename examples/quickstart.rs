//! Quickstart: build an operator kernel, simulate it, and read its
//! component-based roofline analysis.
//!
//! Run with `cargo run --example quickstart`.

use ascend::arch::{ChipSpec, Component};
use ascend::ops::{AddRelu, Operator, OptFlags};
use ascend::profile::Profiler;
use ascend::roofline::{analyze, RooflineChart, Thresholds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a chip and an operator.
    let chip = ChipSpec::training();
    let op = AddRelu::new(1 << 20);

    // 2. Generate and simulate the kernel.
    let kernel = op.build(&chip)?;
    println!("kernel `{}` has {} instructions", kernel.name(), kernel.len());
    let profiler = Profiler::new(chip.clone());
    let (profile, trace) = profiler.run(&kernel)?;
    println!(
        "executed in {:.0} cycles = {:.3} us at {:.1} GHz",
        trace.total_cycles(),
        chip.cycles_to_micros(trace.total_cycles()),
        chip.frequency_hz / 1e9
    );
    println!("\ncomponent occupancy:\n{}", trace.gantt_ascii(72));

    // 3. Run the component-based roofline analysis.
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    println!("{}", analysis.summary());
    println!("diagnosis: {}", analysis.bottleneck());

    // 4. Apply the optimization the diagnosis calls for and compare.
    let tuned = op.with_flags(OptFlags::new().rsd(true).mrt(true));
    let (tuned_profile, tuned_trace) = profiler.run(&tuned.build(&chip)?)?;
    let tuned_analysis = analyze(&tuned_profile, &chip, &Thresholds::default());
    println!(
        "after RSD+MRT: {:.3} us ({:.2}x), now {}",
        chip.cycles_to_micros(tuned_trace.total_cycles()),
        trace.total_cycles() / tuned_trace.total_cycles(),
        tuned_analysis.bottleneck()
    );
    let ratio = tuned_analysis
        .metrics_of(Component::MteUb)
        .map(|m| m.time_ratio * 100.0)
        .unwrap_or_default();
    println!("MTE-UB is busy {ratio:.1}% of the time — the write-out engine is the wall");

    // 5. Render the roofline chart.
    println!("\n{}", RooflineChart::from_analysis(&tuned_analysis).to_ascii(76, 18));
    Ok(())
}
