//! Quickstart: run an operator through the analysis pipeline and read
//! its component-based roofline analysis.
//!
//! Run with `cargo run --example quickstart`.

use ascend::arch::{ChipSpec, Component};
use ascend::ops::{AddRelu, OptFlags};
use ascend::pipeline::AnalysisPipeline;
use ascend::roofline::RooflineChart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a chip and an operator.
    let chip = ChipSpec::training();
    let op = AddRelu::new(1 << 20);

    // 2. One pipeline owns the whole build → simulate → profile →
    //    analyze sequence (and caches results by operator + flags).
    let pipeline = AnalysisPipeline::new(chip.clone());
    let result = pipeline.run(&op)?;
    println!("kernel `{}` has {} instructions", result.kernel_name, result.kernel_len);
    println!(
        "executed in {:.0} cycles = {:.3} us at {:.1} GHz",
        result.cycles(),
        chip.cycles_to_micros(result.cycles()),
        chip.frequency_hz / 1e9
    );
    println!("\ncomponent occupancy:\n{}", result.trace.gantt_ascii(72));

    // 3. Read the component-based roofline analysis.
    println!("{}", result.analysis.summary());
    println!("diagnosis: {}", result.analysis.bottleneck());

    // 4. Apply the optimization the diagnosis calls for and compare.
    let tuned = op.with_flags(OptFlags::new().rsd(true).mrt(true));
    let tuned_result = pipeline.run(&tuned)?;
    println!(
        "after RSD+MRT: {:.3} us ({:.2}x), now {}",
        chip.cycles_to_micros(tuned_result.cycles()),
        result.cycles() / tuned_result.cycles(),
        tuned_result.analysis.bottleneck()
    );
    let ratio = tuned_result
        .analysis
        .metrics_of(Component::MteUb)
        .map(|m| m.time_ratio * 100.0)
        .unwrap_or_default();
    println!("MTE-UB is busy {ratio:.1}% of the time — the write-out engine is the wall");

    // 5. Render the roofline chart.
    println!("\n{}", RooflineChart::from_analysis(&tuned_result.analysis).to_ascii(76, 18));

    // 6. Re-running either flag set is now a cache hit.
    pipeline.run(&op)?;
    println!("\n{}", pipeline.instrumentation_footer());
    Ok(())
}
