//! Chaos-prove the sharded cluster tier: serve a seeded mixed-priority
//! load across 4 shard processes while a seeded [`KillPlan`] `kill -9`s
//! shards mid-flight, then assert the cluster's robustness invariants
//! held end to end:
//!
//! * **zero lost tickets** — every accepted request completes with a
//!   result despite the kills (victims re-answered via ring-successor
//!   failover), and `completed_ok + failed + shed + flushed == accepted`
//!   balances exactly once;
//! * **continuous availability** — a probe submitted right after each
//!   kill is admitted and answered; the cluster never stops serving;
//! * **recovery** — every killed shard respawns and rewarms from its
//!   per-shard `ResultStore` segment, all four shards are live at exit,
//!   and an offline `ResultStore::verify` scan finds zero corrupt
//!   records in any segment;
//! * **quarantine integrity** — a fingerprint tombstoned before the
//!   chaos is never served from cached state by any shard, before or
//!   after the kills.
//!
//! Run with `cargo run --example cluster_chaos`. The default window is a
//! few hundred milliseconds so the example suite stays fast; CI's
//! dedicated chaos job sets `ASCEND_CHAOS_MS` to stretch the same
//! invariants over a longer window. Both the load and the kill schedule
//! replay exactly from the printed seed (`ASCEND_CHAOS_SEED`).

use ascend::arch::ChipSpec;
use ascend::faults::{KillPlan, LoadProfile};
use ascend::ops::OpSpec;
use ascend::pipeline::{
    ClusterConfig, ClusterService, Priority, ResultStore, SandboxConfig, Ticket,
};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

/// Validated `ASCEND_*` knob: unset means the default, malformed is a
/// loud exit(2) (never a silently ignored setting).
fn env_u64(name: &str, default: u64) -> u64 {
    ascend_bench::env_knob(name, "an unsigned integer").unwrap_or(default)
}

/// A unique (never cache-hitting) operator spec per arrival.
fn unique_spec(index: u64) -> OpSpec {
    OpSpec::add_relu((1 << 12) + index * 257)
}

fn main() {
    // Shards are hosted by re-executing this very binary: dispatch to
    // the worker loop before doing anything else.
    ascend::pipeline::run_worker_if_requested();

    let window = Duration::from_millis(env_u64("ASCEND_CHAOS_MS", 400));
    let seed = env_u64("ASCEND_CHAOS_SEED", 0xC1A0_50F1);
    let cache_dir =
        std::env::temp_dir().join(format!("ascend-cluster-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("cache dir");
    println!("cluster chaos: {SHARDS} shards, {window:?} window, seed {seed:#x}");

    let cluster = ClusterService::start(
        ChipSpec::training(),
        ClusterConfig {
            shards: SHARDS,
            queue_capacity: 1024,
            // Generous failover budget: with staggered kills, a request
            // may lose more than one host before it lands.
            max_failovers: 4,
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_millis(250),
            seed,
            store_dir: Some(cache_dir.clone()),
            sandbox: SandboxConfig {
                heartbeat_interval: Duration::from_millis(15),
                heartbeat_timeout: Duration::from_millis(500),
                wall_clock_limit: Duration::from_secs(10),
                ..SandboxConfig::default()
            },
            ..ClusterConfig::default()
        },
    )
    .expect("cluster start");

    // One merged timeline: Poisson arrivals (mixed priority) and
    // Poisson-spaced staggered SIGKILLs, both derived from the seed.
    let load = LoadProfile::new(seed, 400.0, window).with_interactive_fraction(0.5);
    // "KILL" in ASCII decorrelates the kill stream from the load stream.
    let kills = KillPlan::new(seed ^ 0x4B49_4C4C, SHARDS, window / 4, window);
    let arrivals = load.schedule();
    let kill_events = kills.schedule();
    println!("schedule: {} arrivals, {} kills", arrivals.len(), kill_events.len());
    // Index layout keeps every spec distinct: 0..arrivals for the load,
    // then one per kill probe, then one for the quarantined fingerprint.
    let probe_base = arrivals.len() as u64;
    let poisoned_index = probe_base + kill_events.len() as u64;

    // Quarantine setup: compute one fingerprint everywhere-visible, then
    // tombstone it cluster-wide before any chaos. It is re-submitted
    // exactly once at the end — any cache hit in the entire run would
    // mean a shard served it (or anything else) from stale state.
    let poisoned = unique_spec(poisoned_index);
    let poisoned_key = cluster.cache_key(&poisoned.into());
    let poisoned_owner = cluster.ring().owner(poisoned_key);
    cluster
        .submit(poisoned, Priority::Interactive)
        .expect("admission")
        .wait()
        .expect("the poisoned fingerprint computes once, cold");
    cluster.quarantine(poisoned_key);
    println!(
        "quarantined fingerprint {poisoned_key:#018x} (owner shard {poisoned_owner}) before the chaos"
    );

    let start = Instant::now();
    let mut tickets: Vec<(u64, Ticket)> = Vec::new();
    let mut kills_landed = 0u64;
    let mut next_kill = 0usize;
    for (i, arrival) in arrivals.iter().enumerate() {
        // Deliver every kill due before this arrival.
        while next_kill < kill_events.len() && kill_events[next_kill].at <= arrival.at {
            let target = kill_events[next_kill].shard;
            if cluster.kill_shard(target) {
                kills_landed += 1;
                println!(
                    "[{:6.1} ms] kill -9 shard {target}",
                    kill_events[next_kill].at.as_secs_f64() * 1e3
                );
                // Availability probe: the cluster keeps admitting and
                // answering right through the kill.
                let probe_index = probe_base + next_kill as u64;
                let probe = cluster
                    .submit(unique_spec(probe_index), Priority::Interactive)
                    .expect("admissions stay open during a kill");
                tickets.push((probe_index, probe));
            }
            next_kill += 1;
        }
        if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let priority = if arrival.interactive { Priority::Interactive } else { Priority::Sweep };
        let spec = unique_spec(i as u64);
        let ticket = cluster.submit(spec, priority).expect("admission");
        tickets.push((i as u64, ticket));
    }

    // Zero lost tickets: every accepted request completes with a result.
    for (index, ticket) in &tickets {
        let result = ticket
            .wait()
            .unwrap_or_else(|err| panic!("ticket for spec {index} lost to the chaos: {err}"));
        assert!(result.cycles() > 0.0);
    }

    // Recovery: every shard is live again (respawned where killed).
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.health().live_shards() < SHARDS {
        assert!(Instant::now() < deadline, "shards never all came back: {:?}", cluster.health());
        std::thread::sleep(Duration::from_millis(10));
    }

    // Quarantine integrity: the tombstoned fingerprint, re-submitted
    // once after all the chaos, is recomputed — never served cached.
    cluster
        .submit(poisoned, Priority::Interactive)
        .expect("admission")
        .wait()
        .expect("the quarantined fingerprint recomputes");
    assert!(cluster.is_quarantined(poisoned_key));

    let report = cluster.drain(Duration::from_secs(30));
    let health = cluster.health();
    println!(
        "outcomes: {} accepted = {} ok + {} failed + {} shed + {} flushed; \
         {} failovers, {} kills, {} respawns, ring generation {}",
        health.counters.accepted,
        health.counters.completed_ok,
        health.counters.failed,
        health.counters.shed_deadline,
        health.counters.drain_flushed,
        health.counters.failovers,
        health.counters.kills,
        health.counters.respawns,
        health.ring_generation,
    );
    for shard in &health.shards {
        println!(
            "  shard {}: {} ok, {} failed, {} kills, {} respawns, {} rewarmed",
            shard.index,
            shard.counters.completed_ok,
            shard.counters.failed,
            shard.counters.kills,
            shard.counters.respawns,
            shard.counters.store_recovered,
        );
    }
    println!(
        "drain: flushed {} queued, quiesced in {:.1} ms",
        report.flushed_queued,
        report.elapsed.as_secs_f64() * 1e3
    );

    // The chaos invariants, checked at exit.
    assert!(report.quiesced, "drain must quiesce: {report:?}");
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every accepted ticket ends exactly once: {:?}",
        health.counters
    );
    assert_eq!(
        health.counters.completed_ok, health.counters.accepted,
        "zero lost tickets — every victim was re-answered: {:?}",
        health.counters
    );
    assert_eq!(
        health.counters.cache_hits, 0,
        "nothing was served from stale state (the only repeated fingerprint is quarantined)"
    );
    assert_eq!(health.counters.kills, kills_landed, "every landed SIGKILL is booked");
    assert!(
        health.counters.respawns >= SHARDS as u64 + kills_landed,
        "every kill was answered with a respawn: {:?}",
        health.counters
    );

    // Offline damage scan: every shard's segment file is clean, and the
    // quarantined fingerprint's tombstone is durable in its owner's.
    for index in 0..SHARDS {
        let path = cluster.shard_store_path(index).expect("store configured");
        let scan = ResultStore::verify(&path).expect("segment scans");
        assert!(scan.is_clean(), "shard {index} segment is damaged: {scan}");
        assert_eq!(scan.context, cluster.context(), "segment belongs to this cluster");
        if index == poisoned_owner {
            assert!(scan.tombstones >= 1, "the quarantine tombstone is durable: {scan}");
        }
        println!("  shard {index} segment: {scan}");
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("\nall chaos invariants held ({kills_landed} kills landed)");
}
