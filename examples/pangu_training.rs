//! The PanGu-alpha 100B training study (paper, Section 6.2.1): bottleneck
//! distribution, the LayerNorm fusion, and iteration-time speedup.
//!
//! Run with `cargo run --release --example pangu_training`.

use ascend::arch::ChipSpec;
use ascend::models::{zoo, ModelRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::training();
    let runner = ModelRunner::new(chip.clone());
    let model = zoo::pangu_alpha();
    println!(
        "{}: {:.0}B parameters, {} NPUs in the paper's deployment",
        model.name(),
        model.parameters_millions() / 1000.0,
        model.npus()
    );

    let result = runner.optimize(&model)?;
    println!("\nbottleneck causes before: {}", result.before.distribution().summary());
    println!("bottleneck causes after:  {}", result.after.distribution().summary());
    println!(
        "\ncomputation {:.2}x, full iteration {:.2}x (communication/I-O held fixed)",
        result.computation_speedup(),
        result.overall_speedup()
    );

    println!("\noperators that improved:");
    for op in &result.op_optimizations {
        if op.speedup() > 1.01 {
            println!(
                "  {:<40} {:>5.2}x via {:?}",
                op.operator,
                op.speedup(),
                op.applied_strategies()
            );
        }
    }
    println!("  (element-wise chains additionally fused into LayerNorm before this loop)");
    Ok(())
}
