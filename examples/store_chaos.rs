//! Kill -9 chaos loop for the durable result store: a child process
//! streams analysis results into an on-disk store and the parent
//! SIGKILLs it at staggered points, then proves the recovery contract
//! after every crash — every fully-written record comes back
//! bit-identical to recomputation, every torn tail is dropped and
//! recomputed, and nothing corrupt is ever served.
//!
//! Run with `cargo run --release --example store_chaos`; CI runs it in
//! the `chaos-store` job. The final round restarts warm with no kill
//! and asserts a 100% disk hit rate over everything the crashes left
//! durable.
//!
//! Verification always happens on a *copy* of the store file, so the
//! parent's own recovery (tail truncation) and write-back never repair
//! the evidence between rounds — each kill is judged on exactly the
//! bytes it left behind.

use ascend::arch::ChipSpec;
use ascend::ops::AddRelu;
use ascend::pipeline::{AnalysisPipeline, ResultStore};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const CHILD_ENV: &str = "ASCEND_STORE_CHAOS_CHILD";
const PATH_ENV: &str = "ASCEND_STORE_CHAOS_PATH";
const KILL_ROUNDS: u32 = 6;

/// The deterministic op stream both parent and child derive: the i-th
/// record in the store is always the result of `op_for(i)`.
fn op_for(i: u64) -> AddRelu {
    AddRelu::new(1_000 + i * 97)
}

/// The child: attach the store and stream results into it until the
/// parent kills us. Re-running ops from index 0 on each restart also
/// exercises the warm path — already-durable records arrive as disk
/// hits and only fresh indices append.
fn run_child(path: &Path) -> ! {
    let pipeline = AnalysisPipeline::new(ChipSpec::training())
        .with_store(path)
        .expect("child must attach the store");
    for i in 0.. {
        let op = op_for(i);
        pipeline.run(&op).expect("simulation itself never fails here");
    }
    unreachable!("the loop above only ends by SIGKILL");
}

/// Copies the store and verifies the recovery contract on the copy.
/// Returns how many records were durable at this crash point.
fn verify_crash_point(store_path: &Path, scratch: &Path, round: u32) -> u64 {
    let verify_path = scratch.join(format!("verify-{round}.astr"));
    std::fs::copy(store_path, &verify_path).expect("store file must exist after a kill");

    let probe = AnalysisPipeline::new(ChipSpec::training());
    let store = ResultStore::open(&verify_path, probe.context())
        .expect("a SIGKILL'd store must always reopen");
    let stats = store.stats();
    assert_eq!(stats.recovered, store.len() as u64);
    assert_eq!(stats.io_errors, 0, "round {round}: recovery is not an I/O error");

    // The durable set must be a gap-free prefix of the op stream: the
    // child appends in order and a kill only tears the tail.
    let durable = store.len() as u64;
    for i in 0..durable {
        let key = probe.cache_key(&op_for(i));
        assert!(
            store.get(key).is_some(),
            "round {round}: record {i} of {durable} is missing — the durable set has a hole"
        );
    }
    drop(store);

    // Bit-identical acceptance: a pipeline over the crashed bytes must
    // agree with pure recomputation on every op, durable or torn.
    let checked = durable + 2; // reach past the tear into recompute territory
    let truth = AnalysisPipeline::new(ChipSpec::training());
    let resumed = AnalysisPipeline::new(ChipSpec::training())
        .with_store(&verify_path)
        .expect("verification copy must attach");
    for i in 0..checked {
        let op = op_for(i);
        let expected = truth.run(&op).unwrap();
        let got = resumed.run(&op).unwrap();
        assert_eq!(
            *got, *expected,
            "round {round}: op {i} differs from recomputation after the crash"
        );
    }
    let resumed_stats = resumed.store_stats().unwrap();
    assert_eq!(resumed_stats.hits, durable, "round {round}: every durable record serves");
    assert_eq!(
        resumed.timings().runs,
        checked - durable,
        "round {round}: exactly the non-durable ops re-simulate"
    );
    durable
}

fn main() {
    if std::env::var_os(CHILD_ENV).is_some() {
        let path = PathBuf::from(std::env::var_os(PATH_ENV).expect("child needs the store path"));
        run_child(&path);
    }

    let scratch = std::env::temp_dir().join(format!("ascend-store-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let store_path = scratch.join("store.astr");
    let exe = std::env::current_exe().expect("re-exec needs our own path");

    println!("store chaos: {KILL_ROUNDS} kill -9 rounds against {}", store_path.display());
    let mut durable_high_water = 0u64;
    for round in 0..KILL_ROUNDS {
        let mut child = Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env(PATH_ENV, &store_path)
            .spawn()
            .expect("spawn chaos child");
        // Staggered kill points: early kills land in open/recovery,
        // later ones mid-append stream.
        std::thread::sleep(Duration::from_millis(5 + u64::from(round) * 23));
        child.kill().expect("SIGKILL the child");
        child.wait().expect("reap the child");

        let durable = verify_crash_point(&store_path, &scratch, round);
        assert!(
            durable >= durable_high_water,
            "round {round}: durable set shrank from {durable_high_water} to {durable}"
        );
        durable_high_water = durable;
        println!("  round {round}: killed, {durable} durable record(s), all bit-identical");
    }

    // Warm-restart acceptance on the real file: everything the crashes
    // left durable serves from disk, with zero corrupt entries served
    // and zero re-simulation.
    let warm = AnalysisPipeline::new(ChipSpec::training())
        .with_store(&store_path)
        .expect("final warm restart must attach");
    let stats = warm.store_stats().unwrap();
    assert_eq!(stats.recovered, durable_high_water, "final open recovers the high-water set");
    for i in 0..durable_high_water {
        let op = op_for(i);
        warm.run(&op).unwrap();
    }
    let stats = warm.store_stats().unwrap();
    assert_eq!(stats.hits, durable_high_water, "warm restart must hit on every durable record");
    assert_eq!(warm.timings().runs, 0, "warm restart must not re-simulate anything");
    assert!(!stats.disabled, "the tier survived every crash");
    println!(
        "warm restart: {}/{} disk hits, {} corrupt record(s) dropped across all rounds, 0 served",
        stats.hits, durable_high_water, stats.corrupt_dropped
    );
    println!("store chaos: every fsync'd record bit-identical, every torn tail recomputed");

    std::fs::remove_dir_all(&scratch).ok();
}
