//! The iterative analyze→optimize loop on a pathological operator, plus
//! the IR-level passes applied directly to an instruction stream.
//!
//! Run with `cargo run --example optimize_operator`.

use ascend::arch::ChipSpec;
use ascend::isa::KernelStats;
use ascend::ops::{Depthwise, Operator};
use ascend::optimize::{passes, Optimizer};
use ascend::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::training();

    // Operator-level optimization: the roofline-guided loop.
    let optimizer = Optimizer::new(chip.clone());
    let report = optimizer.run(&Depthwise::new(1 << 20))?;
    println!("{}", report.summary());
    println!("strategies kept: {:?}", report.applied_strategies());
    println!("{}\n", optimizer.pipeline().instrumentation_footer());

    // IR-level optimization: transform the baseline instruction stream.
    let baseline = Depthwise::new(1 << 20).build(&chip)?;
    let sim = Simulator::new(chip.clone());
    let t0 = sim.simulate(&baseline)?.total_cycles();

    let stripped = passes::remove_unnecessary_barriers(&baseline);
    let deduped = passes::minimize_redundant_transfers(&stripped);
    let hoisted = passes::hoist_transfers(&deduped);
    let t1 = sim.simulate(&hoisted)?.total_cycles();

    let before = KernelStats::of(&baseline);
    let after = KernelStats::of(&hoisted);
    println!("IR passes on the baseline kernel:");
    println!("  instructions: {} -> {}", baseline.len(), hoisted.len());
    println!("  barriers:     {} -> {}", before.barrier_count, after.barrier_count);
    println!("  cycles:       {t0:.0} -> {t1:.0} ({:.2}x)", t0 / t1);
    Ok(())
}
