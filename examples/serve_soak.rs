//! Soak the resident `AnalysisService`: replay a seeded 2x-overload
//! arrival schedule — with a burst, fault-mutated kernels, and periodic
//! panicking poison items — then drain and assert the service's health
//! invariants held end to end:
//!
//! * the admission queue never exceeds its configured bound;
//! * every arrival is either admitted or told `Overloaded` — no silence;
//! * every accepted ticket reaches exactly one terminal state;
//! * `drain()` quiesces within its deadline.
//!
//! Run with `cargo run --example serve_soak`. The default run is a few
//! hundred milliseconds so the example suite stays fast; CI's dedicated
//! soak job sets `ASCEND_SOAK_MS` to stretch the same invariants over a
//! longer window.

use ascend::arch::ChipSpec;
use ascend::faults::{FaultPlan, FaultedOperator, LoadProfile, PanicOperator, PanicSwitch};
use ascend::ops::{AddRelu, Operator};
use ascend::pipeline::{
    AnalysisPipeline, AnalysisService, PipelineError, Request, ServiceConfig, Ticket,
};
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
const QUEUE: usize = 8;

/// A unique (never cache-hitting) operator with ~1 ms of work.
fn unique_op(index: u64) -> Box<dyn Operator> {
    Box::new(AddRelu::new((1 << 22) + index * 257))
}

fn main() {
    let soak = Duration::from_millis(
        // Validated knob: malformed input exits loudly instead of
        // silently soaking for the default.
        ascend_bench::env_knob("ASCEND_SOAK_MS", "an unsigned integer").unwrap_or(300),
    );
    let service = AnalysisService::start(
        AnalysisPipeline::new(ChipSpec::training()),
        ServiceConfig { workers: WORKERS, queue_capacity: QUEUE, ..ServiceConfig::default() },
    );

    // Calibrate: a short closed-loop phase measures the unloaded service
    // time, from which the 2x-overload arrival rate is derived.
    let calibration = Instant::now();
    const BASELINE: u64 = 8;
    for i in 0..BASELINE {
        let ticket = service.submit(Request::interactive(unique_op(i))).unwrap();
        ticket.wait().expect("calibration item completes");
    }
    let mean_service = calibration.elapsed() / u32::try_from(BASELINE).unwrap();
    let unloaded_p50 = service.health().interactive.p50;
    let rate_hz = 2.0 * WORKERS as f64 / mean_service.as_secs_f64();
    println!(
        "calibration: {:.2} ms per item unloaded -> soaking at {:.0} req/s for {:?}",
        mean_service.as_secs_f64() * 1e3,
        rate_hz,
        soak
    );

    // The overload schedule: Poisson arrivals at 2x capacity, a 3x burst
    // every quarter of the window, ~12% fault-mutated kernels, and a
    // panicking poison item roughly every 64 arrivals.
    let profile = LoadProfile::new(0xC4A0_5000, rate_hz, soak)
        .with_burst(soak / 4, soak / 16, 3.0)
        .with_interactive_fraction(0.5);
    let schedule = profile.schedule();
    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    let mut max_depth = 0usize;
    for (i, arrival) in schedule.iter().enumerate() {
        if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let inner = unique_op(BASELINE + i as u64);
        let op: Box<dyn Operator> = match arrival.draw % 64 {
            0 => Box::new(PanicOperator::new(inner, PanicSwitch::after(0))),
            d if d < 8 => {
                Box::new(FaultedOperator::new(inner, FaultPlan::new(arrival.draw).truncate_to(5)))
            }
            _ => inner,
        };
        let request =
            if arrival.interactive { Request::interactive(op) } else { Request::sweep(op) };
        match service.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(PipelineError::Overloaded { queue_depth, retry_after_hint }) => {
                assert_eq!(queue_depth, QUEUE, "rejections report the configured bound");
                assert!(retry_after_hint > Duration::ZERO);
                rejected += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
        let depth = service.health().queue_depth;
        assert!(depth <= QUEUE, "queue depth {depth} exceeded its bound {QUEUE}");
        max_depth = max_depth.max(depth);
    }

    let report = service.drain(Duration::from_secs(30));
    let health = service.health();
    println!(
        "soak: {} arrivals = {} accepted + {} shed at admission (max depth {max_depth}/{QUEUE})",
        schedule.len(),
        health.counters.accepted,
        rejected
    );
    println!(
        "outcomes: {} ok, {} failed, {} shed in queue, {} flushed at drain",
        health.counters.completed_ok,
        health.counters.failed,
        health.counters.shed_deadline,
        health.counters.drain_flushed
    );
    println!(
        "latency ms p50/p95/p99: interactive {} | sweep {} (unloaded p50 {:.2} ms)",
        health.interactive,
        health.sweep,
        unloaded_p50 * 1e3
    );
    println!(
        "drain: flushed {} queued, quiesced in {:.1} ms",
        report.flushed_queued,
        report.elapsed.as_secs_f64() * 1e3
    );
    println!("\n{}", service.pipeline().instrumentation_footer());

    // The invariants the service guarantees, checked at exit.
    assert!(report.quiesced, "drain must quiesce: {report:?}");
    assert_eq!(
        tickets.len() as u64 + rejected,
        schedule.len() as u64,
        "every arrival was either admitted or told it was shed"
    );
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every accepted ticket reaches exactly one terminal state: {:?}",
        health.counters
    );
    assert!(
        tickets.iter().all(|t| t.try_result().is_some()),
        "every admitted ticket is settled after drain"
    );
    assert!(!health.is_ready(), "a drained service reports not-ready");
    println!("\nall soak invariants held");
}
