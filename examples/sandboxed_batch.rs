//! Isolation tiers side by side: run the same operator specs through
//! the in-process tier and through sandboxed worker processes, then
//! throw hostile work at the sandboxed tier and watch it fail *only*
//! its own ticket — typed, counted, and without taking the service
//! down.
//!
//! ```text
//! cargo run --release --example sandboxed_batch
//! ```

use ascend::arch::ChipSpec;
use ascend::faults::HostileMode;
use ascend::ops::OpSpec;
use ascend::pipeline::{
    AnalysisPipeline, AnalysisService, Isolation, Priority, Request, SandboxConfig, ServiceConfig,
    WorkSpec,
};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sandbox workers are this same binary, re-executed with the
    // worker marker set. This call must come before anything else in
    // main: in a worker process it serves jobs and never returns.
    ascend::pipeline::run_worker_if_requested();

    let specs = [
        OpSpec::add_relu(1 << 14),
        OpSpec::gelu(1 << 12),
        OpSpec::softmax(1 << 10),
        OpSpec::matmul(32, 32, 32),
    ];

    // Tight budgets so the hostile demo below settles in about a
    // second; the defaults are more forgiving.
    let sandbox = SandboxConfig {
        heartbeat_timeout: Duration::from_millis(300),
        wall_clock_limit: Duration::from_secs(1),
        rss_limit_bytes: Some(256 * 1024 * 1024),
        ..SandboxConfig::default()
    };
    let service = AnalysisService::start(
        AnalysisPipeline::new(ChipSpec::training()),
        ServiceConfig {
            workers: 2,
            isolation: [Isolation::Sandboxed; 2],
            sandbox,
            ..ServiceConfig::default()
        },
    );

    // 1. Clean work: results from child processes are bit-identical to
    //    an in-process run of the same specs.
    let reference = AnalysisPipeline::new(ChipSpec::training());
    let tickets: Vec<_> = specs
        .iter()
        .map(|spec| service.submit(Request::sweep_spec(*spec)))
        .collect::<Result<_, _>>()?;
    println!("operator           cycles   identical to in-process?");
    for (spec, ticket) in specs.iter().zip(tickets) {
        let sandboxed = ticket.wait()?;
        let op = spec.instantiate();
        let local = reference.run(op.as_ref())?;
        println!(
            "{:<16} {:>8.0}   {}",
            op.name(),
            sandboxed.cycles(),
            if *sandboxed == *local { "yes" } else { "NO" }
        );
        assert_eq!(*sandboxed, *local);
    }

    // 2. Hostile work: a hot loop that never polls, and an abort().
    //    In-process, either would wedge or kill the service; sandboxed,
    //    each fails exactly one ticket with a typed error.
    println!("\nhostile mode     verdict");
    for mode in [HostileMode::Spin, HostileMode::Abort] {
        let ticket =
            service.submit(Request::from_spec(WorkSpec::hostile(mode), Priority::Interactive))?;
        let err = ticket.wait().expect_err("hostile work must fail");
        println!("{:<16} {err}", format!("{mode:?}"));
    }

    // 3. The service survived and says so.
    let after = service.submit(Request::interactive_spec(OpSpec::add_relu(1 << 14)))?.wait()?;
    println!("\nservice is still serving: {:.0} cycles for the probe", after.cycles());
    service.drain(Duration::from_secs(10));
    let sandbox = service.health().sandbox;
    println!(
        "sandbox counters: {} jobs ok, {} hung, {} crashed, {} spawned, {} recycled",
        sandbox.jobs_ok, sandbox.hung, sandbox.crashed, sandbox.spawned, sandbox.recycled
    );
    assert_eq!(sandbox.hung, 1, "the spin dies at the wall clock");
    assert_eq!(sandbox.crashed, 1, "the abort dies by signal");
    Ok(())
}
