//! Author a kernel in the textual ISA format, analyze it, and get the
//! advisor's suggestion — no Rust required for the kernel itself.
//!
//! Run with `cargo run --example textual_kernel`.

use ascend::arch::ChipSpec;
use ascend::isa::{kernel_to_text, parse_kernel, validate};
use ascend::optimize::advise;
use ascend::profile::Profiler;
use ascend::roofline::{analyze, Thresholds};

const SOURCE: &str = "\
# A two-tile scale kernel with the classic in-place pathology: the
# write-back of tile 0 and the load of tile 1 share ub[0:32768].
kernel handwritten_scale {
    move gm->ub gm[0:32768] ub[0:32768]
    set f0 @mte-gm
    wait f0 @vector
    vector.fp16 16384 reads ub[0:32768] writes ub[0:32768]
    set f1 @vector
    wait f1 @mte-ub
    move ub->gm ub[0:32768] gm[1048576:1081344]

    move gm->ub gm[32768:65536] ub[0:32768]
    set f2 @mte-gm
    wait f2 @vector
    vector.fp16 16384 reads ub[0:32768] writes ub[0:32768]
    set f3 @vector
    wait f3 @mte-ub
    move ub->gm ub[0:32768] gm[1081344:1114112]
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::training();
    let kernel = parse_kernel(SOURCE)?;
    validate(&kernel, &chip)?;
    println!("parsed `{}` with {} instructions\n", kernel.name(), kernel.len());

    let (profile, trace) = Profiler::new(chip.clone()).run(&kernel)?;
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    println!("{}", analysis.summary());
    println!("{}", trace.gantt_ascii(72));
    let suggestions = advise(&analysis);
    let names: Vec<&str> = suggestions.iter().map(|s| s.abbrev()).collect();
    println!("advisor suggests: {}", names.join(", "));

    // The disassembler round-trips exactly.
    assert_eq!(parse_kernel(&kernel_to_text(&kernel))?, kernel);
    println!("\n(kernel_to_text/parse_kernel round-trip verified)");
    Ok(())
}
