//! Vendored offline stand-in for `rand` 0.8.
//!
//! Deterministic, seedable randomness built on SplitMix64. Only the
//! surface this workspace uses is provided: `StdRng::seed_from_u64`,
//! `gen_range` over half-open integer/float ranges, and `gen_bool`.
//!
//! Note: the stream differs from the real `rand`'s ChaCha-based `StdRng`,
//! so seeded sequences are reproducible *within* this workspace but not
//! across implementations.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a value can be sampled from.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the small spans used here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
signed_sample_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
