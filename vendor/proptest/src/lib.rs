//! Vendored offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!`-family macros,
//! a [`strategy::Strategy`] trait with `prop_map`, integer/float range and
//! tuple strategies, `any::<bool>()`, `prop::sample::select`, and
//! `prop::collection::vec`.
//!
//! Unlike the real proptest there is no shrinking and no persistence: each
//! test runs a fixed number of cases drawn from a generator seeded by the
//! test's name, so failures reproduce deterministically run-to-run.

pub mod test_runner {
    /// Per-test configuration (`cases` = number of sampled inputs).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The case count in force: a parseable `PROPTEST_CASES` environment
    /// variable overrides the per-test configuration (mirroring the real
    /// proptest), so CI can crank fuzz jobs up without code changes.
    pub fn cases_from_env(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|value| value.parse().ok())
            .unwrap_or(configured)
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic SplitMix64 generator, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty : $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Full-range strategy behind [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> AnyStrategy<T> {
        pub fn new() -> Self {
            AnyStrategy { _marker: std::marker::PhantomData }
        }
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        type Strategy: crate::strategy::Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! arbitrary_impl {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyStrategy::new()
                }
            }
        )*};
    }
    arbitrary_impl!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: arbitrary::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Strategy drawing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let span = self.options.len() as u64;
            let idx = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of strategy-drawn elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// item becomes a test that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        cfg = ($cfg:expr);
        $(
            #[test]
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __config = $crate::test_runner::ProptestConfig {
                    cases: $crate::test_runner::cases_from_env(__config.cases),
                };
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let __vals = ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)*);
                    let __inputs = format!("{:?}", __vals);
                    let ($($pat,)*) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n    inputs: {}",
                                __case + 1,
                                __config.cases,
                                msg,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced access to the strategy constructors (`prop::sample`, ...).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0.25f64..0.75, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            let _ = flag;
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_is_accepted(
            v in prop::collection::vec(1u64..100, 2..6),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (1..100).contains(x)));
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn prop_map_composes(spec in (1u64..4, 1u64..4).prop_map(|(x, y)| x * 10 + y)) {
            prop_assert_eq!(spec / 10 * 10 + spec % 10, spec);
            prop_assert!((11..34).contains(&spec));
        }
    }
}
