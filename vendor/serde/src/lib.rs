//! Vendored offline stand-in for `serde`.
//!
//! The build container cannot reach a crate registry, so the real serde is
//! unavailable. This facade keeps the workspace's source compatible with
//! the serde idioms it uses — `#[derive(Serialize, Deserialize)]`,
//! `#[serde(with = "module")]`, `Serializer`/`Deserializer` bounds — while
//! routing everything through one concrete data model: the JSON-like
//! [`Value`] tree. `serde_json` (also vendored) renders and parses that
//! tree.
//!
//! Design: [`Serialize`] produces a [`Value`]; [`Deserialize`] consumes a
//! borrowed [`Value`]. The generic `Serializer`/`Deserializer` traits
//! exist so `#[serde(with = "…")]` adapter modules keep their canonical
//! signatures, but [`ValueSerializer`]/[`de::ValueDeserializer`] are the
//! only implementations.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The JSON-like data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact, not as a float).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (sorted keys, like serde_json's default BTreeMap map).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The contained array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained object, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The contained string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The contained boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object-field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Builds the externally-tagged enum encoding `{"Variant": payload}`.
pub fn variant_value(name: &str, payload: Value) -> Value {
    let mut map = BTreeMap::new();
    map.insert(name.to_owned(), payload);
    Value::Object(map)
}

// ------------------------------------------------------------ serialization

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;

    /// Generic entry point, so `#[serde(with = "…")]` modules can keep the
    /// canonical `value.serialize(serializer)` form.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        Self: Sized,
    {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for a serialized [`Value`].
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error;
    /// Consumes the finished value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// The canonical serializer: yields the [`Value`] unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;
    fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Maps serialize as JSON objects; the key's serialized form must be a
/// string (e.g. a unit enum variant), mirroring serde_json's rule.
fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        let key = match k.to_value() {
            Value::String(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            other => panic!("map key must serialize to a string, got {other:?}"),
        };
        map.insert(key, v.to_value());
    }
    Value::Object(map)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

// ---------------------------------------------------------- deserialization

pub mod de {
    //! Deserialization half of the facade.

    use super::Value;
    use std::fmt;

    /// Error construction, mirroring `serde::de::Error`.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A plain-string deserialization error.
    #[derive(Debug, Clone)]
    pub struct SimpleError(pub String);

    impl fmt::Display for SimpleError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for SimpleError {}

    impl Error for SimpleError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            SimpleError(msg.to_string())
        }
    }

    /// A source of a borrowed [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Yields the value to deserialize from.
        fn value(self) -> Result<&'de Value, Self::Error>;
    }

    /// The canonical deserializer: wraps a borrowed [`Value`].
    #[derive(Debug, Clone, Copy)]
    pub struct ValueDeserializer<'de> {
        value: &'de Value,
    }

    impl<'de> ValueDeserializer<'de> {
        /// Wraps `value`.
        pub fn new(value: &'de Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
        type Error = SimpleError;
        fn value(self) -> Result<&'de Value, SimpleError> {
            Ok(self.value)
        }
    }

    /// Splits the externally-tagged enum encoding: a bare string is a unit
    /// variant; a single-entry object is a data variant.
    pub fn enum_parts(value: &Value) -> Result<(&str, &Value), String> {
        const NULL: &Value = &Value::Null;
        match value {
            Value::String(s) => Ok((s, NULL)),
            Value::Object(map) if map.len() == 1 => {
                let (k, v) = map.iter().next().expect("len checked");
                Ok((k, v))
            }
            other => Err(format!("expected an enum encoding, got {other:?}")),
        }
    }

    /// Deserialization from a borrowed [`Value`] tree.
    pub trait Deserialize<'de>: Sized {
        /// Reads `Self` out of the deserializer's value.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// `Deserialize` at any lifetime — what owned-result APIs like
    /// `serde_json::from_str` require.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    fn err<'de, D: Deserializer<'de>, T>(msg: impl fmt::Display) -> Result<T, D::Error> {
        Err(D::Error::custom(msg))
    }

    impl<'de> Deserialize<'de> for bool {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::Bool(b) => Ok(*b),
                other => err::<D, _>(format_args!("expected bool, got {other:?}")),
            }
        }
    }

    macro_rules! deserialize_int {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let value = d.value()?;
                    let out = match value {
                        Value::U64(n) => <$t>::try_from(*n).ok(),
                        Value::I64(n) => <$t>::try_from(*n).ok(),
                        Value::F64(n) if n.fract() == 0.0 => Some(*n as $t),
                        _ => None,
                    };
                    match out {
                        Some(v) => Ok(v),
                        None => err::<D, _>(format_args!(
                            "expected {}, got {value:?}", stringify!($t)
                        )),
                    }
                }
            }
        )*};
    }
    deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! deserialize_float {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    match d.value()?.as_f64() {
                        Some(v) => Ok(v as $t),
                        None => err::<D, _>("expected number"),
                    }
                }
            }
        )*};
    }
    deserialize_float!(f32, f64);

    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::String(s) => Ok(s.clone()),
                other => err::<D, _>(format_args!("expected string, got {other:?}")),
            }
        }
    }

    impl<'de> Deserialize<'de> for Value {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            Ok(d.value()?.clone())
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::Null => Ok(None),
                v => T::deserialize(ValueDeserializer::new(v)).map(Some).map_err(D::Error::custom),
            }
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            T::deserialize(d).map(Box::new)
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::Array(items) => items
                    .iter()
                    .map(|v| T::deserialize(ValueDeserializer::new(v)).map_err(D::Error::custom))
                    .collect(),
                other => err::<D, _>(format_args!("expected array, got {other:?}")),
            }
        }
    }

    impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::Array(items) if items.len() == N => {
                    let mut out = Vec::with_capacity(N);
                    for v in items {
                        out.push(
                            T::deserialize(ValueDeserializer::new(v)).map_err(D::Error::custom)?,
                        );
                    }
                    match out.try_into() {
                        Ok(array) => Ok(array),
                        Err(_) => err::<D, _>("array length mismatch"),
                    }
                }
                other => err::<D, _>(format_args!("expected {N}-element array, got {other:?}")),
            }
        }
    }

    macro_rules! deserialize_tuple {
        ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
            impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                    match d.value()? {
                        Value::Array(items) if items.len() == $len => Ok(($(
                            $t::deserialize(ValueDeserializer::new(&items[$n]))
                                .map_err(__D::Error::custom)?,
                        )+)),
                        other => err::<__D, _>(format_args!(
                            "expected {}-tuple, got {other:?}", $len
                        )),
                    }
                }
            }
        )*};
    }
    deserialize_tuple! {
        (0 A; 1)
        (0 A, 1 B; 2)
        (0 A, 1 B, 2 C; 3)
        (0 A, 1 B, 2 C, 3 D; 4)
        (0 A, 1 B, 2 C, 3 D, 4 E; 5)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F; 6)
    }

    impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
    where
        // Keys are rehydrated through a temporary string Value, so their
        // deserialization cannot borrow from the 'de input.
        K: for<'k> Deserialize<'k> + Ord,
        V: Deserialize<'de>,
    {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.value()? {
                Value::Object(entries) => {
                    let mut out = std::collections::BTreeMap::new();
                    for (k, v) in entries {
                        // Keys were flattened to strings on the way out;
                        // rehydrate them through the string encoding.
                        let key_value = Value::String(k.clone());
                        let key = K::deserialize(ValueDeserializer::new(&key_value))
                            .map_err(D::Error::custom)?;
                        let val =
                            V::deserialize(ValueDeserializer::new(v)).map_err(D::Error::custom)?;
                        out.insert(key, val);
                    }
                    Ok(out)
                }
                other => err::<D, _>(format_args!("expected object, got {other:?}")),
            }
        }
    }
}

pub use de::{Deserialize, DeserializeOwned, Deserializer};

/// Shared `Null` for out-of-range `Index` lookups.
static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self)
    }
}

fn write_value(f: &mut fmt::Formatter<'_>, value: &Value) -> fmt::Result {
    match value {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::U64(n) => write!(f, "{n}"),
        Value::I64(n) => write!(f, "{n}"),
        Value::F64(n) => write_f64(f, *n),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_value(f, item)?;
            }
            f.write_str("]")
        }
        Value::Object(map) => {
            f.write_str("{")?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(f, k)?;
                f.write_str(":")?;
                write_value(f, v)?;
            }
            f.write_str("}")
        }
    }
}

/// Shortest-roundtrip float rendering; infinities and NaN are not valid
/// JSON, so they degrade to `null` like serde_json.
fn write_f64(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.is_finite() {
        write!(f, "{n:?}")
    } else {
        f.write_str("null")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(42u64.to_value(), Value::U64(42));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(v.as_array().unwrap().len(), 3);
    }

    #[test]
    fn float_display_is_shortest_roundtrip() {
        assert_eq!(Value::F64(1.0).to_string(), "1.0");
        assert_eq!(Value::F64(0.1).to_string(), "0.1");
    }

    #[test]
    fn option_none_is_null() {
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
        assert_eq!(Some(5u64).to_value(), Value::U64(5));
    }
}
