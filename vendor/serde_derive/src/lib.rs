//! Vendored offline stand-in for `serde_derive`.
//!
//! The build container has no network access and no registry cache, so the
//! real `serde_derive` (and its `syn`/`quote` dependency tree) cannot be
//! fetched. This crate re-implements the two derives against the vendored
//! `serde` facade using only the compiler-provided `proc_macro` API.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! - structs with named fields (including `#[serde(with = "path")]` fields)
//! - tuple structs (newtype structs serialize transparently)
//! - unit structs
//! - enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default)
//!
//! Generics, lifetimes, and the wider serde attribute language are
//! deliberately unsupported; deriving on such a type is a compile error
//! rather than a silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (value-tree based; see the vendored serde).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (value-tree based; see the vendored serde).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    // Attributes and visibility are single trees or idents before the
    // keyword; groups are opaque, so a top-level scan is safe.
    let mut i = 0;
    let mut is_enum = false;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            let s = id.to_string();
            if s == "struct" {
                break;
            }
            if s == "enum" {
                is_enum = true;
                break;
            }
        }
        i += 1;
    }
    if i == toks.len() {
        return Err("serde derive: expected `struct` or `enum`".to_owned());
    }
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected a type name".to_owned()),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }
    if is_enum {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err("serde derive: expected enum body".to_owned()),
        };
        Ok(Item::Enum { name, variants: parse_variants(body)? })
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())?) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct { name, fields: Fields::Unit })
            }
            _ => Err("serde derive: expected struct body".to_owned()),
        }
    }
}

/// Extracts `with = "path"` from the tokens inside a `#[serde(...)]` group.
fn parse_serde_attr(group: &TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    // Shape: serde ( with = "path" )
    if let Some(TokenTree::Ident(id)) = toks.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(inner)) = toks.get(1) {
                let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
                let mut j = 0;
                while j < inner.len() {
                    if let TokenTree::Ident(key) = &inner[j] {
                        if key.to_string() == "with" {
                            if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                                let s = lit.to_string();
                                return Some(s.trim_matches('"').to_owned());
                            }
                        }
                    }
                    j += 1;
                }
            }
        }
    }
    None
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut with = None;
        // attributes
        while matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                if let Some(path) = parse_serde_attr(&g.stream()) {
                    with = Some(path);
                }
            }
            i += 2;
        }
        // visibility
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde derive: expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!("serde derive: expected `:` after `{name}`, found {other:?}"))
            }
        }
        // Skip the type: commas inside angle brackets are not separators.
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with });
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attribute
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde derive: expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde derive: explicit discriminant on variant `{name}` is not supported"
            ));
        }
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut s = String::from(
                        "let mut map = ::std::collections::BTreeMap::<::std::string::String, ::serde::Value>::new();\n",
                    );
                    for f in fields {
                        let value = match &f.with {
                            Some(path) => format!(
                                "{path}::serialize(&self.{}, ::serde::ValueSerializer).unwrap()",
                                f.name
                            ),
                            None => format!("::serde::Serialize::to_value(&self.{})", f.name),
                        };
                        s.push_str(&format!(
                            "map.insert(::std::string::String::from({:?}), {value});\n",
                            f.name
                        ));
                    }
                    s.push_str("::serde::Value::Object(map)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::variant_value({vn:?}, ::serde::Serialize::to_value(x0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant_value({vn:?}, ::serde::Value::Array(vec![{}])),\n",
                            pats.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut map = ::std::collections::BTreeMap::<::std::string::String, ::serde::Value>::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "map.insert(::std::string::String::from({:?}), ::serde::Serialize::to_value({}));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} ::serde::variant_value({vn:?}, ::serde::Value::Object(map)) }}\n",
                            pats.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n match self {{\n {arms} }}\n }}\n}}\n"
            )
        }
    }
}

/// Expression deserializing `value_expr` (an `&::serde::Value` with the
/// `'de` lifetime) into the inferred target type, converting errors to `D::Error`.
fn deser_sub(value_expr: &str, with: Option<&String>) -> String {
    match with {
        Some(path) => format!(
            "match {path}::deserialize(::serde::de::ValueDeserializer::new({value_expr})) {{\n Ok(v) => v,\n Err(e) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(e)),\n }}"
        ),
        None => format!(
            "match ::serde::Deserialize::deserialize(::serde::de::ValueDeserializer::new({value_expr})) {{\n Ok(v) => v,\n Err(e) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(e)),\n }}"
        ),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut s = String::from(
                        "let obj = match value {\n ::serde::Value::Object(m) => m,\n _ => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected object\")),\n };\n",
                    );
                    s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                    for f in fields {
                        let get = format!("obj.get({:?}).unwrap_or(&::serde::Value::Null)", f.name);
                        s.push_str(&format!(
                            "{}: {{ let sub = {get}; {} }},\n",
                            f.name,
                            deser_sub("sub", f.with.as_ref())
                        ));
                    }
                    s.push_str("})");
                    s
                }
                Fields::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}({}))", deser_sub("value", None))
                }
                Fields::Tuple(n) => {
                    let mut s = String::from(
                        "let arr = match value {\n ::serde::Value::Array(a) => a,\n _ => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected array\")),\n };\n",
                    );
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            deser_sub(
                                &format!("arr.get({i}).unwrap_or(&::serde::Value::Null)"),
                                None,
                            )
                        })
                        .collect();
                    s.push_str(&format!("::std::result::Result::Ok({name}({}))", items.join(", ")));
                    s
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{vn:?} => {{ let sub = payload; ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                        deser_sub("sub", None)
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                deser_sub(
                                    &format!("arr.get({i}).unwrap_or(&::serde::Value::Null)"),
                                    None,
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{vn:?} => {{\n let arr = match payload {{\n ::serde::Value::Array(a) => a,\n _ => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected array payload\")),\n }};\n ::std::result::Result::Ok({name}::{vn}({}))\n }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inner = String::from(
                            "let obj = match payload {\n ::serde::Value::Object(m) => m,\n _ => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected object payload\")),\n };\n",
                        );
                        inner.push_str(&format!("::std::result::Result::Ok({name}::{vn} {{\n"));
                        for f in fields {
                            let get = format!(
                                "obj.get({:?}).unwrap_or(&::serde::Value::Null)",
                                f.name
                            );
                            inner.push_str(&format!(
                                "{}: {{ let sub = {get}; {} }},\n",
                                f.name,
                                deser_sub("sub", f.with.as_ref())
                            ));
                        }
                        inner.push_str("})");
                        arms.push_str(&format!("{vn:?} => {{ {inner} }}\n"));
                    }
                }
            }
            let body = format!(
                "let (tag, payload) = match ::serde::de::enum_parts(value) {{\n Ok(parts) => parts,\n Err(e) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(e)),\n }};\n match tag {{\n {arms} other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(format!(\"unknown variant {{other}} of {name}\"))),\n }}"
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::std::result::Result<Self, D::Error> {{\n let value = deserializer.value()?;\n {body}\n }}\n}}\n"
    )
}
