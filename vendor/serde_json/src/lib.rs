//! Vendored offline stand-in for `serde_json`.
//!
//! Renders and parses JSON over the vendored serde's [`Value`] tree.
//! Covers the workspace's usage: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`Value`], and the [`json!`] macro.

pub use serde::Value;
use serde::{DeserializeOwned, Serialize};
use std::fmt;

/// A JSON parse or conversion error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// Byte offset the parser had reached, where applicable.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Error { message: message.into(), offset }
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored facade; the `Result` keeps the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored facade; the `Result` keeps the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(serde::de::ValueDeserializer::new(&value))
        .map_err(|e| Error::new(e.to_string(), 0))
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape", self.pos));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape", self.pos)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8", start))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`"), start))
    }
}

// ------------------------------------------------------------------- json!

/// Builds a [`Value`] from a JSON-ish literal; expression positions accept
/// anything implementing the vendored `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        // `Vec::from` rather than `Vec::new` keeps the expansion clear of
        // clippy's `vec_init_then_push` at `-D warnings` call sites.
        let mut array = ::std::vec::Vec::<$crate::Value>::from([]);
        $crate::json_array_internal!(array; $($tt)+);
        $crate::Value::Array(array)
    }};
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object_internal!(object; $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: object-entry muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* }) => {
        $obj.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ]) => {
        $obj.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
    };
    ($obj:ident; $key:literal : null , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : null) => {
        $obj.insert(::std::string::String::from($key), $crate::Value::Null);
    };
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.insert(::std::string::String::from($key), $crate::to_value(&$value));
        $crate::json_object_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.insert(::std::string::String::from($key), $crate::to_value(&$value));
    };
}

/// Implementation detail of [`json!`]: array-element muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($arr:ident;) => {};
    ($arr:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; { $($inner:tt)* }) => {
        $arr.push($crate::json!({ $($inner)* }));
    };
    ($arr:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; [ $($inner:tt)* ]) => {
        $arr.push($crate::json!([ $($inner)* ]));
    };
    ($arr:ident; null , $($rest:tt)*) => {
        $arr.push($crate::Value::Null);
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; null) => {
        $arr.push($crate::Value::Null);
    };
    ($arr:ident; $value:expr , $($rest:tt)*) => {
        $arr.push($crate::to_value(&$value));
        $crate::json_array_internal!($arr; $($rest)*);
    };
    ($arr:ident; $value:expr) => {
        $arr.push($crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact_output() {
        let v = json!({"a": 1, "b": [true, null, 2.5], "c": {"nested": "x\"y"}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"rows": [{"x": 1}, {"x": 2}], "name": "t"});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_keep_integer_and_float_identity() {
        let back: Value = from_str("[1, -2, 3.5, 1e3]").unwrap();
        let items = back.as_array().unwrap();
        assert_eq!(items[0], Value::U64(1));
        assert_eq!(items[1], Value::I64(-2));
        assert_eq!(items[2], Value::F64(3.5));
        assert_eq!(items[3], Value::F64(1000.0));
    }

    #[test]
    fn float_round_trip_is_exact() {
        let original = 0.1f64 + 0.2f64;
        let text = to_string(&original).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(original.to_bits(), back.to_bits());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
