//! Vendored offline stand-in for `criterion`.
//!
//! Implements the group/bench surface this workspace's benches use:
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each bench runs a short warm-up,
//! then a fixed batch of timed iterations, and prints the mean wall time.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    warm_up_iters: u64,
    sample_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up_iters: 3, sample_iters: 30 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name }
    }
}

/// A named set of benchmarks sharing a report section.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints a one-line report.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Times `f`, passing it `input`, and prints a one-line report.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (kept for API compatibility; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier combining a function name and an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    warm_up_iters: u64,
    sample_iters: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(criterion: &Criterion) -> Self {
        Bencher {
            warm_up_iters: criterion.warm_up_iters,
            sample_iters: criterion.sample_iters,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Runs `routine` repeatedly, recording total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warm_up_iters {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.sample_iters;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("  {group}/{id}: no iterations recorded");
            return;
        }
        let mean = self.elapsed.as_secs_f64() / self.iters as f64;
        println!("  {group}/{id}: {:.3} us/iter ({} iters)", mean * 1e6, self.iters);
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion { warm_up_iters: 1, sample_iters: 2 };
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3u32), &3u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("sim", "large").to_string(), "sim/large");
    }
}
