//! Tile-size auto-tuning: sweep a parameter over the simulator and keep
//! the fastest configuration.
//!
//! The paper attributes inefficiencies to "suboptimal algorithms,
//! parameter configurations, or task allocations" (Section 1); tile size
//! is the parameter configuration the operator generators expose, and it
//! trades transfer granularity (ITG's lever) against buffer pressure and
//! pipeline depth. [`tune`] is the grid search an engineer would run.

use ascend_arch::ChipSpec;
use ascend_ops::Operator;
use ascend_sim::{SimError, Simulator};
use serde::{Deserialize, Serialize};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// The parameter value (e.g. tile elements).
    pub value: u64,
    /// Simulated cycles, or `None` when the configuration failed to
    /// build (e.g. a tile larger than the staging buffer).
    pub cycles: Option<f64>,
}

/// The outcome of a [`tune`] sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// The winning parameter value.
    pub best_value: u64,
    /// Cycles at the winning value.
    pub best_cycles: f64,
    /// Every trial, in candidate order.
    pub trials: Vec<Trial>,
}

impl TuneResult {
    /// Speedup of the best configuration over the worst *feasible* one.
    #[must_use]
    pub fn spread(&self) -> f64 {
        let worst = self.trials.iter().filter_map(|t| t.cycles).fold(0.0f64, f64::max);
        if self.best_cycles > 0.0 {
            worst / self.best_cycles
        } else {
            1.0
        }
    }
}

/// Sweeps `candidates` through `make`, simulating each resulting operator
/// on `chip`, and returns the fastest feasible configuration.
///
/// Infeasible candidates (kernel construction fails, e.g. buffer
/// overflow) are recorded with `cycles: None` and skipped.
///
/// # Errors
///
/// Returns an error only when *no* candidate is feasible, or the
/// simulator fails on a feasible kernel.
///
/// # Examples
///
/// ```
/// use ascend_arch::ChipSpec;
/// use ascend_ops::AddRelu;
/// use ascend_optimize::autotune::tune;
///
/// let chip = ChipSpec::training();
/// let result = tune(&chip, &[2048, 8192, 16384, 32768], |tile| {
///     Box::new(AddRelu::new(1 << 18).with_tile(tile))
/// })?;
/// assert!(result.best_cycles > 0.0);
/// # Ok::<(), ascend_sim::SimError>(())
/// ```
pub fn tune(
    chip: &ChipSpec,
    candidates: &[u64],
    make: impl Fn(u64) -> Box<dyn Operator>,
) -> Result<TuneResult, SimError> {
    let sim = Simulator::new(chip.clone());
    let mut trials = Vec::with_capacity(candidates.len());
    let mut best: Option<(u64, f64)> = None;
    let mut last_build_error = None;
    for &value in candidates {
        let op = make(value);
        let cycles = match op.build(chip) {
            Ok(kernel) => {
                let t = sim.simulate(&kernel)?.total_cycles();
                if best.is_none_or(|(_, b)| t < b) {
                    best = Some((value, t));
                }
                Some(t)
            }
            Err(err) => {
                last_build_error = Some(err);
                None
            }
        };
        trials.push(Trial { value, cycles });
    }
    // No feasible candidate: surface the last builder rejection (or, for
    // an empty candidate list, the empty-kernel error) as the cause.
    let (best_value, best_cycles) = best.ok_or_else(|| {
        SimError::Validation(last_build_error.unwrap_or(ascend_isa::IsaError::EmptyKernel))
    })?;
    Ok(TuneResult { best_value, best_cycles, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::{AddRelu, AvgPool, Elementwise, EltwiseKind, OptFlags};

    const CANDIDATES: &[u64] = &[1024, 4096, 8192, 16384, 32768, 65536];

    #[test]
    fn tuned_tile_is_at_least_as_good_as_the_default() {
        let chip = ChipSpec::training();
        let result = tune(&chip, CANDIDATES, |tile| {
            Box::new(AddRelu::new(1 << 19).with_flags(OptFlags::new().rsd(true)).with_tile(tile))
        })
        .unwrap();
        let default_cycles = {
            let op = AddRelu::new(1 << 19).with_flags(OptFlags::new().rsd(true));
            let kernel = ascend_ops::Operator::build(&op, &chip).unwrap();
            ascend_sim::Simulator::new(chip).simulate(&kernel).unwrap().total_cycles()
        };
        assert!(result.best_cycles <= default_cycles + 1e-6);
        assert!(result.spread() >= 1.0);
    }

    #[test]
    fn infeasible_candidates_are_skipped_not_fatal() {
        let chip = ChipSpec::training();
        // 1 GiB tiles cannot fit the UB: recorded as None, others win.
        let result = tune(&chip, &[8192, 1 << 30], |tile| {
            Box::new(Elementwise::new(EltwiseKind::Mul, 1 << 16).with_tile(tile))
        })
        .unwrap();
        assert_eq!(result.best_value, 8192);
        assert_eq!(result.trials[1].cycles, None);
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let chip = ChipSpec::training();
        let result = tune(&chip, &[1 << 30], |tile| {
            Box::new(Elementwise::new(EltwiseKind::Mul, 1 << 16).with_tile(tile))
        });
        assert!(result.is_err());
    }

    #[test]
    fn tiny_tiles_lose_to_reasonable_ones() {
        // Tiny tiles multiply per-transfer overhead: the sweep must not
        // pick them.
        let chip = ChipSpec::training();
        let result =
            tune(&chip, &[64, 256, 16384], |tile| Box::new(AvgPool::new(1 << 14).with_tile(tile)))
                .unwrap();
        assert!(result.best_value >= 256, "picked {}", result.best_value);
        assert!(result.spread() > 1.5, "tile size must matter, spread {:.2}", result.spread());
    }
}
