//! The named optimization strategies of Section 5.

use ascend_ops::OptFlags;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's optimization strategies.
///
/// Each strategy maps onto one [`OptFlags`] bit; see
/// [`Strategy::apply_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Reducing Spatial Dependency (Section 5.1).
    Rsd,
    /// Minimizing Redundant Transfer (Section 5.1).
    Mrt,
    /// Adjusting Instruction Sequence (Section 5.2).
    Ais,
    /// Removing Unnecessary Synchronization (Section 5.2).
    Rus,
    /// Ping-pong Policy (Section 5.2).
    Pp,
    /// Increasing Transfer Granularity (Section 5.2).
    Itg,
    /// Adjusting Instruction Parameter (Section 5.3).
    Aip,
    /// Operator Fusion (Section 5.4, MTE bound).
    OpFusion,
    /// Transfer Transformation (Section 5.4, MTE bound).
    Tt,
    /// Enhanced Algorithm (Section 5.4, compute bound).
    Ea,
    /// Low-precision Calculation (Section 5.4, compute bound).
    Lc,
    /// Computation Transformation (Section 5.4, compute bound).
    Ct,
}

impl Strategy {
    /// All strategies.
    pub const ALL: [Strategy; 12] = [
        Strategy::Rsd,
        Strategy::Mrt,
        Strategy::Ais,
        Strategy::Rus,
        Strategy::Pp,
        Strategy::Itg,
        Strategy::Aip,
        Strategy::OpFusion,
        Strategy::Tt,
        Strategy::Ea,
        Strategy::Lc,
        Strategy::Ct,
    ];

    /// The paper's abbreviation, e.g. `"RSD"`.
    #[must_use]
    pub const fn abbrev(self) -> &'static str {
        match self {
            Strategy::Rsd => "RSD",
            Strategy::Mrt => "MRT",
            Strategy::Ais => "AIS",
            Strategy::Rus => "RUS",
            Strategy::Pp => "PP",
            Strategy::Itg => "ITG",
            Strategy::Aip => "AIP",
            Strategy::OpFusion => "OP",
            Strategy::Tt => "TT",
            Strategy::Ea => "EA",
            Strategy::Lc => "LC",
            Strategy::Ct => "CT",
        }
    }

    /// The full name as used in the paper.
    #[must_use]
    pub const fn full_name(self) -> &'static str {
        match self {
            Strategy::Rsd => "Reducing Spatial Dependency",
            Strategy::Mrt => "Minimizing Redundant Transfer",
            Strategy::Ais => "Adjusting Instruction Sequence",
            Strategy::Rus => "Removing Unnecessary Synchronization",
            Strategy::Pp => "Ping-pong Policy",
            Strategy::Itg => "Increasing Transfer Granularity",
            Strategy::Aip => "Adjusting Instruction Parameter",
            Strategy::OpFusion => "Operator Fusion",
            Strategy::Tt => "Transfer Transformation",
            Strategy::Ea => "Enhanced Algorithm",
            Strategy::Lc => "Low-precision Calculation",
            Strategy::Ct => "Computation Transformation",
        }
    }

    /// Returns `flags` with this strategy's bit set.
    #[must_use]
    pub fn apply_to(self, flags: OptFlags) -> OptFlags {
        match self {
            Strategy::Rsd => flags.rsd(true),
            Strategy::Mrt => flags.mrt(true),
            Strategy::Ais => flags.ais(true),
            Strategy::Rus => flags.rus(true),
            Strategy::Pp => flags.pp(true),
            Strategy::Itg => flags.itg(true),
            Strategy::Aip => flags.aip(true),
            Strategy::OpFusion => flags.fused(true),
            Strategy::Tt => flags.tt(true),
            Strategy::Ea => flags.ea(true),
            Strategy::Lc => flags.lc(true),
            Strategy::Ct => flags.ct(true),
        }
    }

    /// Whether `flags` already has this strategy applied.
    #[must_use]
    pub fn is_applied(self, flags: OptFlags) -> bool {
        match self {
            Strategy::Rsd => flags.has_rsd(),
            Strategy::Mrt => flags.has_mrt(),
            Strategy::Ais => flags.has_ais(),
            Strategy::Rus => flags.has_rus(),
            Strategy::Pp => flags.has_pp(),
            Strategy::Itg => flags.has_itg(),
            Strategy::Aip => flags.has_aip(),
            Strategy::OpFusion => flags.has_fused(),
            Strategy::Tt => flags.has_tt(),
            Strategy::Ea => flags.has_ea(),
            Strategy::Lc => flags.has_lc(),
            Strategy::Ct => flags.has_ct(),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_round_trips_through_is_applied() {
        for strategy in Strategy::ALL {
            let flags = strategy.apply_to(OptFlags::new());
            assert!(strategy.is_applied(flags), "{strategy}");
            assert_eq!(flags.count(), 1);
            for other in Strategy::ALL {
                if other != strategy {
                    assert!(!other.is_applied(flags), "{other} leaked from {strategy}");
                }
            }
        }
    }

    #[test]
    fn abbreviations_are_unique() {
        let mut names: Vec<&str> = Strategy::ALL.iter().map(|s| s.abbrev()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn all_flags_is_all_strategies() {
        let mut flags = OptFlags::new();
        for strategy in Strategy::ALL {
            flags = strategy.apply_to(flags);
        }
        assert_eq!(flags, OptFlags::all());
    }
}
