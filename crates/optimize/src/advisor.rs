//! The diagnosis→strategy advisor (paper, Sections 5.1–5.4 and Table 1).

use crate::Strategy;
use ascend_roofline::{Bottleneck, RooflineAnalysis};

/// Suggests optimization strategies for a diagnosed bottleneck, in the
/// order the paper's case studies apply them.
///
/// | Diagnosis | Strategies |
/// |---|---|
/// | Insufficient parallelism | RSD, AIS, RUS, PP |
/// | Inefficient MTE | ITG, MRT, Operator Fusion |
/// | Inefficient compute | AIP, CT |
/// | MTE bound | MRT, Operator Fusion, TT, ITG, EA |
/// | Compute bound | EA, LC, CT |
///
/// The MTE-bound row extends the paper's Section 5.4 list with ITG
/// (larger transfers raise the achieved fraction of a bound engine's
/// bandwidth) and EA (algorithm substitution can eliminate traffic, the
/// way DropoutDoMaskV3 replaces the materialized mask).
///
/// # Examples
///
/// ```
/// use ascend_arch::ChipSpec;
/// use ascend_ops::{AvgPool, Operator};
/// use ascend_profile::Profiler;
/// use ascend_roofline::{analyze, Thresholds};
/// use ascend_optimize::{advise, Strategy};
///
/// let chip = ChipSpec::inference();
/// let kernel = AvgPool::new(1 << 15).build(&chip)?;
/// let (profile, _) = Profiler::new(chip.clone()).run(&kernel)?;
/// let analysis = analyze(&profile, &chip, &Thresholds::default());
/// let suggestions = advise(&analysis);
/// assert_eq!(suggestions.first(), Some(&Strategy::Aip));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn advise(analysis: &RooflineAnalysis) -> Vec<Strategy> {
    match analysis.bottleneck() {
        Bottleneck::InsufficientParallelism => {
            vec![Strategy::Rsd, Strategy::Ais, Strategy::Rus, Strategy::Pp]
        }
        Bottleneck::InefficientMte(_) => {
            vec![Strategy::Itg, Strategy::Mrt, Strategy::OpFusion]
        }
        Bottleneck::InefficientCompute(_) => vec![Strategy::Aip, Strategy::Ct],
        Bottleneck::MteBound(_) => {
            vec![Strategy::Mrt, Strategy::OpFusion, Strategy::Tt, Strategy::Itg, Strategy::Ea]
        }
        Bottleneck::ComputeBound(_) => vec![Strategy::Ea, Strategy::Lc, Strategy::Ct],
        Bottleneck::Idle => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{ChipSpec, Component, ComputeUnit};
    use ascend_ops::{AddRelu, Operator};
    use ascend_profile::{Profile, Profiler};
    use ascend_roofline::{analyze, Thresholds};

    fn analysis_of(kernel: &ascend_isa::Kernel, chip: &ChipSpec) -> RooflineAnalysis {
        let (profile, _) = Profiler::new(chip.clone()).run(kernel).unwrap();
        analyze(&profile, chip, &Thresholds::default())
    }

    #[test]
    fn baseline_add_relu_gets_parallelism_advice_first() {
        let chip = ChipSpec::training();
        let kernel = AddRelu::new(1 << 19).build(&chip).unwrap();
        let suggestions = advise(&analysis_of(&kernel, &chip));
        assert_eq!(suggestions.first(), Some(&Strategy::Rsd));
    }

    #[test]
    fn idle_profile_gets_no_advice() {
        let chip = ChipSpec::training();
        let analysis = analyze(&Profile::empty("idle"), &chip, &Thresholds::default());
        assert!(advise(&analysis).is_empty());
    }

    #[test]
    fn every_non_idle_bottleneck_has_suggestions() {
        // Construct synthetic analyses for each class via the classify
        // path: easiest is to reuse Bottleneck values through real cases,
        // so here we just assert the advice table covers all variants.
        use ascend_roofline::Bottleneck as B;
        for b in [
            B::ComputeBound(ComputeUnit::Cube),
            B::MteBound(Component::MteGm),
            B::InsufficientParallelism,
            B::InefficientMte(Component::MteUb),
            B::InefficientCompute(ComputeUnit::Vector),
        ] {
            // The advisor only looks at the bottleneck; emulate via a tiny
            // shim analysis by matching on the same arms.
            let strategies = match b {
                B::InsufficientParallelism => {
                    vec![Strategy::Rsd, Strategy::Ais, Strategy::Rus, Strategy::Pp]
                }
                B::InefficientMte(_) => vec![Strategy::Itg, Strategy::Mrt, Strategy::OpFusion],
                B::InefficientCompute(_) => vec![Strategy::Aip, Strategy::Ct],
                B::MteBound(_) => vec![
                    Strategy::Mrt,
                    Strategy::OpFusion,
                    Strategy::Tt,
                    Strategy::Itg,
                    Strategy::Ea,
                ],
                B::ComputeBound(_) => vec![Strategy::Ea, Strategy::Lc, Strategy::Ct],
                B::Idle => Vec::new(),
            };
            assert!(!strategies.is_empty(), "{b:?} must map to advice");
        }
    }
}
