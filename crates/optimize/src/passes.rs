//! IR-level optimization passes over [`Kernel`]s.
//!
//! The [`Optimizer`](crate::Optimizer) works at the operator level by
//! flipping generator flags; these passes instead transform an *existing*
//! instruction stream, the way a kernel engineer would patch code they do
//! not regenerate:
//!
//! - [`minimize_redundant_transfers`] — drop transfers that re-move bytes
//!   that are provably still in place (MRT);
//! - [`remove_unnecessary_barriers`] — drop `pipe_barrier(ALL)`s whose
//!   surrounding segments share no memory and no queue (RUS);
//! - [`hoist_transfers`] — move MTE transfers earlier in program order
//!   past unrelated instructions so the dispatcher issues them sooner
//!   (AIS).
//!
//! All passes are conservative: they only fire when the dependence
//! analysis proves the reordering invisible to the memory model.

use ascend_isa::{FlagId, Instruction, Kernel};

fn writes_overlap(instr: &Instruction, other: &Instruction) -> bool {
    instr.conflicts_with(other)
}

/// Fuses two kernels into one instruction stream (Operator Fusion at the
/// IR level): `second` runs after `first` in the same kernel, so its
/// loads can overlap `first`'s tail instead of waiting for a fresh launch
/// — the same GM-round-trip saving the paper's OP strategy describes,
/// applied to kernels that were authored separately.
///
/// `second`'s flags are renumbered past `first`'s so the two sync spaces
/// cannot collide.
#[must_use]
pub fn fuse_kernels(first: &Kernel, second: &Kernel) -> Kernel {
    let max_flag = first
        .iter()
        .filter_map(|i| match i {
            Instruction::SetFlag { flag, .. } | Instruction::WaitFlag { flag, .. } => {
                Some(flag.raw())
            }
            _ => None,
        })
        .max()
        .map_or(0, |m| m + 1);
    let mut instructions: Vec<Instruction> = first.instructions().to_vec();
    for instr in second {
        instructions.push(match instr {
            Instruction::SetFlag { queue, flag } => {
                Instruction::SetFlag { queue: *queue, flag: FlagId::new(flag.raw() + max_flag) }
            }
            Instruction::WaitFlag { queue, flag } => {
                Instruction::WaitFlag { queue: *queue, flag: FlagId::new(flag.raw() + max_flag) }
            }
            other => other.clone(),
        });
    }
    Kernel::from_parts(format!("{}+{}", first.name(), second.name()), instructions)
}

/// Removes transfers that are exact repeats of an earlier transfer whose
/// source and destination have not been written in between — the
/// loop-invariant constant reload of the Add_ReLU case study (Figure 10).
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, ChipSpec, TransferPath};
/// use ascend_isa::{KernelBuilder, Region};
/// use ascend_optimize::passes::minimize_redundant_transfers;
///
/// let gm_c = Region::new(Buffer::Gm, 0, 64);
/// let ub_c = Region::new(Buffer::Ub, 0, 64);
/// let mut b = KernelBuilder::new("loop");
/// for _ in 0..4 {
///     b.transfer(TransferPath::GmToUb, gm_c, ub_c)?; // redundant reload
/// }
/// let hoisted = minimize_redundant_transfers(&b.build());
/// assert_eq!(hoisted.len(), 1);
/// # Ok::<(), ascend_isa::IsaError>(())
/// ```
#[must_use]
pub fn minimize_redundant_transfers(kernel: &Kernel) -> Kernel {
    let instructions = kernel.instructions();
    let mut keep: Vec<bool> = vec![true; instructions.len()];
    for (i, instr) in instructions.iter().enumerate() {
        let Instruction::Transfer(t) = instr else { continue };
        // Find an identical earlier transfer still marked kept.
        let Some(prev) = instructions[..i]
            .iter()
            .enumerate()
            .rev()
            .find(|(j, earlier)| keep[*j] && *earlier == instr)
            .map(|(j, _)| j)
        else {
            continue;
        };
        // Redundant only if no *surviving* instruction between them
        // writes src or dst (already-removed repeats cannot clobber).
        let clobbered = instructions[prev + 1..i].iter().enumerate().any(|(off, between)| {
            keep[prev + 1 + off]
                && between.writes().iter().any(|w| w.overlaps(&t.src) || w.overlaps(&t.dst))
        });
        if !clobbered {
            keep[i] = false;
        }
    }
    let kept: Vec<Instruction> = instructions
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(instr, _)| instr.clone())
        .collect();
    kernel.with_instructions(kept)
}

/// Removes `pipe_barrier(ALL)` instructions that order nothing: a barrier
/// is dropped when no instruction before it (since the previous barrier)
/// conflicts with any instruction after it (until the next barrier) on a
/// *different* queue. Same-queue ordering is free, so such a barrier only
/// costs parallelism (the Depthwise case study, Section 5.2).
#[must_use]
pub fn remove_unnecessary_barriers(kernel: &Kernel) -> Kernel {
    let instructions = kernel.instructions();
    let n = instructions.len();
    let mut keep = vec![true; n];
    // Precompute barrier positions.
    let barriers: Vec<usize> = instructions
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instruction::Barrier))
        .map(|(i, _)| i)
        .collect();
    for (bi, &b) in barriers.iter().enumerate() {
        let seg_start = if bi == 0 { 0 } else { barriers[bi - 1] + 1 };
        let seg_end = barriers.get(bi + 1).copied().unwrap_or(n);
        let before = &instructions[seg_start..b];
        let after = &instructions[b + 1..seg_end];
        let needed = before
            .iter()
            .any(|x| after.iter().any(|y| x.queue() != y.queue() && writes_overlap(x, y)));
        if !needed {
            keep[b] = false;
        }
    }
    let kept: Vec<Instruction> = instructions
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(instr, _)| instr.clone())
        .collect();
    kernel.with_instructions(kept)
}

/// Hoists each MTE transfer earlier in program order while the skipped
/// instruction (a) is on a different queue, (b) does not conflict with it
/// through memory, (c) is not a barrier or a sync instruction.
///
/// This shortens the dispatch distance between consecutive transfers of
/// the same engine — the delay the Depthwise case study observes between
/// MTE-GM transfers (Figure 12).
#[must_use]
pub fn hoist_transfers(kernel: &Kernel) -> Kernel {
    let mut instructions: Vec<Instruction> = kernel.instructions().to_vec();
    let n = instructions.len();
    for i in 1..n {
        if !matches!(instructions[i], Instruction::Transfer(_)) {
            continue;
        }
        let mut pos = i;
        while pos > 0 {
            let prev = &instructions[pos - 1];
            let movable = matches!(prev, Instruction::Compute(_))
                && prev.queue() != instructions[pos].queue()
                && !writes_overlap(prev, &instructions[pos]);
            if !movable {
                break;
            }
            instructions.swap(pos - 1, pos);
            pos -= 1;
        }
    }
    kernel.with_instructions(instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, KernelStats, Region};
    use ascend_sim::Simulator;

    fn gm(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Gm, offset, len)
    }

    fn ub(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Ub, offset, len)
    }

    #[test]
    fn mrt_keeps_non_redundant_transfers() {
        let mut b = KernelBuilder::new("k");
        // Two different transfers: both stay.
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(0, 64)).unwrap();
        b.transfer(TransferPath::GmToUb, gm(64, 64), ub(64, 64)).unwrap();
        let out = minimize_redundant_transfers(&b.build());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn mrt_respects_clobbers() {
        let mut b = KernelBuilder::new("k");
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(0, 64)).unwrap();
        // The destination is overwritten in between...
        b.compute(ComputeUnit::Vector, Precision::Fp16, 8, vec![], vec![ub(0, 64)]);
        // ...so the reload is NOT redundant.
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(0, 64)).unwrap();
        let out = minimize_redundant_transfers(&b.build());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn mrt_pass_speeds_up_a_redundant_loop() {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("loop");
        let c_gm = gm(1 << 20, 2048);
        let c_ub = ub(0, 2048);
        for i in 0..16u64 {
            b.transfer(TransferPath::GmToUb, c_gm, c_ub).unwrap();
            b.transfer(TransferPath::GmToUb, gm(i * 8192, 8192), ub(4096 + (i % 2) * 8192, 8192))
                .unwrap();
        }
        let kernel = b.build();
        let optimized = minimize_redundant_transfers(&kernel);
        assert_eq!(optimized.len(), kernel.len() - 15);
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&kernel).unwrap().total_cycles();
        let t1 = sim.simulate(&optimized).unwrap().total_cycles();
        assert!(t1 < t0);
    }

    #[test]
    fn rus_drops_only_safe_barriers() {
        let mut b = KernelBuilder::new("k");
        // Segment A touches ub[0..64] from MTE-GM.
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(0, 64)).unwrap();
        b.barrier_all(); // needed: next segment reads ub[0..64] from MTE-UB
        b.transfer(TransferPath::UbToGm, ub(0, 64), gm(4096, 64)).unwrap();
        b.barrier_all(); // unnecessary: the next segment is unrelated
        b.transfer(TransferPath::GmToUb, gm(8192, 64), ub(8192, 64)).unwrap();
        let out = remove_unnecessary_barriers(&b.build());
        let stats = KernelStats::of(&out);
        assert_eq!(stats.barrier_count, 1, "exactly one barrier is load-bearing");
    }

    #[test]
    fn rus_preserves_simulated_orderings() {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("k");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        b.barrier_all();
        b.transfer(TransferPath::UbToGm, ub(0, 4096), gm(65536, 4096)).unwrap();
        let kernel = b.build();
        let out = remove_unnecessary_barriers(&kernel);
        // The barrier is kept (conflict across queues), so behaviour is
        // identical.
        assert_eq!(out, kernel);
        let sim = Simulator::new(chip);
        assert_eq!(
            sim.simulate(&out).unwrap().total_cycles(),
            sim.simulate(&kernel).unwrap().total_cycles()
        );
    }

    #[test]
    fn hoist_moves_transfers_past_unrelated_compute() {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("k");
        // A long, *slow* transfer stuck behind a chain of small compute
        // instructions: dispatch delay puts it on the critical path.
        for _ in 0..20 {
            b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![ub(0, 512)], vec![ub(0, 512)]);
        }
        b.transfer(TransferPath::GmToUb, gm(0, 120 << 10), ub(8192, 120 << 10)).unwrap();
        let kernel = b.build();
        let hoisted = hoist_transfers(&kernel);
        assert!(matches!(hoisted.instructions()[0], ascend_isa::Instruction::Transfer(_)));
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&kernel).unwrap().total_cycles();
        let t1 = sim.simulate(&hoisted).unwrap().total_cycles();
        assert!(t1 < t0, "hoisting the transfer must shorten the critical path: {t1} !< {t0}");
    }

    #[test]
    fn hoist_stops_at_conflicts_and_syncs() {
        let mut b = KernelBuilder::new("k");
        let f = b.new_flag();
        b.set_flag(Component::Vector, f);
        b.wait_flag(Component::MteGm, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![ub(0, 64)]);
        // Conflicts with the compute's write: must not move above it.
        b.transfer(TransferPath::UbToGm, ub(0, 64), gm(0, 64)).unwrap();
        let kernel = b.build();
        let hoisted = hoist_transfers(&kernel);
        assert_eq!(hoisted, kernel, "nothing may move");
    }

    #[test]
    fn fuse_kernels_renumbers_flags_and_beats_back_to_back_launch() {
        use ascend_ops::Operator as _;
        let chip = ChipSpec::training();
        let a = ascend_ops::Elementwise::new(ascend_ops::EltwiseKind::Mul, 1 << 16)
            .build(&chip)
            .unwrap();
        let b = ascend_ops::Gelu::new(1 << 16).build(&chip).unwrap();
        let fused = fuse_kernels(&a, &b);
        assert_eq!(fused.len(), a.len() + b.len());
        ascend_isa::validate(&fused, &chip).unwrap();
        let sim = Simulator::new(chip);
        let separate =
            sim.simulate(&a).unwrap().total_cycles() + sim.simulate(&b).unwrap().total_cycles();
        let together = sim.simulate(&fused).unwrap().total_cycles();
        assert!(together < separate, "fusion overlaps the tails: {together} !< {separate}");
    }

    #[test]
    fn passes_keep_kernels_valid() {
        let chip = ChipSpec::training();
        let op = ascend_ops::AddRelu::new(1 << 16);
        let kernel = ascend_ops::Operator::build(&op, &chip).unwrap();
        for pass in [minimize_redundant_transfers, remove_unnecessary_barriers, hoist_transfers] {
            let out = pass(&kernel);
            ascend_isa::validate(&out, &chip).unwrap();
        }
    }

    #[test]
    fn mrt_pass_matches_the_flag_variant_in_spirit() {
        // The IR pass applied to the baseline Add_ReLU removes the same
        // redundant constant loads the `mrt` flag avoids generating.
        let chip = ChipSpec::training();
        let base = ascend_ops::Operator::build(&ascend_ops::AddRelu::new(1 << 18), &chip).unwrap();
        let passed = minimize_redundant_transfers(&base);
        let base_stats = KernelStats::of(&base);
        let passed_stats = KernelStats::of(&passed);
        assert!(
            passed_stats.bytes_of_component(Component::MteGm)
                < base_stats.bytes_of_component(Component::MteGm)
        );
    }
}
