#![warn(missing_docs)]

//! Optimization framework (paper, Section 5): named strategies, the
//! diagnosis→strategy advisor, IR-level transformation passes, and the
//! iterative analyze-optimize loop.
//!
//! The paper's workflow is: profile → roofline analysis → identify the
//! bottleneck class → apply the matching optimization → repeat, because
//! "a single round of optimization might not eliminate bottlenecks, and
//! they might even shift to other parts" (Section 5.1). [`Optimizer`]
//! automates exactly that loop over an [`Operator`](ascend_ops::Operator).
//!
//! # Examples
//!
//! ```
//! use ascend_arch::ChipSpec;
//! use ascend_ops::Depthwise;
//! use ascend_optimize::Optimizer;
//!
//! let chip = ChipSpec::training();
//! let report = Optimizer::new(chip).run(&Depthwise::new(1 << 18))?;
//! assert!(report.speedup() >= 1.0);
//! println!("{}", report.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod advisor;
pub mod autotune;
mod optimizer;
pub mod passes;
mod strategy;

pub use advisor::advise;
pub use optimizer::{IterationRecord, OptimizationReport, Optimizer};
pub use strategy::Strategy;
