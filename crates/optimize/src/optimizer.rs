//! The iterative analyze→optimize loop of the paper's workflow (Fig. 5).

use crate::{advise, Strategy};
use ascend_arch::ChipSpec;
use ascend_ops::{Operator, OptFlags};
use ascend_pipeline::AnalysisPipeline;
use ascend_roofline::{Bottleneck, RooflineAnalysis, Thresholds};
use ascend_sim::SimError;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One iteration of the optimization loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Flags in effect during this iteration.
    pub flags: OptFlags,
    /// Execution time in cycles.
    pub cycles: f64,
    /// Peak component utilization.
    pub peak_utilization: f64,
    /// The diagnosed bottleneck.
    pub bottleneck: Bottleneck,
    /// The strategy applied *after* this iteration (None when the loop
    /// stopped here).
    pub applied: Option<Strategy>,
}

/// The outcome of optimizing one operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationReport {
    /// The operator's baseline kernel name.
    pub operator: String,
    /// All iterations, baseline first.
    pub iterations: Vec<IterationRecord>,
}

impl OptimizationReport {
    /// Baseline execution time in cycles.
    #[must_use]
    pub fn base_cycles(&self) -> f64 {
        self.iterations.first().map_or(0.0, |i| i.cycles)
    }

    /// Final (best) execution time in cycles.
    #[must_use]
    pub fn final_cycles(&self) -> f64 {
        self.iterations.last().map_or(0.0, |i| i.cycles)
    }

    /// The flags of the final iteration.
    #[must_use]
    pub fn final_flags(&self) -> OptFlags {
        self.iterations.last().map_or_else(OptFlags::new, |i| i.flags)
    }

    /// The final bottleneck classification.
    #[must_use]
    pub fn final_bottleneck(&self) -> Option<Bottleneck> {
        self.iterations.last().map(|i| i.bottleneck)
    }

    /// End-to-end speedup of the loop (≥ 1; the loop never keeps a
    /// regression).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let base = self.base_cycles();
        let fin = self.final_cycles();
        if fin > 0.0 {
            base / fin
        } else {
            1.0
        }
    }

    /// The strategies that were kept, in application order.
    #[must_use]
    pub fn applied_strategies(&self) -> Vec<Strategy> {
        self.iterations.iter().filter_map(|i| i.applied).collect()
    }

    /// A human-readable walkthrough of the loop.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "optimization of {} ({:.2}x):", self.operator, self.speedup());
        for (i, record) in self.iterations.iter().enumerate() {
            let applied =
                record.applied.map_or_else(|| "stop".to_owned(), |s| format!("apply {s}"));
            let _ = writeln!(
                out,
                "  iter {i}: {:>10.0} cy, peak U {:>5.1}%, {} -> {}",
                record.cycles,
                record.peak_utilization * 100.0,
                record.bottleneck,
                applied
            );
        }
        out
    }
}

/// Drives the iterative roofline-guided optimization of an operator.
///
/// Every measurement routes through an [`AnalysisPipeline`], so
/// re-measured (operator, flags) combinations — frequent in the trial
/// loop, and across operators in a model stream — are cache hits.
#[derive(Debug, Clone)]
pub struct Optimizer {
    pipeline: AnalysisPipeline,
    max_iterations: usize,
}

impl Optimizer {
    /// An optimizer for `chip` with the paper's default thresholds and at
    /// most 8 optimization rounds.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        Self::from_pipeline(AnalysisPipeline::new(chip))
    }

    /// An optimizer measuring through `pipeline` — share one pipeline
    /// between the optimizer and other analyses to share its result
    /// cache.
    #[must_use]
    pub fn from_pipeline(pipeline: AnalysisPipeline) -> Self {
        Optimizer { pipeline, max_iterations: 8 }
    }

    /// Overrides the classification thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.pipeline = self.pipeline.with_thresholds(thresholds);
        self
    }

    /// Overrides the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// The measurement pipeline (for cache statistics and stage timings).
    #[must_use]
    pub fn pipeline(&self) -> &AnalysisPipeline {
        &self.pipeline
    }

    fn measure(&self, op: &dyn Operator) -> Result<(f64, RooflineAnalysis), SimError> {
        let result = self.pipeline.run(op)?;
        Ok((result.cycles(), result.analysis.clone()))
    }

    /// Runs the analyze→advise→apply loop on `operator`.
    ///
    /// Each round the advisor proposes strategies for the current
    /// bottleneck — bound states included, since Section 5.4 prescribes
    /// remedies for those too. The first *new* strategy that actually
    /// improves the simulated time is kept. The loop stops when no
    /// proposed strategy helps or the iteration cap is reached.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from kernel construction or execution.
    pub fn run(&self, operator: &dyn Operator) -> Result<OptimizationReport, SimError> {
        let mut flags = operator.flags();
        let (mut cycles, mut analysis) = self.measure(operator)?;
        let mut iterations = Vec::new();

        for _ in 0..self.max_iterations {
            let candidates: Vec<Strategy> =
                advise(&analysis).into_iter().filter(|s| !s.is_applied(flags)).collect();
            let mut improved = None;
            for strategy in candidates {
                let trial_flags = strategy.apply_to(flags);
                let trial = operator.with_flags_dyn(trial_flags);
                let (trial_cycles, trial_analysis) = self.measure(trial.as_ref())?;
                if trial_cycles < cycles * 0.995 {
                    improved = Some((strategy, trial_flags, trial_cycles, trial_analysis));
                    break;
                }
            }
            let Some((strategy, new_flags, new_cycles, new_analysis)) = improved else {
                break;
            };
            iterations.push(IterationRecord {
                flags,
                cycles,
                peak_utilization: analysis.peak_utilization(),
                bottleneck: analysis.bottleneck(),
                applied: Some(strategy),
            });
            flags = new_flags;
            cycles = new_cycles;
            analysis = new_analysis;
        }
        iterations.push(IterationRecord {
            flags,
            cycles,
            peak_utilization: analysis.peak_utilization(),
            bottleneck: analysis.bottleneck(),
            applied: None,
        });
        Ok(OptimizationReport { operator: operator.name(), iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::{AddRelu, AvgPool, Depthwise, Gelu};

    #[test]
    fn add_relu_loop_reaches_a_bound_state() {
        let chip = ChipSpec::training();
        let report = Optimizer::new(chip).run(&AddRelu::new(1 << 19)).unwrap();
        assert!(report.speedup() > 1.3, "paper: 1.72x, got {:.2}", report.speedup());
        assert!(report.applied_strategies().contains(&Strategy::Rsd));
        assert!(report.final_bottleneck().unwrap().is_bound(), "\n{}", report.summary());
    }

    #[test]
    fn avgpool_loop_applies_aip() {
        let chip = ChipSpec::inference();
        let report = Optimizer::new(chip).run(&AvgPool::new(1 << 15)).unwrap();
        assert!(report.applied_strategies().contains(&Strategy::Aip), "\n{}", report.summary());
        assert!(report.speedup() > 2.0, "paper: 4.31x, got {:.2}", report.speedup());
    }

    #[test]
    fn depthwise_loop_applies_multiple_strategies() {
        let chip = ChipSpec::training();
        let report = Optimizer::new(chip).run(&Depthwise::new(1 << 19)).unwrap();
        assert!(
            report.applied_strategies().len() >= 2,
            "depthwise needs several rounds (paper applies 5): \n{}",
            report.summary()
        );
        assert!(report.speedup() > 1.15);
    }

    #[test]
    fn bound_gelu_gets_the_enhanced_algorithm() {
        let chip = ChipSpec::training();
        // Baseline GeLU is compute bound; the Section 5.4 remedy is EA.
        let report = Optimizer::new(chip).run(&Gelu::new(1 << 19)).unwrap();
        assert!(report.applied_strategies().contains(&Strategy::Ea), "\n{}", report.summary());
        assert!(report.speedup() > 1.02, "paper: 1.06x, got {:.2}", report.speedup());
    }

    #[test]
    fn loop_never_regresses() {
        let chip = ChipSpec::training();
        for report in [
            Optimizer::new(chip.clone()).run(&AddRelu::new(1 << 18)).unwrap(),
            Optimizer::new(chip.clone()).run(&Depthwise::new(1 << 18)).unwrap(),
        ] {
            for pair in report.iterations.windows(2) {
                assert!(pair[1].cycles <= pair[0].cycles, "\n{}", report.summary());
            }
        }
    }
}
