//! The workspace's one FNV-1a implementation.
//!
//! Before this module, three copies of the same 64-bit FNV-1a fold lived
//! in private corners — the journal's record digest, the sandbox frame
//! digest, and the golden suite's trace fingerprinting — plus a fourth
//! inline copy hashing the pipeline's (chip, thresholds) context. Four
//! copies of a checksum is three opportunities for them to drift apart
//! silently, and digest drift in a durability layer means every existing
//! artifact on disk is suddenly "corrupt". This module is the single
//! definition they all share; the [`ResultStore`](crate::ResultStore)
//! record digest is built on it too.
//!
//! The parameters are the standard 64-bit FNV-1a constants. They are part
//! of the on-disk format of journals and result stores and the sandbox
//! wire protocol — changing them is a format break and must come with a
//! version bump of every consumer.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice in one call.
///
/// # Examples
///
/// ```
/// use ascend_pipeline::digest::{fnv1a, Fnv64};
///
/// let mut hasher = Fnv64::new();
/// hasher.write(b"ascend");
/// assert_eq!(hasher.finish(), fnv1a(b"ascend"));
/// ```
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write(bytes);
    hasher.finish()
}

/// An incremental FNV-1a hasher, for digests built from several parts
/// (a fingerprint followed by a payload, a stream of `u64` fields).
///
/// Feeding the same bytes through [`write`](Fnv64::write) in any
/// grouping produces the same digest as one [`fnv1a`] call over their
/// concatenation; [`write_u64`](Fnv64::write_u64) is exactly
/// `write(&v.to_le_bytes())`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET_BASIS }
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.state ^= u64::from(*byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one `u64` in little-endian byte order — the convention the
    /// golden trace fingerprints are committed under.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current digest. The hasher stays usable; `finish` is a
    /// snapshot, not a terminator.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_grouping_is_invisible() {
        let whole = fnv1a(b"hello world");
        let mut split = Fnv64::new();
        split.write(b"hello");
        split.write(b" ");
        split.write(b"world");
        assert_eq!(split.finish(), whole);
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let v = 0x0123_4567_89AB_CDEFu64;
        let mut by_u64 = Fnv64::new();
        by_u64.write_u64(v);
        let mut by_bytes = Fnv64::new();
        by_bytes.write(&v.to_le_bytes());
        assert_eq!(by_u64.finish(), by_bytes.finish());
    }
}
