//! The resident analysis service: a long-lived front end over
//! [`AnalysisPipeline`] for callers that *keep* sending work.
//!
//! The batch APIs answer "run these N items"; a service answers "keep
//! answering whatever arrives", which changes the failure mode: when
//! requests arrive faster than they complete, something has to give, and
//! it must never be silent. [`AnalysisService`] makes the choice
//! explicit:
//!
//! * **Bounded admission.** [`submit`](AnalysisService::submit) either
//!   accepts a request into a fixed-capacity queue and returns a
//!   [`Ticket`], or rejects it *immediately* with
//!   [`PipelineError::Overloaded`] carrying the observed depth and a
//!   retry hint. The queue can never grow without bound, and a request
//!   is never dropped without its submitter holding an error.
//! * **Deadline-aware shedding.** A request whose per-item deadline
//!   lapsed while it sat in the queue is shed *at dequeue* with
//!   [`PipelineError::DeadlineShed`] — executing it would burn a worker
//!   on an answer nobody is waiting for.
//! * **Priority classes.** [`Priority::Interactive`] requests dequeue
//!   before [`Priority::Sweep`] ones; latency percentiles are tracked
//!   per class.
//! * **Hedged retry for stragglers.** With
//!   [`ServiceConfig::hedge_after`] set, the first attempt runs under a
//!   tightened deadline; if it straggles past it, the service counts a
//!   hedge and re-runs the item under the full policy.
//! * **Graceful drain.** [`drain`](AnalysisService::drain) stops
//!   admissions, flushes every queued ticket with
//!   [`PipelineError::ServiceStopped`], cancels in-flight attempts
//!   through the shared [`CancelToken`], and waits (bounded) for workers
//!   to quiesce. Every accepted ticket reaches **exactly one** terminal
//!   state — the service's core invariant, upheld even when a worker
//!   panics mid-item.
//! * **Observability.** [`health`](AnalysisService::health) returns a
//!   [`HealthSnapshot`] (depth, in-flight, shed/hedge/panic counters,
//!   per-class p50/p95/p99) cheap enough for a readiness probe.
//! * **Isolation tiers.** Each priority class executes
//!   [`Isolation::InProcess`] (the default) or
//!   [`Isolation::Sandboxed`] — spec-based requests of a sandboxed
//!   class run in supervised worker processes with heartbeats, a
//!   wall-clock kill, and an RSS budget, so a hostile item costs one
//!   child process instead of the service. Sandbox kill counters ride
//!   along in the health snapshot.
//!
//! # Examples
//!
//! ```
//! use ascend_arch::ChipSpec;
//! use ascend_ops::AddRelu;
//! use ascend_pipeline::{AnalysisPipeline, AnalysisService, Request, ServiceConfig};
//!
//! let service = AnalysisService::start(
//!     AnalysisPipeline::new(ChipSpec::training()),
//!     ServiceConfig::default(),
//! );
//! let ticket = service.submit(Request::interactive(Box::new(AddRelu::new(1 << 12))))?;
//! let result = ticket.wait()?;
//! assert!(result.cycles() > 0.0);
//! let report = service.drain(std::time::Duration::from_secs(5));
//! assert!(report.quiesced);
//! # Ok::<(), ascend_pipeline::PipelineError>(())
//! ```

use crate::error::panic_message;
use crate::sandbox::{SandboxConfig, SandboxCounters, SandboxedExecutor, WorkSpec};
use crate::stats::{LatencyReservoir, LatencySummary};
use crate::{
    lock, AnalysisPipeline, CacheStats, EngineThroughput, FidelityMix, PipelineError,
    PipelineResult, RunPolicy, StoreStats,
};
use ascend_ops::Operator;
use ascend_sim::CancelToken;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a service request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive: dequeued before any sweep work.
    Interactive,
    /// Throughput work (parameter sweeps, batch re-analysis): runs when
    /// no interactive request is waiting.
    Sweep,
}

impl Priority {
    /// Number of scheduling classes (sizes per-class tables such as
    /// [`AuditPolicy::class_rates`](crate::AuditPolicy::class_rates)).
    pub const COUNT: usize = 2;

    /// Dense index of this class (`Interactive` = 0, `Sweep` = 1) into
    /// per-class tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Sweep => 1,
        }
    }
}

/// Where a priority class executes its work.
///
/// Only spec-based requests ([`Request::from_spec`] and friends) can
/// actually cross a process boundary; a `Box<dyn Operator>` request runs
/// in-process regardless of its class's tier, because a trait object
/// cannot be serialized into a job frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Isolation {
    /// The thread-pool path: cooperative deadlines, `catch_unwind`, the
    /// watchdog budget. Fast, but defenseless against non-cooperative
    /// work.
    #[default]
    InProcess,
    /// The hard-isolation path: work runs in a supervised child process
    /// with heartbeats, a wall-clock kill, and an RSS budget (see
    /// [`SandboxedExecutor`]).
    Sandboxed,
}

/// The payload of a request: either an owned trait object (in-process
/// only) or a serializable [`WorkSpec`] (eligible for sandboxing).
#[derive(Debug)]
enum Work {
    Dyn(Box<dyn Operator>),
    Spec(WorkSpec),
}

/// One unit of work submitted to the service: an operator (owned or
/// described) plus scheduling metadata.
#[derive(Debug)]
pub struct Request {
    work: Work,
    priority: Priority,
    deadline: Option<Duration>,
}

impl Request {
    /// A request in `priority` class with no per-item deadline beyond
    /// the service default. Trait-object requests always execute
    /// in-process (see [`Isolation`]).
    #[must_use]
    pub fn new(op: Box<dyn Operator>, priority: Priority) -> Self {
        Request { work: Work::Dyn(op), priority, deadline: None }
    }

    /// An interactive-class request.
    #[must_use]
    pub fn interactive(op: Box<dyn Operator>) -> Self {
        Request::new(op, Priority::Interactive)
    }

    /// A sweep-class request.
    #[must_use]
    pub fn sweep(op: Box<dyn Operator>) -> Self {
        Request::new(op, Priority::Sweep)
    }

    /// A request described by a serializable [`WorkSpec`] — the form
    /// that can execute in a sandboxed worker process when its class's
    /// [`Isolation`] tier says so.
    #[must_use]
    pub fn from_spec(spec: impl Into<WorkSpec>, priority: Priority) -> Self {
        Request { work: Work::Spec(spec.into()), priority, deadline: None }
    }

    /// An interactive-class spec request.
    #[must_use]
    pub fn interactive_spec(spec: impl Into<WorkSpec>) -> Self {
        Request::from_spec(spec, Priority::Interactive)
    }

    /// A sweep-class spec request.
    #[must_use]
    pub fn sweep_spec(spec: impl Into<WorkSpec>) -> Self {
        Request::from_spec(spec, Priority::Sweep)
    }

    /// Sets the per-item deadline, measured from admission. A request
    /// still queued when it lapses is shed with
    /// [`PipelineError::DeadlineShed`]; once executing, the remaining
    /// time bounds the attempt like a [`RunPolicy`] deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Configuration of an [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (minimum 1).
    pub workers: usize,
    /// Bound on queued (not yet executing) requests (minimum 1). At
    /// capacity, [`submit`](AnalysisService::submit) rejects with
    /// [`PipelineError::Overloaded`].
    pub queue_capacity: usize,
    /// The supervision policy every execution runs under.
    pub policy: RunPolicy,
    /// When set, the first attempt of each item runs under a deadline
    /// tightened to this; a straggler is then retried once under the
    /// full policy (counted as a hedge).
    pub hedge_after: Option<Duration>,
    /// Deadline applied to requests that did not set their own.
    pub default_deadline: Option<Duration>,
    /// Samples retained per per-class latency reservoir.
    pub reservoir_capacity: usize,
    /// Seed of the reservoirs' replacement streams.
    pub seed: u64,
    /// Execution tier per priority class, indexed like the queues
    /// (`[interactive, sweep]`). Only spec-based requests honor a
    /// [`Isolation::Sandboxed`] tier; trait-object requests stay
    /// in-process.
    pub isolation: [Isolation; Priority::COUNT],
    /// Tuning of the sandboxed tier (ignored while both classes are
    /// [`Isolation::InProcess`]; workers spawn lazily on first use).
    pub sandbox: SandboxConfig,
    /// When set, the service opens (or recovers) a durable
    /// [`ResultStore`](crate::ResultStore) here at startup and attaches
    /// it to its pipeline: restarts answer repeat requests from disk
    /// instead of recomputing. An unopenable store is a warning, not a
    /// startup failure — the service runs memory-only.
    pub store_path: Option<std::path::PathBuf>,
    /// When set, the service attaches the online audit tier in
    /// **deferred** mode: sampled results are queued and shadow
    /// re-executed on the reference oracle only when a worker finds the
    /// request queue empty — audits ride scheduling slack below every
    /// priority class and never add latency to the request path.
    pub audit: Option<crate::AuditPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            policy: RunPolicy::default(),
            hedge_after: None,
            default_deadline: None,
            reservoir_capacity: crate::stats::DEFAULT_RESERVOIR_CAPACITY,
            seed: 0x5EED_CAFE,
            isolation: [Isolation::InProcess; Priority::COUNT],
            sandbox: SandboxConfig::default(),
            store_path: None,
            audit: None,
        }
    }
}

/// Ticket state shared between the submitter and the worker pool. The
/// slot is written exactly once (`complete` is idempotent, first write
/// wins), which is what makes the exactly-one-terminal-state invariant
/// local and checkable. The cluster tier (`cluster.rs`) issues the same
/// tickets, so its cluster-wide accounting inherits the property.
#[derive(Debug)]
pub(crate) struct TicketShared {
    pub(crate) id: u64,
    pub(crate) priority: Priority,
    pub(crate) state: Mutex<Option<Result<Arc<PipelineResult>, PipelineError>>>,
    pub(crate) ready: Condvar,
}

impl TicketShared {
    /// Records the terminal state if none exists yet. Returns whether
    /// this call was the one that completed the ticket — counters must
    /// only advance on `true`, so no outcome is ever double-counted.
    pub(crate) fn complete(&self, outcome: Result<Arc<PipelineResult>, PipelineError>) -> bool {
        let mut state = lock(&self.state);
        if state.is_some() {
            return false;
        }
        *state = Some(outcome);
        self.ready.notify_all();
        true
    }
}

/// Handle to one accepted request. The service guarantees the ticket
/// reaches exactly one terminal state: a result, an execution error, a
/// deadline shed, or a drain flush.
#[derive(Debug, Clone)]
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Stable identifier of this accepted request.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The class the request was admitted under.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.shared.priority
    }

    /// The terminal state, when one has been recorded.
    #[must_use]
    pub fn try_result(&self) -> Option<Result<Arc<PipelineResult>, PipelineError>> {
        lock(&self.shared.state).clone()
    }

    /// Blocks until the terminal state is recorded.
    ///
    /// # Errors
    ///
    /// The terminal error, when the request did not complete with a
    /// result (execution failure, shed, or drain flush).
    pub fn wait(&self) -> Result<Arc<PipelineResult>, PipelineError> {
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.shared.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`wait`](Ticket::wait) bounded by `timeout`; `None` when no
    /// terminal state was recorded in time.
    #[must_use]
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<Arc<PipelineResult>, PipelineError>> {
        let start = Instant::now();
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(outcome.clone());
            }
            let remaining = timeout.checked_sub(start.elapsed())?;
            let (guard, timed_out) = self
                .shared
                .ready
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

/// A request sitting in the admission queue.
#[derive(Debug)]
struct QueuedRequest {
    work: Work,
    ticket: Arc<TicketShared>,
    deadline: Option<Duration>,
    enqueued_at: Instant,
}

/// Queue, in-flight count, and lifecycle flag under **one** mutex: the
/// condvar protocol (admission rejects, workers pop, drain waits for
/// quiescence) needs all three to change atomically.
#[derive(Debug, Default)]
struct QueueState {
    classes: [VecDeque<QueuedRequest>; Priority::COUNT],
    in_flight: usize,
    draining: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    fn pop(&mut self) -> Option<QueuedRequest> {
        self.classes.iter_mut().find_map(VecDeque::pop_front)
    }
}

/// Monotonic event counters of one service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceCounters {
    /// Requests admitted into the queue (each owns exactly one ticket).
    pub accepted: u64,
    /// Requests rejected at admission with [`PipelineError::Overloaded`].
    pub rejected_overload: u64,
    /// Accepted requests shed at dequeue because their deadline lapsed
    /// while queued.
    pub shed_deadline: u64,
    /// Accepted requests that completed with a result.
    pub completed_ok: u64,
    /// Accepted requests that completed with an execution error
    /// (including worker panics and drain-cancelled attempts).
    pub failed: u64,
    /// Accepted requests flushed with [`PipelineError::ServiceStopped`]
    /// because drain emptied the queue before they ran.
    pub drain_flushed: u64,
    /// First attempts that straggled past `hedge_after` and triggered a
    /// full-policy retry.
    pub hedges: u64,
    /// Hedged retries that then produced a result.
    pub hedge_wins: u64,
    /// Worker panics absorbed while executing an item (the ticket still
    /// failed; the pool did not shrink).
    pub worker_panics: u64,
}

impl ServiceCounters {
    /// Terminal states recorded so far. After a quiesced drain this
    /// equals [`accepted`](ServiceCounters::accepted): every admitted
    /// ticket ended exactly one way.
    #[must_use]
    pub fn terminal_states(&self) -> u64 {
        self.completed_ok + self.failed + self.shed_deadline + self.drain_flushed
    }
}

/// Point-in-time health of an [`AnalysisService`], cheap enough for a
/// readiness probe.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Requests currently queued (excludes executing ones).
    pub queue_depth: usize,
    /// The configured admission bound.
    pub queue_capacity: usize,
    /// Requests currently executing on workers.
    pub in_flight: usize,
    /// Whether drain has begun (admissions closed).
    pub draining: bool,
    /// Whether the underlying pipeline's circuit breaker is open.
    pub breaker_open: bool,
    /// The monotonic event counters.
    pub counters: ServiceCounters,
    /// Counters of the sandboxed tier (all zero while every class runs
    /// in-process): spawns, recycles, and the kill taxonomy.
    pub sandbox: SandboxCounters,
    /// Sojourn-latency percentiles (admission → terminal state, seconds)
    /// of executed interactive requests.
    pub interactive: LatencySummary,
    /// Sojourn-latency percentiles of executed sweep requests.
    pub sweep: LatencySummary,
    /// The underlying pipeline's result-cache counters (hit rate).
    #[serde(default)]
    pub cache: CacheStats,
    /// The underlying pipeline's engine event-loop throughput
    /// (events/sec, ns/event).
    #[serde(default)]
    pub engine: EngineThroughput,
    /// How many results each fidelity produced on the underlying
    /// pipeline (simulated vs analytical fallback).
    #[serde(default)]
    pub fidelity: FidelityMix,
    /// Counters of the durable disk tier (all zero without a
    /// [`ServiceConfig::store_path`]): entries recovered at startup,
    /// disk hits/misses, corrupt records dropped, degradation state.
    #[serde(default)]
    pub store: StoreStats,
    /// Counters of the online audit tier (all zero without a
    /// [`ServiceConfig::audit`] policy): shadow audits run, divergences
    /// caught, fingerprints quarantined, and the demotion latch.
    #[serde(default)]
    pub audit: crate::AuditStats,
}

impl HealthSnapshot {
    /// Whether the service can accept another request right now.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        !self.draining && self.queue_depth < self.queue_capacity
    }
}

/// What [`AnalysisService::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued requests flushed with [`PipelineError::ServiceStopped`].
    pub flushed_queued: u64,
    /// Whether every in-flight item reached a terminal state (and the
    /// workers were joined) before the drain deadline.
    pub quiesced: bool,
    /// Wall time drain took.
    pub elapsed: Duration,
}

/// State shared between the service handle and its workers.
#[derive(Debug)]
struct ServiceShared {
    pipeline: AnalysisPipeline,
    /// The sandboxed tier. Shares the pipeline's cache and breaker, so
    /// the two tiers answer each other's cache hits and a sick backend
    /// trips one breaker regardless of where attempts run. Child
    /// processes spawn lazily on the first sandboxed job.
    executor: SandboxedExecutor,
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signalled on admission and at drain: workers wait here for work.
    work_cv: Condvar,
    /// Signalled whenever `in_flight` decrements: drain waits here.
    idle_cv: Condvar,
    counters: Mutex<ServiceCounters>,
    latency: [Mutex<LatencyReservoir>; Priority::COUNT],
    /// Parent token of every attempt; cancelled exactly once, at drain.
    drain_token: CancelToken,
}

/// The resident front end over [`AnalysisPipeline`]: bounded admission,
/// priority scheduling, load shedding, hedged retries, and graceful
/// drain. See the [module docs](self) for the semantics.
#[derive(Debug)]
pub struct AnalysisService {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl AnalysisService {
    /// Starts the worker pool and returns the service handle. The
    /// pipeline's cache and counters stay shared with any other clone
    /// the caller holds.
    #[must_use]
    pub fn start(mut pipeline: AnalysisPipeline, config: ServiceConfig) -> Self {
        if let Some(path) = &config.store_path {
            // A store the service cannot open degrades to memory-only
            // operation: a resident service that refuses to start over a
            // cache file would turn a perf feature into an outage.
            match pipeline.clone().with_store(path) {
                Ok(with_store) => pipeline = with_store,
                Err(err) => eprintln!(
                    "[service] warning: result store at {} not attached ({err}); \
                     running memory-only",
                    path.display()
                ),
            }
        }
        if let Some(policy) = config.audit.clone() {
            pipeline = pipeline.with_audit_deferred(policy);
        }
        let workers = config.workers.max(1);
        let reservoir = |salt: u64| {
            Mutex::new(LatencyReservoir::new(
                config.reservoir_capacity,
                config.seed.wrapping_add(salt),
            ))
        };
        let shared = Arc::new(ServiceShared {
            executor: SandboxedExecutor::new(pipeline.clone(), config.sandbox.clone()),
            pipeline,
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            counters: Mutex::new(ServiceCounters::default()),
            latency: [reservoir(1), reservoir(2)],
            drain_token: CancelToken::new(),
            config,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        AnalysisService { shared, workers: Mutex::new(handles), next_id: AtomicU64::new(0) }
    }

    /// Submits one request. Returns the ticket on admission, or — with
    /// no queueing and no side effects —
    /// [`PipelineError::Overloaded`] when the queue is at capacity or
    /// [`PipelineError::ServiceStopped`] when drain has begun.
    ///
    /// # Errors
    ///
    /// The two rejection cases above; an accepted request reports
    /// execution errors through its [`Ticket`] instead.
    pub fn submit(&self, request: Request) -> Result<Ticket, PipelineError> {
        let deadline = request.deadline.or(self.shared.config.default_deadline);
        let mut queue = lock(&self.shared.queue);
        if queue.draining {
            return Err(PipelineError::ServiceStopped);
        }
        let depth = queue.depth();
        if depth >= self.shared.config.queue_capacity {
            drop(queue);
            lock(&self.shared.counters).rejected_overload += 1;
            return Err(PipelineError::Overloaded {
                queue_depth: depth,
                retry_after_hint: self.retry_hint(depth),
            });
        }
        let ticket = Arc::new(TicketShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            priority: request.priority,
            state: Mutex::new(None),
            ready: Condvar::new(),
        });
        queue.classes[request.priority.index()].push_back(QueuedRequest {
            work: request.work,
            ticket: Arc::clone(&ticket),
            deadline,
            enqueued_at: Instant::now(),
        });
        drop(queue);
        lock(&self.shared.counters).accepted += 1;
        self.shared.work_cv.notify_one();
        Ok(Ticket { shared: ticket })
    }

    /// Estimated wait until a queue slot frees: the recent median
    /// sojourn times the number of service "rounds" ahead of a new
    /// arrival, clamped to a sane range. Purely advisory.
    fn retry_hint(&self, depth: usize) -> Duration {
        let p50 = self
            .shared
            .latency
            .iter()
            .map(|r| lock(r).summary())
            .filter(|s| s.count > 0)
            .map(|s| s.p50)
            .fold(0.0f64, f64::max);
        let p50 = if p50 > 0.0 { p50 } else { 0.025 };
        let rounds = depth.div_ceil(self.shared.config.workers.max(1)).max(1);
        Duration::from_secs_f64((p50 * rounds as f64).clamp(0.001, 5.0))
    }

    /// A point-in-time [`HealthSnapshot`].
    #[must_use]
    pub fn health(&self) -> HealthSnapshot {
        let (queue_depth, in_flight, draining) = {
            let queue = lock(&self.shared.queue);
            (queue.depth(), queue.in_flight, queue.draining)
        };
        HealthSnapshot {
            queue_depth,
            queue_capacity: self.shared.config.queue_capacity,
            in_flight,
            draining,
            breaker_open: self.shared.pipeline.breaker_is_open(),
            counters: *lock(&self.shared.counters),
            sandbox: self.shared.executor.counters(),
            interactive: lock(&self.shared.latency[Priority::Interactive.index()]).summary(),
            sweep: lock(&self.shared.latency[Priority::Sweep.index()]).summary(),
            cache: self.shared.pipeline.cache_stats(),
            engine: self.shared.pipeline.engine_throughput(),
            fidelity: self.shared.pipeline.fidelity_mix(),
            store: self.shared.pipeline.store_stats().unwrap_or_default(),
            audit: self.shared.pipeline.audit_stats(),
        }
    }

    /// The pipeline the service executes on (shared state: its cache
    /// stats and footer reflect service traffic).
    #[must_use]
    pub fn pipeline(&self) -> &AnalysisPipeline {
        &self.shared.pipeline
    }

    /// Gracefully stops the service: closes admissions, flushes every
    /// queued ticket with [`PipelineError::ServiceStopped`], cancels
    /// in-flight attempts via the shared [`CancelToken`], then waits up
    /// to `timeout` for workers to quiesce (joining them on success).
    ///
    /// Idempotent: a second call flushes nothing and returns
    /// immediately. Every accepted ticket has a terminal state once
    /// drain returns with `quiesced == true`.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let start = Instant::now();
        let flushed = {
            let mut queue = lock(&self.shared.queue);
            queue.draining = true;
            let mut flushed = Vec::new();
            for class in &mut queue.classes {
                flushed.extend(class.drain(..));
            }
            flushed
        };
        self.shared.work_cv.notify_all();
        let mut flushed_count = 0u64;
        for job in flushed {
            if job.ticket.complete(Err(PipelineError::ServiceStopped)) {
                flushed_count += 1;
            }
        }
        if flushed_count > 0 {
            lock(&self.shared.counters).drain_flushed += flushed_count;
        }
        self.shared.drain_token.cancel();
        // A stopping service owes nobody shadow work: the deferred audit
        // backlog is discarded (counted as dropped), so workers head
        // straight for the drain exit instead of burning the timeout on
        // oracle re-simulations.
        self.shared.pipeline.drop_pending_audits();

        let mut queue = lock(&self.shared.queue);
        while queue.in_flight > 0 {
            let Some(remaining) = timeout.checked_sub(start.elapsed()) else { break };
            let (guard, _timed_out) = self
                .shared
                .idle_cv
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
        let quiesced = queue.in_flight == 0;
        drop(queue);
        if quiesced {
            let handles = std::mem::take(&mut *lock(&self.workers));
            for handle in handles {
                let _ = handle.join();
            }
        }
        // In-flight sandboxed children were killed through the drain
        // token by their monitor loops; what's left is the warm pool.
        self.shared.executor.shutdown();
        // Make everything the run computed durable before the process
        // (typically) exits — the whole point of attaching a store.
        self.shared.pipeline.flush_store();
        DrainReport { flushed_queued: flushed_count, quiesced, elapsed: start.elapsed() }
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        // Best-effort drain so dropping the handle never leaks detached
        // workers or leaves tickets without a terminal state. In-flight
        // attempts are cancelled cooperatively, so the bound is the
        // engine's cancellation-propagation latency, not item runtime.
        self.drain(Duration::from_secs(10));
    }
}

/// Ensures the in-flight count decrements — and the ticket fails — on
/// **every** exit path of one dequeued item, including a panic
/// unwinding out of the service's own bookkeeping. Without this a
/// panicking item would leave `in_flight` permanently elevated and
/// drain would never observe quiescence.
struct InFlightGuard<'a> {
    shared: &'a ServiceShared,
    ticket: Arc<TicketShared>,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.ticket.complete(Err(PipelineError::Panicked {
            message: "worker panicked while executing this item".to_string(),
        })) {
            let mut counters = lock(&self.shared.counters);
            counters.worker_panics += 1;
            counters.failed += 1;
        }
        let mut queue = lock(&self.shared.queue);
        queue.in_flight = queue.in_flight.saturating_sub(1);
        drop(queue);
        self.shared.idle_cv.notify_all();
    }
}

fn worker_loop(shared: &ServiceShared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop() {
                    queue.in_flight += 1;
                    break Some(job);
                }
                if queue.draining {
                    break None;
                }
                // Scheduling slack: no request queued in any class. Spend
                // it on one deferred shadow audit — strictly below every
                // priority — then re-check the queue before blocking.
                if shared.pipeline.pending_audits() > 0 {
                    drop(queue);
                    shared.pipeline.run_pending_audit();
                    queue = lock(&shared.queue);
                    continue;
                }
                queue = shared.work_cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let guard = InFlightGuard { shared, ticket: Arc::clone(&job.ticket) };

        // Shed at dequeue: a lapsed deadline means nobody is waiting for
        // this answer — executing it would only delay live requests.
        let queued_for = job.enqueued_at.elapsed();
        if let Some(deadline) = job.deadline {
            if queued_for >= deadline {
                if job.ticket.complete(Err(PipelineError::DeadlineShed { queued_for })) {
                    lock(&shared.counters).shed_deadline += 1;
                }
                drop(guard);
                continue;
            }
        }

        // The worker must survive anything the item does: panics are
        // caught here (pool never shrinks) and the guard backstops the
        // accounting even if this very block unwinds.
        let outcome = catch_unwind(AssertUnwindSafe(|| execute_job(shared, &job)));
        match outcome {
            Ok(outcome) => {
                let executed_ok = outcome.is_ok();
                if job.ticket.complete(outcome) {
                    let mut counters = lock(&shared.counters);
                    if executed_ok {
                        counters.completed_ok += 1;
                    } else {
                        counters.failed += 1;
                    }
                    drop(counters);
                    let sojourn = job.enqueued_at.elapsed();
                    lock(&shared.latency[job.ticket.priority.index()])
                        .record(sojourn.as_secs_f64());
                }
            }
            Err(payload) => {
                if job.ticket.complete(Err(PipelineError::Panicked {
                    message: panic_message(payload.as_ref()),
                })) {
                    let mut counters = lock(&shared.counters);
                    counters.worker_panics += 1;
                    counters.failed += 1;
                }
            }
        }
        drop(guard);
    }
}

/// One item's execution: the per-item deadline is narrowed to the time
/// it has left, the class's [`Isolation`] tier picks the execution path,
/// and the optional hedge runs a tightened first attempt before
/// committing to the full policy.
fn execute_job(
    shared: &ServiceShared,
    job: &QueuedRequest,
) -> Result<Arc<PipelineResult>, PipelineError> {
    // Scope the request's priority class to this thread so the audit
    // sampler can resolve per-class rates without a parameter threaded
    // through the supervised call chain.
    let _class = crate::audit::RequestClassGuard::set(job.ticket.priority.index());
    let mut policy = shared.config.policy.clone();
    if let Some(deadline) = job.deadline {
        let remaining = deadline.saturating_sub(job.enqueued_at.elapsed());
        policy.deadline = Some(policy.deadline.map_or(remaining, |p| p.min(remaining)));
    }
    let isolation = shared.config.isolation[job.ticket.priority.index()];
    let run = |policy: &RunPolicy| -> Result<Arc<PipelineResult>, PipelineError> {
        match (&job.work, isolation) {
            (Work::Spec(spec), Isolation::Sandboxed) => {
                shared.executor.run_supervised(spec, policy, Some(&shared.drain_token))
            }
            (Work::Spec(spec), Isolation::InProcess) => {
                let op = spec.instantiate();
                shared.pipeline.run_supervised_with_cancel(op.as_ref(), policy, &shared.drain_token)
            }
            // A trait object cannot cross the process boundary: it runs
            // in-process regardless of the class's tier.
            (Work::Dyn(op), _) => {
                shared.pipeline.run_supervised_with_cancel(op.as_ref(), policy, &shared.drain_token)
            }
        }
    };

    if let Some(hedge_after) = shared.config.hedge_after {
        // Probe attempt: same policy, but bounded at the hedge horizon
        // with retries/fallback/breaker disabled — a straggler must
        // surface as a fast transient failure, not get rescued.
        let mut probe = policy.clone();
        probe.deadline = Some(policy.deadline.map_or(hedge_after, |d| d.min(hedge_after)));
        probe.max_retries = 0;
        probe.breaker_threshold = 0;
        probe.fallback = false;
        match run(&probe) {
            Ok(result) => return Ok(result),
            Err(err) if err.is_transient() && !shared.drain_token.is_signalled() => {
                lock(&shared.counters).hedges += 1;
                let hedged = run(&policy);
                if hedged.is_ok() {
                    lock(&shared.counters).hedge_wins += 1;
                }
                return hedged;
            }
            // Permanent failures (invalid kernel, broken spec) repeat
            // identically under any deadline; report them directly.
            Err(err) => return Err(err),
        }
    }

    run(&policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::ChipSpec;
    use ascend_ops::AddRelu;

    fn service(config: ServiceConfig) -> AnalysisService {
        AnalysisService::start(AnalysisPipeline::new(ChipSpec::training()), config)
    }

    #[test]
    fn submit_execute_and_drain() {
        let svc = service(ServiceConfig::default());
        let ticket = svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 12)))).unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.cycles() > 0.0);
        let report = svc.drain(Duration::from_secs(5));
        assert!(report.quiesced);
        let health = svc.health();
        assert_eq!(health.counters.accepted, 1);
        assert_eq!(health.counters.completed_ok, 1);
        assert_eq!(health.counters.terminal_states(), 1);
        assert!(!health.is_ready(), "a drained service is not ready");
    }

    #[test]
    fn overload_rejection_is_immediate_and_counted() {
        // No workers can make progress on a zero-size... capacity 1 and
        // 1 worker: flood faster than service to force rejections.
        let svc =
            service(ServiceConfig { workers: 1, queue_capacity: 1, ..ServiceConfig::default() });
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for i in 0..32u64 {
            match svc.submit(Request::sweep(Box::new(AddRelu::new(4096 + i * 64)))) {
                Ok(ticket) => accepted.push(ticket),
                Err(PipelineError::Overloaded { queue_depth, retry_after_hint }) => {
                    assert_eq!(queue_depth, 1, "rejection reports the configured bound");
                    assert!(retry_after_hint >= Duration::from_millis(1));
                    rejected += 1;
                }
                Err(other) => panic!("unexpected rejection: {other:?}"),
            }
        }
        let report = svc.drain(Duration::from_secs(10));
        assert!(report.quiesced);
        let health = svc.health();
        assert_eq!(health.counters.rejected_overload, rejected);
        assert_eq!(health.counters.accepted, accepted.len() as u64);
        assert_eq!(health.counters.terminal_states(), health.counters.accepted);
        for ticket in &accepted {
            assert!(ticket.try_result().is_some(), "every accepted ticket is terminal");
        }
    }

    #[test]
    fn submitting_after_drain_reports_stopped() {
        let svc = service(ServiceConfig::default());
        svc.drain(Duration::from_secs(5));
        match svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 12)))) {
            Err(PipelineError::ServiceStopped) => {}
            other => panic!("expected ServiceStopped, got {other:?}"),
        }
    }

    #[test]
    fn queued_request_with_lapsed_deadline_is_shed_not_executed() {
        // One worker wedged on a long item while a zero-deadline request
        // waits behind it: by dequeue time the deadline has lapsed.
        let svc =
            service(ServiceConfig { workers: 1, queue_capacity: 8, ..ServiceConfig::default() });
        let long = svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 18)))).unwrap();
        let doomed = svc
            .submit(Request::sweep(Box::new(AddRelu::new(1 << 12))).with_deadline(Duration::ZERO))
            .unwrap();
        match doomed.wait() {
            Err(PipelineError::DeadlineShed { .. }) => {}
            other => panic!("expected DeadlineShed, got {other:?}"),
        }
        assert!(long.wait().is_ok());
        let misses = svc.pipeline().cache_stats().misses;
        assert_eq!(misses, 1, "the shed item must never reach the pipeline");
        svc.drain(Duration::from_secs(5));
        assert_eq!(svc.health().counters.shed_deadline, 1);
    }

    #[test]
    fn spec_requests_match_trait_object_requests_in_process() {
        use ascend_ops::OpSpec;
        let svc = service(ServiceConfig::default());
        let by_spec = svc
            .submit(Request::interactive_spec(OpSpec::add_relu(1 << 12)))
            .unwrap()
            .wait()
            .unwrap();
        let by_object = svc
            .submit(Request::interactive(Box::new(AddRelu::new(1 << 12))))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(by_spec, by_object, "same work, same result, same cache entry");
        assert_eq!(svc.pipeline().cache_stats().hits, 1, "the second submission is a cache hit");
        svc.drain(Duration::from_secs(5));
        let health = svc.health();
        assert_eq!(health.counters.completed_ok, 2);
        assert_eq!(health.sandbox, SandboxCounters::default(), "no sandbox activity in-process");
    }

    #[test]
    fn drop_drains_implicitly() {
        let svc = service(ServiceConfig::default());
        let ticket = svc.submit(Request::interactive(Box::new(AddRelu::new(1 << 12)))).unwrap();
        drop(svc);
        assert!(ticket.try_result().is_some(), "drop must leave no ticket without terminal state");
    }
}
