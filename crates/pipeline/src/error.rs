//! The pipeline's error taxonomy.
//!
//! Batch and stream APIs isolate failures per item: a panicking or
//! erroring operator costs its own slot, never its siblings'.
//! [`PipelineError`] classifies what went wrong in one slot, unifying the
//! lower layers' [`IsaError`], [`ArchError`], and [`SimError`] under one
//! roof and adding the panic case the lower layers cannot represent.

use ascend_arch::ArchError;
use ascend_isa::IsaError;
use ascend_sim::SimError;
use std::error::Error;
use std::fmt;

/// What went wrong while running one operator through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The operator produced a kernel the validator rejected (or could
    /// not produce one at all).
    Invalid(IsaError),
    /// The chip specification is invalid or missing a required rate.
    Chip(ArchError),
    /// The engine failed at runtime: deadlock or watchdog budget.
    Runtime(SimError),
    /// A pipeline stage panicked. The panic was caught at the item
    /// boundary; the payload's message is preserved here.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The supervision circuit breaker is open: too many consecutive
    /// items failed every attempt, so the supervisor stopped trying the
    /// simulator (and analytical fallback was disabled by policy). Reset
    /// with `AnalysisPipeline::reset_breaker`.
    CircuitOpen {
        /// Consecutive hard failures recorded when the item was
        /// short-circuited.
        consecutive_failures: u32,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Invalid(err) => write!(f, "operator produced an invalid kernel: {err}"),
            PipelineError::Chip(err) => write!(f, "chip specification error: {err}"),
            PipelineError::Runtime(err) => write!(f, "simulation failed: {err}"),
            PipelineError::Panicked { message } => write!(f, "pipeline stage panicked: {message}"),
            PipelineError::CircuitOpen { consecutive_failures } => write!(
                f,
                "supervision circuit breaker is open after {consecutive_failures} consecutive \
                 hard failures; not attempting simulation"
            ),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Invalid(err) => Some(err),
            PipelineError::Chip(err) => Some(err),
            PipelineError::Runtime(err) => Some(err),
            PipelineError::Panicked { .. } | PipelineError::CircuitOpen { .. } => None,
        }
    }
}

impl PipelineError {
    /// Whether the failure is *transient* — tied to this particular run
    /// (preemption, watchdog, panic) rather than to the operator or the
    /// chip — and therefore retryable and fallback-eligible under a
    /// [`RunPolicy`](crate::RunPolicy).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            PipelineError::Runtime(err) => {
                // A deadlock is deterministic for a given kernel, but it
                // is reachable only through fault injection here (valid
                // kernels cannot deadlock), so the analytical fallback is
                // still the right rescue. Treat every runtime failure as
                // transient.
                err.is_transient() || matches!(err, ascend_sim::SimError::Deadlock(_))
            }
            PipelineError::Panicked { .. } => true,
            PipelineError::Invalid(_)
            | PipelineError::Chip(_)
            | PipelineError::CircuitOpen { .. } => false,
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(err: SimError) -> Self {
        // Re-classify rather than wrap: a validation failure is the
        // operator's fault and a spec failure the chip's, regardless of
        // which layer noticed first.
        match err {
            SimError::Validation(err) => PipelineError::Invalid(err),
            SimError::Arch(err) => PipelineError::Chip(err),
            other => PipelineError::Runtime(other),
        }
    }
}

impl From<IsaError> for PipelineError {
    fn from(err: IsaError) -> Self {
        PipelineError::Invalid(err)
    }
}

impl From<ArchError> for PipelineError {
    fn from(err: ArchError) -> Self {
        PipelineError::Chip(err)
    }
}

/// Renders a caught panic payload as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_errors_are_reclassified() {
        let err = PipelineError::from(SimError::Validation(IsaError::EmptyKernel));
        assert!(matches!(err, PipelineError::Invalid(_)));
        assert_eq!(
            err.to_string(),
            "operator produced an invalid kernel: kernel contains no instructions"
        );
        assert!(err.source().is_some());
        let err = PipelineError::from(SimError::BudgetExceeded {
            events: 2,
            cycles: 1.0,
            max_events: 1,
            max_cycles: 1e6,
        });
        assert!(matches!(err, PipelineError::Runtime(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn panic_case_has_no_source_and_keeps_the_message() {
        let err = PipelineError::Panicked { message: "boom".to_string() };
        assert!(err.source().is_none());
        assert_eq!(err.to_string(), "pipeline stage panicked: boom");
    }
}
