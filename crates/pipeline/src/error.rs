//! The pipeline's error taxonomy.
//!
//! Batch and stream APIs isolate failures per item: a panicking or
//! erroring operator costs its own slot, never its siblings'.
//! [`PipelineError`] classifies what went wrong in one slot, unifying the
//! lower layers' [`IsaError`], [`ArchError`], and [`SimError`] under one
//! roof and adding the panic case the lower layers cannot represent.

use ascend_arch::ArchError;
use ascend_isa::IsaError;
use ascend_sim::SimError;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// What went wrong while running one operator through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The operator produced a kernel the validator rejected (or could
    /// not produce one at all).
    Invalid(IsaError),
    /// The chip specification is invalid or missing a required rate.
    Chip(ArchError),
    /// The engine failed at runtime: deadlock or watchdog budget.
    Runtime(SimError),
    /// A pipeline stage panicked. The panic was caught at the item
    /// boundary; the payload's message is preserved here.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The supervision circuit breaker is open: too many consecutive
    /// items failed every attempt, so the supervisor stopped trying the
    /// simulator (and analytical fallback was disabled by policy). Reset
    /// with `AnalysisPipeline::reset_breaker`.
    CircuitOpen {
        /// Consecutive hard failures recorded when the item was
        /// short-circuited.
        consecutive_failures: u32,
    },
    /// The service's bounded admission queue is full: the request was
    /// rejected at submission, before any work was done. This is the
    /// backpressure signal — the client should retry after
    /// `retry_after_hint` or route elsewhere. Never raised for a request
    /// that was already accepted.
    Overloaded {
        /// Queue depth observed at rejection (equal to the configured
        /// capacity).
        queue_depth: usize,
        /// Estimated time until a slot frees up, derived from recent
        /// service latency. A hint, not a guarantee.
        retry_after_hint: Duration,
    },
    /// The request was accepted but its deadline lapsed while it waited
    /// in the queue, so it was shed at dequeue without executing. The
    /// work was never started — nothing was simulated or cached.
    DeadlineShed {
        /// How long the request sat in the queue before being shed.
        queued_for: Duration,
    },
    /// The service is draining or stopped: admissions are closed, and
    /// queued requests that could not be started are flushed with this
    /// terminal state.
    ServiceStopped,
    /// A sandboxed worker stopped making observable progress — its
    /// heartbeats went silent, or its wall-clock limit lapsed while it
    /// hot-looped — and the supervising parent killed it.
    WorkerHung {
        /// Wall-clock time the item ran before the kill.
        waited: Duration,
        /// Heartbeat frames received before the kill (0 distinguishes a
        /// silent worker from a live-but-stuck one).
        heartbeats: u64,
    },
    /// A sandboxed worker exceeded its resident-set budget (sampled from
    /// `/proc/<pid>/status`) and was killed before it could take the
    /// host down with it.
    WorkerOverMemory {
        /// Resident set observed at the kill.
        rss_bytes: u64,
        /// The budget that was in force.
        budget_bytes: u64,
    },
    /// A sandboxed worker died without delivering a result frame: killed
    /// by a signal (abort, segfault, the kernel OOM-killer) or exited
    /// nonzero.
    WorkerCrashed {
        /// Exit code, when the worker exited on its own.
        code: Option<i32>,
        /// Terminating signal, when it was killed.
        signal: Option<i32>,
    },
    /// A sandboxed worker violated the frame protocol: garbage where a
    /// frame should be, a truncated frame, a digest or version mismatch,
    /// or a clean exit with no result.
    WorkerProtocol {
        /// What exactly was malformed.
        detail: String,
    },
    /// The sandboxed worker ran the item to completion and reported this
    /// failure of its own in-child pipeline run (the child-side error
    /// crosses the process boundary as a rendered message plus its
    /// transience class).
    WorkerReported {
        /// The child-side error, rendered.
        message: String,
        /// The child-side transience classification.
        transient: bool,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Invalid(err) => write!(f, "operator produced an invalid kernel: {err}"),
            PipelineError::Chip(err) => write!(f, "chip specification error: {err}"),
            PipelineError::Runtime(err) => write!(f, "simulation failed: {err}"),
            PipelineError::Panicked { message } => write!(f, "pipeline stage panicked: {message}"),
            PipelineError::CircuitOpen { consecutive_failures } => write!(
                f,
                "supervision circuit breaker is open after {consecutive_failures} consecutive \
                 hard failures; not attempting simulation"
            ),
            PipelineError::Overloaded { queue_depth, retry_after_hint } => write!(
                f,
                "service overloaded: admission queue is full ({queue_depth} deep); retry after \
                 ~{:.0} ms",
                retry_after_hint.as_secs_f64() * 1e3
            ),
            PipelineError::DeadlineShed { queued_for } => write!(
                f,
                "request shed: its deadline lapsed after {:.1} ms in the queue, before execution",
                queued_for.as_secs_f64() * 1e3
            ),
            PipelineError::ServiceStopped => {
                write!(f, "service is draining or stopped; request was not executed")
            }
            PipelineError::WorkerHung { waited, heartbeats } => write!(
                f,
                "sandboxed worker hung: killed after {:.0} ms ({heartbeats} heartbeats seen)",
                waited.as_secs_f64() * 1e3
            ),
            PipelineError::WorkerOverMemory { rss_bytes, budget_bytes } => write!(
                f,
                "sandboxed worker over memory: killed at {:.1} MiB resident (budget {:.1} MiB)",
                *rss_bytes as f64 / (1024.0 * 1024.0),
                *budget_bytes as f64 / (1024.0 * 1024.0)
            ),
            PipelineError::WorkerCrashed { code, signal } => match (code, signal) {
                (_, Some(signal)) => {
                    write!(f, "sandboxed worker crashed: killed by signal {signal}")
                }
                (Some(code), None) => {
                    write!(f, "sandboxed worker crashed: exited with status {code}")
                }
                (None, None) => write!(f, "sandboxed worker crashed: no exit status"),
            },
            PipelineError::WorkerProtocol { detail } => {
                write!(f, "sandboxed worker protocol violation: {detail}")
            }
            PipelineError::WorkerReported { message, .. } => {
                write!(f, "sandboxed worker reported: {message}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Invalid(err) => Some(err),
            PipelineError::Chip(err) => Some(err),
            PipelineError::Runtime(err) => Some(err),
            PipelineError::Panicked { .. }
            | PipelineError::CircuitOpen { .. }
            | PipelineError::Overloaded { .. }
            | PipelineError::DeadlineShed { .. }
            | PipelineError::ServiceStopped
            | PipelineError::WorkerHung { .. }
            | PipelineError::WorkerOverMemory { .. }
            | PipelineError::WorkerCrashed { .. }
            | PipelineError::WorkerProtocol { .. }
            | PipelineError::WorkerReported { .. } => None,
        }
    }
}

impl PipelineError {
    /// Whether the failure is *transient* — tied to this particular run
    /// (preemption, watchdog, panic) rather than to the operator or the
    /// chip — and therefore retryable and fallback-eligible under a
    /// [`RunPolicy`](crate::RunPolicy).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            PipelineError::Runtime(err) => {
                // A deadlock is deterministic for a given kernel, but it
                // is reachable only through fault injection here (valid
                // kernels cannot deadlock), so the analytical fallback is
                // still the right rescue. Treat every runtime failure as
                // transient.
                err.is_transient() || matches!(err, ascend_sim::SimError::Deadlock(_))
            }
            PipelineError::Panicked { .. } => true,
            // Service-side rejections are retryable from the *client's*
            // point of view (the condition is load, not the operator),
            // but they never flow through the supervisor's retry loop —
            // they are raised before execution starts.
            PipelineError::Overloaded { .. } | PipelineError::DeadlineShed { .. } => true,
            // Worker kills describe how *this run* in *this child* died,
            // not a property of the operator: a fresh worker (or the
            // analytical fallback) gets its chance.
            PipelineError::WorkerHung { .. }
            | PipelineError::WorkerOverMemory { .. }
            | PipelineError::WorkerCrashed { .. }
            | PipelineError::WorkerProtocol { .. } => true,
            // The child ran the pipeline and classified its own failure;
            // honor that classification across the process boundary.
            PipelineError::WorkerReported { transient, .. } => *transient,
            PipelineError::Invalid(_)
            | PipelineError::Chip(_)
            | PipelineError::CircuitOpen { .. }
            | PipelineError::ServiceStopped => false,
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(err: SimError) -> Self {
        // Re-classify rather than wrap: a validation failure is the
        // operator's fault and a spec failure the chip's, regardless of
        // which layer noticed first.
        match err {
            SimError::Validation(err) => PipelineError::Invalid(err),
            SimError::Arch(err) => PipelineError::Chip(err),
            other => PipelineError::Runtime(other),
        }
    }
}

impl From<IsaError> for PipelineError {
    fn from(err: IsaError) -> Self {
        PipelineError::Invalid(err)
    }
}

impl From<ArchError> for PipelineError {
    fn from(err: ArchError) -> Self {
        PipelineError::Chip(err)
    }
}

/// Renders a caught panic payload as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_errors_are_reclassified() {
        let err = PipelineError::from(SimError::Validation(IsaError::EmptyKernel));
        assert!(matches!(err, PipelineError::Invalid(_)));
        assert_eq!(
            err.to_string(),
            "operator produced an invalid kernel: kernel contains no instructions"
        );
        assert!(err.source().is_some());
        let err = PipelineError::from(SimError::BudgetExceeded {
            events: 2,
            cycles: 1.0,
            max_events: 1,
            max_cycles: 1e6,
        });
        assert!(matches!(err, PipelineError::Runtime(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn panic_case_has_no_source_and_keeps_the_message() {
        let err = PipelineError::Panicked { message: "boom".to_string() };
        assert!(err.source().is_none());
        assert_eq!(err.to_string(), "pipeline stage panicked: boom");
    }

    #[test]
    fn worker_kills_are_transient_and_render_their_cause() {
        let hung = PipelineError::WorkerHung { waited: Duration::from_millis(120), heartbeats: 4 };
        assert!(hung.is_transient());
        assert!(hung.to_string().contains("120 ms"), "{hung}");
        assert!(hung.to_string().contains("4 heartbeats"), "{hung}");

        let oom = PipelineError::WorkerOverMemory {
            rss_bytes: 64 * 1024 * 1024,
            budget_bytes: 32 * 1024 * 1024,
        };
        assert!(oom.is_transient());
        assert!(oom.to_string().contains("64.0 MiB"), "{oom}");

        let sig = PipelineError::WorkerCrashed { code: None, signal: Some(6) };
        assert!(sig.is_transient());
        assert!(sig.to_string().contains("signal 6"), "{sig}");
        let exit = PipelineError::WorkerCrashed { code: Some(3), signal: None };
        assert!(exit.to_string().contains("status 3"), "{exit}");

        let protocol = PipelineError::WorkerProtocol { detail: "bad magic".to_string() };
        assert!(protocol.is_transient());
        assert!(protocol.to_string().contains("bad magic"), "{protocol}");

        let reported = PipelineError::WorkerReported {
            message: "kernel validation failed".to_string(),
            transient: false,
        };
        assert!(!reported.is_transient(), "the child's classification must be honored");
        assert!(reported.to_string().contains("kernel validation failed"), "{reported}");
    }

    #[test]
    fn service_rejections_classify_as_client_retryable() {
        let overloaded = PipelineError::Overloaded {
            queue_depth: 8,
            retry_after_hint: Duration::from_millis(25),
        };
        assert!(overloaded.is_transient(), "the client may retry after the hint");
        assert!(overloaded.source().is_none());
        assert!(overloaded.to_string().contains("8 deep"));
        assert!(overloaded.to_string().contains("25 ms"));

        let shed = PipelineError::DeadlineShed { queued_for: Duration::from_millis(3) };
        assert!(shed.is_transient());
        assert!(shed.to_string().contains("before execution"));

        let stopped = PipelineError::ServiceStopped;
        assert!(!stopped.is_transient(), "a stopped service will not recover by retrying");
        assert!(stopped.to_string().contains("draining or stopped"));
    }
}
