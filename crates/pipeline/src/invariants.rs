//! The centralized cross-tier invariant contract chaos runs are judged
//! against.
//!
//! Before this module, the system's end-to-end guarantees — exactly-once
//! ticket accounting, never serving a corrupt result, quarantine being
//! permanent, stores verifying clean, the cluster coming back after
//! total outage — lived as assertions scattered across the test suites
//! (`tests/cluster.rs`, `tests/store.rs`, `tests/service.rs`,
//! `tests/audit.rs`, `tests/robustness.rs`). An [`InvariantReport`]
//! states them once, as named checks with human-readable evidence, so a
//! chaos orchestrator (`bench chaos`) can run the full stack under a
//! seeded fault schedule and render every violation uniformly — and a
//! delta-debugger can re-evaluate the same contract on minimized
//! schedules.

use crate::cluster::ClusterCounters;
use crate::store::StoreVerifyReport;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// One named invariant with its verdict and evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantCheck {
    /// Stable name of the invariant (e.g. `exactly-once`).
    pub name: String,
    /// Whether the invariant held.
    pub ok: bool,
    /// Human-readable evidence (counts, ids, paths).
    pub detail: String,
}

/// An ordered collection of invariant verdicts for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvariantReport {
    checks: Vec<InvariantCheck>,
}

impl InvariantReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        InvariantReport::default()
    }

    /// Records one named check.
    pub fn check(&mut self, name: &str, ok: bool, detail: impl Into<String>) {
        self.checks.push(InvariantCheck { name: name.to_string(), ok, detail: detail.into() });
    }

    /// **Exactly-once accounting**: every admitted ticket reached exactly
    /// one terminal state — no request lost to a shard death, none
    /// answered twice.
    pub fn exactly_once(&mut self, counters: &ClusterCounters) {
        let terminal = counters.terminal_states();
        self.check(
            "exactly-once",
            terminal == counters.accepted,
            format!(
                "accepted {} == terminal {} (ok {}, failed {}, shed {}, flushed {})",
                counters.accepted,
                terminal,
                counters.completed_ok,
                counters.failed,
                counters.shed_deadline,
                counters.drain_flushed
            ),
        );
    }

    /// **All tickets settled**: every ticket handed out by the run was
    /// resolved (none still pending after drain).
    pub fn tickets_settled(&mut self, settled: usize, pending: usize) {
        self.check(
            "tickets-settled",
            pending == 0,
            format!("{settled} settled, {pending} still pending after drain"),
        );
    }

    /// **No corrupt result served**: every served result recomputed
    /// bit-identically on an independent clean pipeline. This is the
    /// check a silently-wrong engine (BuggyEngine) cannot survive.
    pub fn bit_identity(&mut self, mismatches: u64, compared: u64) {
        self.check(
            "no-corrupt-served",
            mismatches == 0,
            format!("{mismatches} of {compared} served results diverge from a clean recompute"),
        );
    }

    /// **Quarantine is permanent**: a quarantined fingerprint stays
    /// barred (`still_quarantined`) and no store segment contains a
    /// record appended after its tombstone (`resurrected`, summed over
    /// the verified segments).
    pub fn quarantine_integrity(&mut self, still_quarantined: bool, resurrected: u64) {
        self.check(
            "quarantine-permanent",
            still_quarantined && resurrected == 0,
            format!(
                "still quarantined: {still_quarantined}; resurrected records across stores: \
                 {resurrected}"
            ),
        );
    }

    /// **Store verifies clean**: the segment belongs to `expected_context`
    /// and — unless `allow_damage` (an at-rest disk fault was injected
    /// into this very segment) — carries no corruption. Resurrections are
    /// never excused: no compliant writer produces them, disk fault or
    /// not (corruption can *invalidate* records, which the verifier
    /// already discounts).
    pub fn store_verify(
        &mut self,
        label: &str,
        report: &StoreVerifyReport,
        expected_context: u64,
        allow_damage: bool,
    ) {
        let context_ok = report.context == expected_context;
        let damage_ok = allow_damage || (report.digest_invalid == 0 && report.torn_bytes == 0);
        self.check(
            &format!("store-verify-{label}"),
            context_ok && damage_ok && report.resurrected == 0,
            format!("{report}{}", if allow_damage { " (at-rest damage excused)" } else { "" }),
        );
    }

    /// **Bounded availability gap**: the longest window with zero live
    /// shards stayed under `bound` — kills and wire faults may take the
    /// whole cluster down momentarily, but respawn must bring it back.
    pub fn availability(&mut self, longest_gap: Duration, bound: Duration) {
        self.check(
            "bounded-availability-gap",
            longest_gap <= bound,
            format!("longest all-shards-down gap {longest_gap:?} (bound {bound:?})"),
        );
    }

    /// **Drain hygiene**: the cluster quiesced and left no live worker
    /// processes behind.
    pub fn drain_hygiene(&mut self, quiesced: bool, live_pids: usize) {
        self.check(
            "drain-hygiene",
            quiesced && live_pids == 0,
            format!("quiesced: {quiesced}; worker pids still live: {live_pids}"),
        );
    }

    /// Whether every check held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|check| check.ok)
    }

    /// The checks that failed.
    pub fn violations(&self) -> impl Iterator<Item = &InvariantCheck> {
        self.checks.iter().filter(|check| !check.ok)
    }

    /// All checks, in evaluation order.
    #[must_use]
    pub fn checks(&self) -> &[InvariantCheck] {
        &self.checks
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.checks.is_empty() {
            return writeln!(f, "(no invariants evaluated)");
        }
        for check in &self.checks {
            let verdict = if check.ok { "ok       " } else { "VIOLATION" };
            writeln!(f, "{verdict} {:<26} {}", check.name, check.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean_and_displays() {
        let report = InvariantReport::new();
        assert!(report.is_clean());
        assert!(report.to_string().contains("no invariants"));
    }

    #[test]
    fn violations_are_detected_and_listed() {
        let mut report = InvariantReport::new();
        report.check("first", true, "fine");
        report.bit_identity(2, 10);
        report.tickets_settled(5, 0);
        assert!(!report.is_clean());
        let violations: Vec<_> = report.violations().collect();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].name, "no-corrupt-served");
        assert!(report.to_string().contains("VIOLATION"));
        assert_eq!(report.checks().len(), 3);
    }

    #[test]
    fn exactly_once_compares_terminal_states() {
        let mut counters = ClusterCounters {
            accepted: 10,
            completed_ok: 7,
            failed: 2,
            drain_flushed: 1,
            ..ClusterCounters::default()
        };
        let mut report = InvariantReport::new();
        report.exactly_once(&counters);
        assert!(report.is_clean());
        counters.drain_flushed = 0;
        let mut report = InvariantReport::new();
        report.exactly_once(&counters);
        assert!(!report.is_clean(), "a lost ticket must violate exactly-once");
    }

    #[test]
    fn store_verify_excuses_damage_but_never_resurrection() {
        let damaged = StoreVerifyReport {
            version: 1,
            context: 42,
            file_bytes: 100,
            live: 1,
            superseded: 0,
            digest_invalid: 1,
            torn_bytes: 3,
            tombstones: 0,
            resurrected: 0,
        };
        let mut report = InvariantReport::new();
        report.store_verify("shard-0", &damaged, 42, true);
        assert!(report.is_clean(), "injected damage is excused when allowed");
        let mut report = InvariantReport::new();
        report.store_verify("shard-0", &damaged, 42, false);
        assert!(!report.is_clean(), "unexplained damage is a violation");
        let resurrected = StoreVerifyReport { resurrected: 1, ..damaged };
        let mut report = InvariantReport::new();
        report.store_verify("shard-0", &resurrected, 42, true);
        assert!(!report.is_clean(), "resurrection is never excused");
        let mut report = InvariantReport::new();
        report.store_verify("foreign", &damaged, 7, true);
        assert!(!report.is_clean(), "a foreign context is a violation");
    }

    #[test]
    fn availability_and_drain_checks() {
        let mut report = InvariantReport::new();
        report.availability(Duration::from_millis(80), Duration::from_millis(100));
        report.drain_hygiene(true, 0);
        report.quarantine_integrity(true, 0);
        assert!(report.is_clean());
        let mut report = InvariantReport::new();
        report.availability(Duration::from_millis(180), Duration::from_millis(100));
        report.drain_hygiene(true, 2);
        report.quarantine_integrity(false, 0);
        assert_eq!(report.violations().count(), 3);
    }
}
