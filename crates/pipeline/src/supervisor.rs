//! Supervision policy for pipeline runs: per-item deadlines, bounded
//! seeded retries, a circuit breaker, and the fidelity tag that marks
//! analytically degraded results.
//!
//! The supervisor treats the simulator the way production evaluation
//! harnesses treat any cycle-level backend — as *unreliable*: an item may
//! wedge (preempted via [`CancelToken`](ascend_sim::CancelToken)), fail
//! transiently (retried with deterministic exponential backoff), or keep
//! failing (the circuit breaker stops burning deadline on a broken
//! backend and the analytical roofline model answers instead).

use ascend_faults::SplitMix64;
use ascend_sim::SimBudget;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a [`PipelineResult`](crate::PipelineResult) was produced.
///
/// Figures built from supervised batches carry degraded coverage
/// honestly: an `AnalyticalFallback` item was *not* simulated — its
/// cycles come from the closed-form roofline estimate (serial per-queue
/// work, no overlap modelling beyond the max across components), so its
/// trace is empty and its timings are optimistic bounds, not
/// measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// The result came from the event-driven simulator (full trace).
    #[default]
    Simulated,
    /// The simulator was preempted or kept failing; the result is the
    /// closed-form analytical roofline estimate (empty trace).
    AnalyticalFallback,
    /// An online audit caught the fast engine diverging on this
    /// fingerprint; the result was re-answered by the reference oracle
    /// (full trace, full fidelity — the *fast-engine* answer was the
    /// defective one and has been quarantined).
    Audited,
}

impl Fidelity {
    /// Whether this is a degraded (non-simulated) result. `Audited`
    /// results are **not** degraded: they carry a complete trace from
    /// the trusted oracle.
    #[must_use]
    pub fn is_degraded(self) -> bool {
        matches!(self, Fidelity::AnalyticalFallback)
    }
}

/// Supervision policy for [`run_supervised`](crate::AnalysisPipeline::run_supervised)
/// and the resumable batch APIs.
///
/// The default policy is a **passthrough**: no deadline, no budget
/// override, no retries, no breaker, no fallback — byte-identical
/// behaviour to [`run_isolated`](crate::AnalysisPipeline::run_isolated).
/// Start from [`RunPolicy::resilient`] for the supervised defaults the
/// bench sweeps use.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPolicy {
    /// Wall-clock deadline per attempt. Enforced cooperatively through a
    /// [`CancelToken`](ascend_sim::CancelToken) the engine polls, so a
    /// wedged item is preempted (with forensics) instead of holding the
    /// batch hostage. `None` disables it.
    pub deadline: Option<Duration>,
    /// Watchdog budget override per attempt (`None` keeps the
    /// simulator's own budget). A tightened budget is the deterministic
    /// sibling of `deadline`: it trips on simulated work, not wall time.
    pub budget: Option<SimBudget>,
    /// Extra attempts after the first failure. Only *transient* failures
    /// (preemption, watchdog, panics) are retried; invalid kernels and
    /// broken chip specs fail immediately.
    pub max_retries: u32,
    /// Base of the exponential backoff between retries (attempt `n`
    /// sleeps `base * 2^(n-1)`, jittered). [`Duration::ZERO`] disables
    /// sleeping while keeping the retry loop.
    pub backoff_base: Duration,
    /// Seed of the backoff jitter. Mixed with the item fingerprint and
    /// attempt number, so the whole retry schedule is deterministic for
    /// a given (seed, item) pair regardless of thread interleaving.
    pub backoff_seed: u64,
    /// Consecutive hard failures (across items) that trip the circuit
    /// breaker. Once open, supervised runs stop attempting simulation
    /// and fall back immediately (or report
    /// [`CircuitOpen`](crate::PipelineError::CircuitOpen) when fallback
    /// is disabled). `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Whether deadline/retry exhaustion degrades to the closed-form
    /// analytical roofline estimate instead of erroring.
    pub fallback: bool,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            deadline: None,
            budget: None,
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_seed: 0,
            breaker_threshold: 0,
            fallback: false,
        }
    }
}

impl RunPolicy {
    /// The supervised defaults: two retries with a 5 ms backoff base,
    /// breaker after 8 consecutive hard failures, analytical fallback
    /// on. No deadline — callers that want one add it with
    /// [`with_deadline`](RunPolicy::with_deadline), since a sensible
    /// wall-clock bound depends on the host.
    #[must_use]
    pub fn resilient() -> Self {
        RunPolicy {
            deadline: None,
            budget: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_seed: 0x5EED_CAFE,
            breaker_threshold: 8,
            fallback: true,
        }
    }

    /// Sets the per-attempt wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-attempt watchdog budget override.
    #[must_use]
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the retry count.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the backoff base and seed.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, seed: u64) -> Self {
        self.backoff_base = base;
        self.backoff_seed = seed;
        self
    }

    /// Sets the circuit-breaker threshold (`0` disables).
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32) -> Self {
        self.breaker_threshold = threshold;
        self
    }

    /// Enables or disables analytical fallback.
    #[must_use]
    pub fn with_fallback(mut self, fallback: bool) -> Self {
        self.fallback = fallback;
        self
    }

    /// Whether this policy adds nothing over `run_isolated`.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self == &RunPolicy::default()
    }

    /// The backoff before retry `attempt` (1-based: the sleep *before*
    /// the second attempt is `backoff_delay(fp, 1)`). Exponential in the
    /// attempt with a deterministic jitter factor in `[0.5, 1.5)` drawn
    /// from SplitMix64 seeded by `(backoff_seed, fingerprint, attempt)`
    /// — the schedule never depends on thread timing.
    #[must_use]
    pub fn backoff_delay(&self, fingerprint: u64, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = 1u32 << attempt.saturating_sub(1).min(16);
        let mut rng = SplitMix64::new(
            self.backoff_seed
                ^ fingerprint
                ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let jitter = 0.5 + rng.unit_f64();
        self.backoff_base.mul_f64(f64::from(exp) * jitter)
    }
}

/// Counters of the supervision layer (shared across pipeline clones),
/// mirroring [`CacheStats`](crate::CacheStats) for the supervised path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorStats {
    /// Items that went through a supervised entry point.
    pub supervised_runs: u64,
    /// Re-attempts after a transient failure.
    pub retries: u64,
    /// Attempts preempted by a lapsed wall-clock deadline or an explicit
    /// cancellation.
    pub deadline_preemptions: u64,
    /// Attempts stopped by the watchdog budget.
    pub budget_trips: u64,
    /// Items degraded to the analytical roofline estimate.
    pub fallbacks: u64,
    /// Items whose every attempt failed (counted whether or not the
    /// fallback then rescued them).
    pub hard_failures: u64,
    /// Times the circuit breaker transitioned to open.
    pub breaker_trips: u64,
    /// Items short-circuited because the breaker was already open.
    pub breaker_short_circuits: u64,
    /// Batch items skipped because the journal already had their result.
    pub journal_skips: u64,
}

impl SupervisorStats {
    /// Whether any supervision activity besides plain passthrough runs
    /// happened (used to keep instrumentation footers stable when the
    /// supervisor is idle).
    #[must_use]
    pub fn any_activity(&self) -> bool {
        self.retries
            + self.deadline_preemptions
            + self.budget_trips
            + self.fallbacks
            + self.hard_failures
            + self.breaker_trips
            + self.breaker_short_circuits
            + self.journal_skips
            > 0
    }
}

impl std::fmt::Display for SupervisorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} supervised runs, {} retries, {} deadline preemptions, {} budget trips, \
             {} analytical fallbacks, {} hard failures, {} breaker trips, \
             {} breaker short-circuits, {} journal skips",
            self.supervised_runs,
            self.retries,
            self.deadline_preemptions,
            self.budget_trips,
            self.fallbacks,
            self.hard_failures,
            self.breaker_trips,
            self.breaker_short_circuits,
            self.journal_skips,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_passthrough() {
        assert!(RunPolicy::default().is_passthrough());
        assert!(!RunPolicy::resilient().is_passthrough());
        assert!(!RunPolicy::default().with_retries(1).is_passthrough());
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RunPolicy::resilient().with_backoff(Duration::from_millis(10), 42);
        let a1 = policy.backoff_delay(0xFEED, 1);
        let a2 = policy.backoff_delay(0xFEED, 2);
        let a3 = policy.backoff_delay(0xFEED, 3);
        // Same (seed, fingerprint, attempt) -> same delay, every time.
        assert_eq!(a1, policy.backoff_delay(0xFEED, 1));
        assert_eq!(a2, policy.backoff_delay(0xFEED, 2));
        // Exponential growth dominates the [0.5, 1.5) jitter band.
        assert!(a2 > a1, "attempt 2 must back off longer: {a1:?} vs {a2:?}");
        assert!(a3 > a2, "attempt 3 must back off longer: {a2:?} vs {a3:?}");
        // Jitter bounds: base * 2^(n-1) * [0.5, 1.5).
        assert!(a1 >= Duration::from_millis(5) && a1 < Duration::from_millis(15));
        // Different items de-synchronize.
        assert_ne!(policy.backoff_delay(0xFEED, 1), policy.backoff_delay(0xBEEF, 1));
    }

    #[test]
    fn zero_base_disables_sleeping() {
        let policy = RunPolicy::default().with_retries(3);
        assert_eq!(policy.backoff_delay(1, 1), Duration::ZERO);
        assert_eq!(policy.backoff_delay(1, 7), Duration::ZERO);
    }

    #[test]
    fn fidelity_tags() {
        assert!(!Fidelity::Simulated.is_degraded());
        assert!(Fidelity::AnalyticalFallback.is_degraded());
        assert_eq!(Fidelity::default(), Fidelity::Simulated);
    }
}
