//! Crash-safe write-ahead journal for resumable batches.
//!
//! One JSON line per completed item — `(fingerprint, result digest,
//! fidelity, result)` — appended *and fsync'd* before the batch moves
//! on, so a killed process loses at most the item that was in flight.
//! [`BatchJournal::open`] recovers every intact record, tolerates the
//! torn tail a mid-write kill leaves behind (truncating it away so the
//! next append starts on a record boundary), and drops records whose
//! digest no longer matches their payload.
//!
//! Records carry a format version ([`JOURNAL_VERSION`]) with the same
//! forward-compatibility convention as the sandbox wire protocol: older
//! versions (including the unversioned v0 format) read fine, newer ones
//! fail the open with [`JournalError::UnsupportedVersion`].

use crate::{Fidelity, PipelineResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The record format this build writes, following the same convention as
/// the sandbox frame protocol's [`crate::WIRE_VERSION`]: readers accept
/// any version up to their own and refuse newer ones outright, so a
/// journal written by a future build is never silently re-run (which
/// would interleave old-format records into a newer-format file).
///
/// Version 0 is the pre-versioning format — records without a `version`
/// field — and remains readable forever.
pub const JOURNAL_VERSION: u16 = 1;

/// One journaled batch item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Record format version (see [`JOURNAL_VERSION`]). Absent in
    /// pre-versioning journals, which deserialize as version 0.
    #[serde(default)]
    pub version: u16,
    /// The pipeline cache key of the item (operator + chip + thresholds).
    pub fingerprint: u64,
    /// FNV-1a digest of the serialized `result`, verified on recovery.
    pub digest: u64,
    /// How the result was produced.
    pub fidelity: Fidelity,
    /// The full result, replayed on resume instead of re-running.
    pub result: PipelineResult,
}

/// Why a journal could not be opened or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The journal holds a record written by a newer build. Refusing is
    /// deliberate: dropping the record would re-run its item and append
    /// an older-format record into a newer-format journal.
    UnsupportedVersion {
        /// The version found on disk.
        found: u16,
        /// The newest version this build reads ([`JOURNAL_VERSION`]).
        supported: u16,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal I/O failure: {err}"),
            JournalError::UnsupportedVersion { found, supported } => write!(
                f,
                "journal record version {found} is newer than this build supports \
                 (≤ {supported}); upgrade before resuming this batch"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(err) => Some(err),
            JournalError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(err: std::io::Error) -> Self {
        JournalError::Io(err)
    }
}

/// What [`BatchJournal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Intact records recovered (after last-wins dedup).
    pub recovered: usize,
    /// Lines dropped: torn tail, unparsable JSON, or digest mismatch.
    pub dropped: usize,
}

/// An append-only, fsync-per-record journal of completed batch items.
pub struct BatchJournal {
    path: PathBuf,
    file: Mutex<File>,
    recovered: Mutex<HashMap<u64, JournalRecord>>,
    recovery: JournalRecovery,
}

impl std::fmt::Debug for BatchJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchJournal")
            .field("path", &self.path)
            .field("recovery", &self.recovery)
            .finish_non_exhaustive()
    }
}

impl BatchJournal {
    /// Opens (or creates) the journal at `path`, recovering intact
    /// records and truncating any torn tail left by a mid-write kill.
    ///
    /// Recovery is tolerant by design: a line that does not end in
    /// `\n`, does not parse, or whose digest disagrees with its payload
    /// is counted in [`JournalRecovery::dropped`] and its item simply
    /// re-runs. Duplicate fingerprints keep the *last* record (a
    /// re-run's journal entry supersedes the original).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening, reading, or truncating `path`,
    /// and returns [`JournalError::UnsupportedVersion`] when any record
    /// was written by a newer build (see [`JOURNAL_VERSION`]).
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().read(true).create(true).append(true).open(&path)?;
        let mut contents = String::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_string(&mut contents)?;

        let mut recovered: HashMap<u64, JournalRecord> = HashMap::new();
        let mut dropped = 0usize;
        let mut intact_bytes = 0u64;
        let mut cursor = 0usize;
        while cursor < contents.len() {
            let Some(newline) = contents[cursor..].find('\n') else {
                // Torn tail: the record being written when the process
                // died. Dropped, and truncated below so the next append
                // starts on a record boundary instead of concatenating.
                dropped += 1;
                break;
            };
            let line = &contents[cursor..cursor + newline];
            cursor += newline + 1;
            intact_bytes = cursor as u64;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalRecord>(line) {
                Ok(record) if record.version > JOURNAL_VERSION => {
                    return Err(JournalError::UnsupportedVersion {
                        found: record.version,
                        supported: JOURNAL_VERSION,
                    });
                }
                Ok(record) if record.digest == result_digest(&record.result) => {
                    recovered.insert(record.fingerprint, record);
                }
                _ => dropped += 1,
            }
        }
        if intact_bytes < contents.len() as u64 {
            file.set_len(intact_bytes)?;
            file.sync_data()?;
        }

        let recovery = JournalRecovery { recovered: recovered.len(), dropped };
        Ok(BatchJournal {
            path,
            file: Mutex::new(file),
            recovered: Mutex::new(recovered),
            recovery,
        })
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What recovery found when the journal was opened.
    #[must_use]
    pub fn recovery(&self) -> JournalRecovery {
        self.recovery
    }

    /// The recovered (or since-appended) record for `fingerprint`.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<JournalRecord> {
        lock(&self.recovered).get(&fingerprint).cloned()
    }

    /// Number of distinct journaled fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.recovered).len()
    }

    /// Whether the journal holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one completed item and fsyncs before returning — after
    /// this call, a kill cannot lose the record.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures; on failure nothing is
    /// recorded in memory either, so a later retry re-appends cleanly.
    pub fn append(&self, fingerprint: u64, result: &PipelineResult) -> Result<(), JournalError> {
        let record = JournalRecord {
            version: JOURNAL_VERSION,
            fingerprint,
            digest: result_digest(result),
            fidelity: result.fidelity,
            result: result.clone(),
        };
        let mut line = serde_json::to_string(&record).map_err(std::io::Error::other)?;
        line.push('\n');
        {
            let mut file = lock(&self.file);
            file.write_all(line.as_bytes())?;
            file.flush()?;
            file.sync_data()?;
        }
        lock(&self.recovered).insert(fingerprint, record);
        Ok(())
    }
}

/// FNV-1a over the canonical JSON serialization of a result — the
/// integrity check recovery verifies per record.
#[must_use]
pub fn result_digest(result: &PipelineResult) -> u64 {
    let json = serde_json::to_string(result).unwrap_or_default();
    crate::digest::fnv1a(json.as_bytes())
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
