//! The framed wire transport shared by the sandbox and cluster tiers.
//!
//! Everything that crosses a worker process boundary — jobs, outcomes,
//! heartbeats — travels as an ASBX frame: magic, version, kind, length,
//! payload, FNV-1a digest. This module owns the codec
//! ([`encode_frame`]/[`write_frame`]/[`read_frame`]) and the
//! [`FrameTransport`] seam over the raw pipe writes, so fault injection
//! can shape bytes *between* the frame layer and the pipe without either
//! supervisor knowing.
//!
//! Fault injection plugs in via [`ascend_faults::WireShaper`]:
//! [`PipeTransport`] shapes outbound frames (parent → worker) and
//! [`ShapedReader`] shapes inbound ones (worker → parent), each applying
//! torn frames, bit flips, duplicates, reorders, stalls, and interleaved
//! garbage exactly as scheduled by a seeded
//! [`WireFaultPlan`](ascend_faults::WireFaultPlan). A cut applies to the
//! connection, never the shaper, so a respawned worker always starts on a
//! healthy stream.
//!
//! Two hardening rules live here rather than in the supervisors:
//!
//! * **Bounded allocation** ([`MAX_FRAME_LEN`]): a corrupt or hostile
//!   length prefix is refused before any allocation is sized from it, and
//!   in-bounds payloads are buffered incrementally — a lying prefix can
//!   never reserve more memory than bytes actually received (plus one
//!   64 KiB chunk).
//! * **Digest before parse**: a frame whose payload digest mismatches is
//!   an error, never a result — the supervisors map it to
//!   `WorkerProtocol`.

use crate::digest::fnv1a;
use crate::lock;
use ascend_faults::{HostileMode, WireFault, WireShaper};
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

/// Wire-format version stamped into every frame (and, by shared
/// convention, into journal records). Readers reject frames from any
/// other version instead of guessing.
pub const WIRE_VERSION: u16 = 1;

/// Frame preamble: identifies a byte stream as sandbox frames at all.
pub(crate) const MAGIC: [u8; 4] = *b"ASBX";

/// Upper bound on a frame payload; a length field beyond it is treated
/// as garbage rather than honored with an allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Payload bytes are buffered in chunks of this size, so a lying length
/// prefix drives at most one chunk of over-allocation.
const PAYLOAD_CHUNK: usize = 64 * 1024;

/// What a frame carries. Shared between the sandbox tier and the cluster
/// tier (`cluster.rs`), whose shard workers speak the same framed
/// protocol with their own payload schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Parent → child: one work item.
    Job,
    /// Child → parent: the outcome of the current job.
    Outcome,
    /// Child → parent: liveness signal (empty payload).
    Heartbeat,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Job => 1,
            FrameKind::Outcome => 2,
            FrameKind::Heartbeat => 3,
        }
    }

    fn from_byte(byte: u8) -> Option<FrameKind> {
        match byte {
            1 => Some(FrameKind::Job),
            2 => Some(FrameKind::Outcome),
            3 => Some(FrameKind::Heartbeat),
            _ => None,
        }
    }
}

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// The frame's payload bytes (digest-verified).
    pub payload: Vec<u8>,
}

/// Serializes one frame: magic, version, kind, payload length, payload,
/// payload digest. Flushes, so a frame is either fully visible to the
/// peer or detectably torn.
///
/// # Errors
///
/// Propagates the underlying write/flush failure.
pub fn write_frame(writer: &mut dyn Write, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
    let bytes = encode_frame(kind, payload);
    writer.write_all(&bytes)?;
    writer.flush()
}

/// The full byte image of one frame (exposed separately so fault
/// injection can shape a whole frame at once).
#[must_use]
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(19 + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.push(kind.to_byte());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at
/// a frame boundary); every malformation — wrong magic, unsupported
/// version, unknown kind, oversized length, short read, digest mismatch
/// — is an `Err` describing what was wrong.
///
/// Memory is bounded: the length prefix is checked against
/// [`MAX_FRAME_LEN`] before anything is allocated from it, and the
/// payload buffer grows in [`PAYLOAD_CHUNK`]-sized steps as bytes
/// actually arrive, so a lying in-bounds prefix cannot reserve more than
/// one chunk beyond what the peer really sent.
///
/// # Errors
///
/// Returns a human-readable description of the first malformation
/// encountered.
pub fn read_frame(reader: &mut dyn Read) -> Result<Option<Frame>, String> {
    let mut header = [0u8; 11];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(format!("truncated frame header ({filled} of 11 bytes)")),
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(format!("frame header read failed: {err}")),
        }
    }
    if header[0..4] != MAGIC {
        return Err(format!("bad frame magic {:02x?} (expected {:02x?})", &header[0..4], MAGIC));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(format!("unsupported frame version {version} (supported: {WIRE_VERSION})"));
    }
    let Some(kind) = FrameKind::from_byte(header[6]) else {
        return Err(format!("unknown frame kind {}", header[6]));
    };
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_FRAME_LEN {
        return Err(format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"));
    }
    let total = len as usize;
    let mut payload: Vec<u8> = Vec::with_capacity(total.min(PAYLOAD_CHUNK));
    while payload.len() < total {
        let want = (total - payload.len()).min(PAYLOAD_CHUNK);
        let start = payload.len();
        payload.resize(start + want, 0);
        let mut filled = start;
        while filled < start + want {
            match reader.read(&mut payload[filled..start + want]) {
                Ok(0) => {
                    payload.truncate(filled);
                    return Err(format!("truncated frame payload ({filled} of {total} bytes)"));
                }
                Ok(n) => filled += n,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) => return Err(format!("frame payload read failed: {err}")),
            }
        }
    }
    let mut trailer = [0u8; 8];
    let mut filled = 0usize;
    while filled < trailer.len() {
        match reader.read(&mut trailer[filled..]) {
            Ok(0) => return Err(format!("truncated frame digest ({filled} of 8 bytes)")),
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(format!("frame digest read failed: {err}")),
        }
    }
    let expected = u64::from_le_bytes(trailer);
    let actual = fnv1a(&payload);
    if expected != actual {
        return Err(format!(
            "frame digest mismatch: header {expected:#018x}, payload {actual:#018x}"
        ));
    }
    Ok(Some(Frame { kind, payload }))
}

/// The seam over "put one frame on the wire towards a worker". The
/// supervisors speak frames through this trait; whether the bytes travel
/// untouched or through a fault shaper is the transport's business.
pub trait FrameTransport: Send {
    /// Encodes and ships one frame.
    ///
    /// # Errors
    ///
    /// Propagates the pipe failure; a transport whose connection was cut
    /// (by a scheduled tear or a dead peer) reports `BrokenPipe`.
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> std::io::Result<()>;
}

/// A [`FrameTransport`] over any byte sink, optionally shaped by a shared
/// [`WireShaper`]. A scheduled tear cuts **this connection** (the sink is
/// dropped, which for a `ChildStdin` delivers EOF mid-frame to the
/// child); the shaper survives for the slot's next connection.
pub struct PipeTransport<W: Write + Send> {
    inner: Option<W>,
    shaper: Option<Arc<Mutex<WireShaper>>>,
}

impl<W: Write + Send> fmt::Debug for PipeTransport<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipeTransport")
            .field("connected", &self.inner.is_some())
            .field("shaped", &self.shaper.is_some())
            .finish()
    }
}

impl<W: Write + Send> PipeTransport<W> {
    /// A clean transport: frames reach the sink byte-exact.
    pub fn new(writer: W) -> Self {
        PipeTransport { inner: Some(writer), shaper: None }
    }

    /// A transport whose outbound frames pass through `shaper`.
    pub fn shaped(writer: W, shaper: Arc<Mutex<WireShaper>>) -> Self {
        PipeTransport { inner: Some(writer), shaper: Some(shaper) }
    }
}

impl<W: Write + Send> FrameTransport for PipeTransport<W> {
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> std::io::Result<()> {
        let Some(writer) = self.inner.as_mut() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "transport connection was cut",
            ));
        };
        let Some(shaper) = &self.shaper else {
            return write_frame(writer, kind, payload);
        };
        let image = encode_frame(kind, payload);
        let countable = kind != FrameKind::Heartbeat;
        let action = lock(shaper).shape(image, countable);
        if let Some(stall) = action.stall {
            std::thread::sleep(stall);
        }
        for chunk in &action.chunks {
            writer.write_all(chunk)?;
        }
        writer.flush()?;
        if action.cut {
            self.inner = None;
        }
        Ok(())
    }
}

/// What [`ShapedReader::pull`] found next on the inbound stream.
enum Pulled {
    /// A structurally complete frame image (header sniffed, body read).
    Image { bytes: Vec<u8>, countable: bool },
    /// Bytes that do not frame-align (bad header, or EOF mid-body): the
    /// reader switches to raw passthrough so the parser sees exactly what
    /// a real broken stream would deliver.
    Raw(Vec<u8>),
    /// Clean end-of-stream at a frame boundary.
    Eof,
}

/// An `io::Read` adapter that shapes **whole inbound frames** through a
/// shared [`WireShaper`] before the frame parser sees them. It sniffs
/// frame boundaries from the 11-byte header; anything that does not parse
/// structurally degrades to byte-exact passthrough, so malformed worker
/// output reaches [`read_frame`] unaltered.
pub(crate) struct ShapedReader<R: Read> {
    inner: R,
    shaper: Arc<Mutex<WireShaper>>,
    pending: VecDeque<u8>,
    cut: bool,
    passthrough: bool,
}

impl<R: Read> ShapedReader<R> {
    pub(crate) fn new(inner: R, shaper: Arc<Mutex<WireShaper>>) -> Self {
        ShapedReader { inner, shaper, pending: VecDeque::new(), cut: false, passthrough: false }
    }

    /// Reads one frame image (or the raw bytes of a non-frame) from the
    /// underlying stream.
    fn pull(&mut self) -> std::io::Result<Pulled> {
        let mut header = [0u8; 11];
        let mut filled = 0usize;
        while filled < header.len() {
            match self.inner.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(Pulled::Eof),
                Ok(0) => return Ok(Pulled::Raw(header[..filled].to_vec())),
                Ok(n) => filled += n,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
        let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
        let structural = header[0..4] == MAGIC
            && u16::from_le_bytes([header[4], header[5]]) == WIRE_VERSION
            && FrameKind::from_byte(header[6]).is_some()
            && len <= MAX_FRAME_LEN;
        if !structural {
            return Ok(Pulled::Raw(header.to_vec()));
        }
        let countable = FrameKind::from_byte(header[6]) != Some(FrameKind::Heartbeat);
        let mut image = header.to_vec();
        let total = header.len() + len as usize + 8;
        while image.len() < total {
            let want = (total - image.len()).min(PAYLOAD_CHUNK);
            let start = image.len();
            image.resize(start + want, 0);
            let mut filled = start;
            while filled < start + want {
                match self.inner.read(&mut image[filled..start + want]) {
                    Ok(0) => {
                        image.truncate(filled);
                        return Ok(Pulled::Raw(image));
                    }
                    Ok(n) => filled += n,
                    Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(err) => return Err(err),
                }
            }
        }
        Ok(Pulled::Image { bytes: image, countable })
    }
}

impl<R: Read> Read for ShapedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if !self.pending.is_empty() {
                let n = buf.len().min(self.pending.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = self.pending.pop_front().expect("pending non-empty");
                }
                return Ok(n);
            }
            if self.cut {
                return Ok(0);
            }
            if self.passthrough {
                return self.inner.read(buf);
            }
            match self.pull()? {
                Pulled::Eof => return Ok(0),
                Pulled::Raw(bytes) => {
                    self.passthrough = true;
                    self.pending.extend(bytes);
                    if self.pending.is_empty() {
                        return Ok(0);
                    }
                }
                Pulled::Image { bytes, countable } => {
                    let action = lock(&self.shaper).shape(bytes, countable);
                    if let Some(stall) = action.stall {
                        std::thread::sleep(stall);
                    }
                    for chunk in action.chunks {
                        self.pending.extend(chunk);
                    }
                    if action.cut {
                        self.cut = true;
                    }
                    // pending may still be empty (a reordered frame being
                    // held) — loop and pull the next frame.
                }
            }
        }
    }
}

/// The hostile worker modes `GarbageStdout`/`TruncateFrame`, re-expressed
/// through the wire-fault vocabulary. Returns the exact bytes the worker
/// must write **instead of** the well-formed frame, or `None` when `mode`
/// is not a protocol fault.
///
/// Byte parity with the pre-vocabulary implementation is pinned by
/// regression tests: `TruncateFrame` ships the first half of the encoded
/// frame via [`WireFault::Tear`], and `GarbageStdout` ships the caller's
/// fixed `garbage_tag` literal (whose first four bytes are not the frame
/// magic, like every [`WireFault::Garbage`] emission).
pub(crate) fn protocol_fault_bytes(
    mode: HostileMode,
    kind: FrameKind,
    payload: &[u8],
    garbage_tag: &[u8],
) -> Option<Vec<u8>> {
    match mode {
        HostileMode::TruncateFrame => {
            let image = encode_frame(kind, payload);
            let keep = (image.len() / 2) as u32;
            let action = WireShaper::single(WireFault::Tear { keep }).shape(image, true);
            debug_assert!(action.cut, "a tear always cuts the stream");
            Some(action.chunks.concat())
        }
        HostileMode::GarbageStdout => {
            debug_assert_ne!(&garbage_tag[..4], &MAGIC, "garbage must never frame-align");
            Some(garbage_tag.to_vec())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_faults::{WireDirection, WireFaultEvent, WireFaultPlan};
    use std::io::Cursor;

    fn parse_all(bytes: &[u8]) -> (Vec<Frame>, Option<String>) {
        let mut cursor = Cursor::new(bytes.to_vec());
        let mut frames = Vec::new();
        loop {
            match read_frame(&mut cursor) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => return (frames, None),
                Err(err) => return (frames, Some(err)),
            }
        }
    }

    #[test]
    fn clean_transport_is_byte_identical_to_write_frame() {
        let mut direct = Vec::new();
        write_frame(&mut direct, FrameKind::Outcome, b"payload").unwrap();
        let mut transport = PipeTransport::new(Vec::new());
        transport.send(FrameKind::Outcome, b"payload").unwrap();
        assert_eq!(transport.inner.unwrap(), direct);
    }

    #[test]
    fn torn_transport_ships_prefix_then_reports_broken_pipe() {
        let plan = WireFaultPlan::from_events(
            1,
            vec![WireFaultEvent {
                shard: 0,
                direction: WireDirection::ToWorker,
                nth: 0,
                fault: WireFault::Tear { keep: 7 },
            }],
        );
        let shaper = Arc::new(Mutex::new(plan.shaper(0, WireDirection::ToWorker)));
        let mut transport = PipeTransport::shaped(Vec::new(), shaper);
        transport.send(FrameKind::Job, b"work").unwrap();
        let err = transport.send(FrameKind::Job, b"more").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn shaped_reader_duplicates_and_garbage_behave_as_scheduled() {
        let image = encode_frame(FrameKind::Outcome, b"result");
        let shaper = Arc::new(Mutex::new(WireShaper::single(WireFault::Duplicate)));
        let mut reader = ShapedReader::new(Cursor::new(image.clone()), shaper);
        let mut shipped = Vec::new();
        reader.read_to_end(&mut shipped).unwrap();
        let (frames, err) = parse_all(&shipped);
        assert_eq!(frames.len(), 2, "duplicate ships the frame twice");
        assert!(err.is_none());

        let shaper = Arc::new(Mutex::new(WireShaper::single(WireFault::Garbage { len: 16 })));
        let mut reader = ShapedReader::new(Cursor::new(image), shaper);
        let mut shipped = Vec::new();
        reader.read_to_end(&mut shipped).unwrap();
        let (frames, err) = parse_all(&shipped);
        assert!(frames.is_empty());
        assert!(err.unwrap().contains("bad frame magic"), "garbage must not frame-align");
    }

    #[test]
    fn shaped_reader_tear_yields_truncated_frame_then_eof() {
        let image = encode_frame(FrameKind::Outcome, b"result");
        let shaper = Arc::new(Mutex::new(WireShaper::single(WireFault::Tear { keep: 13 })));
        let mut reader = ShapedReader::new(Cursor::new(image), shaper);
        let mut shipped = Vec::new();
        reader.read_to_end(&mut shipped).unwrap();
        assert_eq!(shipped.len(), 13);
        let (frames, err) = parse_all(&shipped);
        assert!(frames.is_empty());
        assert!(err.unwrap().contains("truncated frame"));
    }

    #[test]
    fn shaped_reader_passes_malformed_streams_through_byte_exact() {
        let garbage = b"XXXXthis is definitely not a sandbox frame".to_vec();
        let shaper = Arc::new(Mutex::new(WireShaper::single(WireFault::Duplicate)));
        let mut reader = ShapedReader::new(Cursor::new(garbage.clone()), shaper);
        let mut shipped = Vec::new();
        reader.read_to_end(&mut shipped).unwrap();
        assert_eq!(shipped, garbage, "non-frames must reach the parser unaltered");
    }

    #[test]
    fn truncate_frame_facade_matches_the_historical_bytes() {
        let payload = br#"{"outcome":"ok"}"#;
        for kind in [FrameKind::Job, FrameKind::Outcome] {
            let image = encode_frame(kind, payload);
            // The pre-vocabulary implementation shipped the literal first
            // half of the encoded frame.
            let historical = image[..image.len() / 2].to_vec();
            let facade = protocol_fault_bytes(HostileMode::TruncateFrame, kind, payload, b"XXXX")
                .expect("TruncateFrame is a protocol fault");
            assert_eq!(facade, historical, "byte parity with the pre-facade fault");
        }
    }

    #[test]
    fn garbage_facade_preserves_the_historical_tag() {
        let tag = b"XXXXthis is definitely not a sandbox frame";
        let facade = protocol_fault_bytes(HostileMode::GarbageStdout, FrameKind::Outcome, b"", tag)
            .expect("GarbageStdout is a protocol fault");
        assert_eq!(facade, tag, "byte parity with the pre-facade fault");
        let (frames, err) = parse_all(&facade);
        assert!(frames.is_empty());
        assert!(err.unwrap().contains("bad frame magic"));
    }

    #[test]
    fn non_protocol_modes_have_no_fault_bytes() {
        assert!(protocol_fault_bytes(HostileMode::Spin, FrameKind::Outcome, b"", b"XXXX").is_none());
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.contains("exceeds"), "oversized prefix must be refused: {err}");
    }

    #[test]
    fn lying_in_bounds_prefix_cannot_drive_a_large_allocation() {
        // Header claims the maximum in-bounds payload but delivers only a
        // handful of bytes: the reader must fail with a truncation error
        // having buffered no more than one chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes());
        bytes.extend_from_slice(b"only a few bytes");
        let err = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.contains("truncated frame payload (16 of 67108864 bytes)"), "{err}");
    }
}
