//! Hard isolation: supervised worker *processes* for work the
//! cooperative defenses cannot contain.
//!
//! Everything the supervisor built so far — `catch_unwind`,
//! [`CancelToken`] polling, the watchdog budget, the circuit breaker —
//! assumes the work eventually yields control back. A build stage that
//! hot-loops without polling, a `std::process::abort()`, or a runaway
//! allocation defeats all of it and takes the whole service down. The
//! [`SandboxedExecutor`] moves each such work item into a disposable
//! child process and enforces from the *outside* what cooperation cannot:
//!
//! * **Heartbeats** — the child emits liveness frames from a dedicated
//!   thread; a silent child is killed → [`PipelineError::WorkerHung`].
//! * **Wall-clock kill** — independent of the engine's
//!   `DEADLINE_POLL_EVENTS` cadence; a child that hot-loops past the
//!   limit is killed → [`PipelineError::WorkerHung`].
//! * **RSS budget** — sampled from `/proc/<pid>/status`; a child growing
//!   past it is killed → [`PipelineError::WorkerOverMemory`].
//! * **Exit taxonomy** — death by signal or nonzero exit →
//!   [`PipelineError::WorkerCrashed`]; garbage, truncated, or
//!   wrong-version frames → [`PipelineError::WorkerProtocol`].
//!
//! Work crosses the process boundary as a [`WorkSpec`] — a serializable
//! description, not a `Box<dyn Operator>` — inside a length-prefixed,
//! digest-checked, versioned frame ([`WIRE_VERSION`]; journal records
//! share the same versioning convention). The child rebuilds the
//! operator, runs the ordinary in-process pipeline, and ships the
//! [`PipelineResult`] back the same way. The vendored JSON codec
//! round-trips `f64` exactly, so a sandboxed result is **bit-identical**
//! to the in-process result for the same work.
//!
//! Workers are *warm*: a child survives its job and is reused, up to a
//! bounded recycle count; any kill or protocol violation discards it.
//! All failures map into the existing [`RunPolicy`] retry / fallback /
//! breaker machinery via [`AnalysisPipeline::supervise_loop`] — with the
//! twist that hostile work is never eligible for the analytical fallback
//! (its `build` must not run in the parent).
//!
//! The child side is the *same binary* re-executed: [`worker_main`] runs
//! the frame loop, and [`run_worker_if_requested`] turns any `main` into
//! a worker when the [`WORKER_ENV`] marker is set.

use crate::supervisor::RunPolicy;
use crate::transport::{
    protocol_fault_bytes, read_frame, FrameTransport, PipeTransport, ShapedReader,
};
pub(crate) use crate::transport::{write_frame, Frame, FrameKind};
use crate::{lock, AnalysisPipeline, PipelineError, PipelineResult};
use ascend_faults::{FaultyTransport, HostileMode, HostileOp};
use ascend_ops::{OpSpec, Operator};
use ascend_roofline::Thresholds;
use ascend_sim::{CancelToken, SimBudget, SimError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment marker that turns a re-exec of the current binary into a
/// sandbox worker (see [`run_worker_if_requested`]).
pub const WORKER_ENV: &str = "ASCEND_SANDBOX_WORKER";

// The ASBX frame codec lives in `crate::transport` (shared verbatim with
// the cluster tier); this module re-exports what its peers historically
// imported from here.

/// A serializable work item: what crosses the process boundary in place
/// of a `Box<dyn Operator>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkSpec {
    /// An ordinary operator, described by its [`OpSpec`].
    Op {
        /// The operator description.
        spec: OpSpec,
    },
    /// A hostile item from the fault library — spin, abort, allocation
    /// bomb, muted heartbeats, or a protocol fault. Hostile work is
    /// **never** eligible for the analytical fallback: its `build` must
    /// not run in the supervising process.
    Hostile {
        /// How the item misbehaves.
        mode: HostileMode,
    },
}

impl WorkSpec {
    /// Wraps an operator description.
    #[must_use]
    pub fn op(spec: OpSpec) -> WorkSpec {
        WorkSpec::Op { spec }
    }

    /// Wraps a hostile mode.
    #[must_use]
    pub fn hostile(mode: HostileMode) -> WorkSpec {
        WorkSpec::Hostile { mode }
    }

    /// Rebuilds the described operator. Safe in any process — hostility
    /// lives in `build`, which this does not call.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn Operator> {
        match self {
            WorkSpec::Op { spec } => spec.instantiate(),
            WorkSpec::Hostile { mode } => Box::new(HostileOp::new(*mode)),
        }
    }

    /// Whether the parent may degrade this work to the analytical
    /// estimate (which calls `build` in-process).
    fn fallback_eligible(&self) -> bool {
        matches!(self, WorkSpec::Op { .. })
    }

    /// The protocol fault the worker harness must apply to the result
    /// frame, if any (also honored by cluster shard workers).
    pub(crate) fn protocol_fault(&self) -> Option<HostileMode> {
        match self {
            WorkSpec::Hostile {
                mode: mode @ (HostileMode::GarbageStdout | HostileMode::TruncateFrame),
            } => Some(*mode),
            _ => None,
        }
    }
}

impl From<OpSpec> for WorkSpec {
    fn from(spec: OpSpec) -> WorkSpec {
        WorkSpec::Op { spec }
    }
}

/// Watchdog-budget image inside a job frame (`SimBudget` itself is not
/// serialized to keep the sim crate serde-free). Shared with the
/// cluster tier's shard-job frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct WireBudget {
    pub(crate) max_events: u64,
    pub(crate) max_cycles: f64,
}

/// Parent → child: everything one attempt needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JobFrame {
    chip: ascend_arch::ChipSpec,
    thresholds: Thresholds,
    work: WorkSpec,
    deadline_ms: Option<u64>,
    budget: Option<WireBudget>,
    heartbeat_ms: u64,
}

/// A child-side failure, rendered for the wire: concrete error enums of
/// the lower layers are not serializable, so the message plus the
/// transience class crosses the boundary (see
/// [`PipelineError::WorkerReported`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct WireFailure {
    pub(crate) message: String,
    pub(crate) transient: bool,
}

/// Child → parent: the outcome of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WireOutcome {
    /// The pipeline ran to completion in the child.
    Ok {
        /// The result, bit-identical to an in-process run (boxed: it
        /// dwarfs the failure variant).
        result: Box<PipelineResult>,
    },
    /// The child's pipeline run failed; the error crosses rendered.
    Err {
        /// The rendered failure.
        failure: WireFailure,
    },
}

/// Tuning for the [`SandboxedExecutor`].
#[derive(Debug, Clone)]
pub struct SandboxConfig {
    /// Worker executable. `None` re-executes the current binary with the
    /// [`WORKER_ENV`] marker set — which only works when that binary's
    /// `main` calls [`run_worker_if_requested`]; tests point this at a
    /// dedicated worker binary instead.
    pub worker_cmd: Option<PathBuf>,
    /// Interval between the child's heartbeat frames.
    pub heartbeat_interval: Duration,
    /// Silence longer than this kills the child (missed-heartbeat →
    /// [`PipelineError::WorkerHung`]).
    pub heartbeat_timeout: Duration,
    /// Hard wall-clock limit per job, enforced by the parent regardless
    /// of whether the child polls anything ([`PipelineError::WorkerHung`]).
    pub wall_clock_limit: Duration,
    /// Resident-set budget for the child, sampled from
    /// `/proc/<pid>/status` ([`PipelineError::WorkerOverMemory`]).
    /// `None` disables the sampler.
    pub rss_limit_bytes: Option<u64>,
    /// Cadence of the parent's monitor loop (heartbeat, RSS, wall-clock
    /// and preemption checks).
    pub poll_interval: Duration,
    /// Jobs a warm worker may serve before it is retired and respawned.
    pub recycle_after: u64,
    /// Seeded wire faults shaped into this executor's worker pipe (the
    /// pool is treated as shard 0 of the plan). Shapers persist across
    /// worker respawns so each scheduled event fires at most once.
    pub wire_faults: Option<ascend_faults::WireFaultPlan>,
}

impl Default for SandboxConfig {
    fn default() -> Self {
        SandboxConfig {
            worker_cmd: None,
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(400),
            wall_clock_limit: Duration::from_secs(5),
            rss_limit_bytes: None,
            poll_interval: Duration::from_millis(5),
            recycle_after: 32,
            wire_faults: None,
        }
    }
}

/// Counters of everything the executor did and killed. Snapshot type —
/// cheap to copy into a `HealthSnapshot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SandboxCounters {
    /// Jobs that returned a result frame with a successful outcome.
    pub jobs_ok: u64,
    /// Jobs whose child ran to completion and reported a typed failure.
    pub reported_failures: u64,
    /// Worker processes spawned.
    pub spawned: u64,
    /// Warm workers retired after their recycle bound.
    pub recycled: u64,
    /// Children killed for silence or wall-clock overrun.
    pub hung: u64,
    /// Children killed for exceeding the RSS budget.
    pub over_memory: u64,
    /// Children that died by signal or nonzero exit.
    pub crashed: u64,
    /// Frame-protocol violations (garbage, truncation, version or digest
    /// mismatch, result/fingerprint mismatch).
    pub protocol: u64,
    /// Children killed because the caller's [`CancelToken`] fired
    /// (drain preemption — not a health signal).
    pub preempted: u64,
}

impl SandboxCounters {
    /// Children the parent had to kill or that died on their own —
    /// everything except clean outcomes.
    #[must_use]
    pub fn kills(&self) -> u64 {
        self.hung + self.over_memory + self.crashed + self.protocol + self.preempted
    }
}

#[derive(Debug, Default)]
struct CounterCells {
    jobs_ok: AtomicU64,
    reported_failures: AtomicU64,
    spawned: AtomicU64,
    recycled: AtomicU64,
    hung: AtomicU64,
    over_memory: AtomicU64,
    crashed: AtomicU64,
    protocol: AtomicU64,
    preempted: AtomicU64,
}

impl CounterCells {
    fn snapshot(&self) -> SandboxCounters {
        SandboxCounters {
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            reported_failures: self.reported_failures.load(Ordering::Relaxed),
            spawned: self.spawned.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
            over_memory: self.over_memory.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
            protocol: self.protocol.load(Ordering::Relaxed),
            preempted: self.preempted.load(Ordering::Relaxed),
        }
    }
}

/// What the reader thread saw on the child's stdout.
#[derive(Debug)]
pub(crate) enum ReadEvent {
    Frame(Frame),
    Malformed(String),
    Eof,
}

/// Spawns `program` as a framed worker child with `env_marker` set:
/// stdin piped for job frames (behind a [`PipeTransport`]), stdout piped
/// into a reader thread that forwards [`ReadEvent`]s, stderr inherited.
/// The shared bring-up for both the sandbox pool and the cluster tier's
/// shard processes. When `faulty` is given, both directions of the pipe
/// are shaped by its wire-fault shapers.
pub(crate) fn spawn_framed_child(
    program: &std::path::Path,
    env_marker: &str,
    faulty: Option<&FaultyTransport>,
) -> Result<(Child, PipeTransport<ChildStdin>, Receiver<ReadEvent>), PipelineError> {
    let mut child = Command::new(program)
        .env(env_marker, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|err| PipelineError::WorkerProtocol {
            detail: format!("failed to spawn worker {}: {err}", program.display()),
        })?;
    let raw_stdin = child.stdin.take().ok_or_else(|| PipelineError::WorkerProtocol {
        detail: "spawned worker has no stdin handle".to_string(),
    })?;
    let stdin = match faulty {
        Some(faulty) => PipeTransport::shaped(raw_stdin, faulty.to_worker()),
        None => PipeTransport::new(raw_stdin),
    };
    let stdout = child.stdout.take().ok_or_else(|| PipelineError::WorkerProtocol {
        detail: "spawned worker has no stdout handle".to_string(),
    })?;
    let mut stdout: Box<dyn Read + Send> = match faulty {
        Some(faulty) => Box::new(ShapedReader::new(stdout, faulty.from_worker())),
        None => Box::new(stdout),
    };
    let (sender, events) = std::sync::mpsc::channel();
    std::thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(Some(frame)) => {
                if sender.send(ReadEvent::Frame(frame)).is_err() {
                    return; // monitor gone; worker is being dropped
                }
            }
            Ok(None) => {
                let _ = sender.send(ReadEvent::Eof);
                return;
            }
            Err(detail) => {
                let _ = sender.send(ReadEvent::Malformed(detail));
                return;
            }
        }
    });
    Ok((child, stdin, events))
}

/// One live worker process plus its reader-thread channel.
#[derive(Debug)]
struct Worker {
    child: Child,
    stdin: PipeTransport<ChildStdin>,
    events: Receiver<ReadEvent>,
    jobs_done: u64,
}

impl Worker {
    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills (idempotently) and reaps the child, returning its exit
    /// status. A child that already exited keeps its original status —
    /// SIGKILL on a zombie is a no-op.
    fn kill_and_reap(&mut self) -> Option<ExitStatus> {
        let _ = self.child.kill();
        self.child.wait().ok()
    }

    /// Reaps a child believed to have exited on its own, giving it
    /// `grace` to finish dying before falling back to a kill (so a
    /// voluntary exit keeps its real status instead of SIGKILL).
    fn reap_with_grace(&mut self, grace: Duration) -> Option<ExitStatus> {
        let deadline = Instant::now() + grace;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Some(status),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => return self.kill_and_reap(),
            }
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Resident set of `pid` in bytes, from `/proc/<pid>/status` (`VmRSS`).
pub(crate) fn rss_bytes(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|line| line.starts_with("VmRSS:"))?;
    let kb: u64 =
        line.trim_start_matches("VmRSS:").trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Maps a dead child's exit status into the error taxonomy: a signal or
/// nonzero exit is a crash; a clean exit without having delivered a
/// result frame is a protocol violation (the child broke its promise,
/// not its process).
pub(crate) fn classify_exit(status: Option<ExitStatus>, detail: &str) -> PipelineError {
    let Some(status) = status else {
        return PipelineError::WorkerProtocol {
            detail: format!("{detail}; exit status unavailable"),
        };
    };
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return PipelineError::WorkerCrashed { code: None, signal: Some(signal) };
        }
    }
    match status.code() {
        Some(0) | None => PipelineError::WorkerProtocol { detail: detail.to_string() },
        Some(code) => PipelineError::WorkerCrashed { code: Some(code), signal: None },
    }
}

/// Executes [`WorkSpec`]s in supervised, disposable child processes.
///
/// Cloning is cheap and shares the worker pool, the counters, and the
/// underlying pipeline (whose result cache sandboxed successes feed, so
/// the in-process and sandboxed tiers answer each other's cache hits
/// with bit-identical results).
#[derive(Debug, Clone)]
pub struct SandboxedExecutor {
    pipeline: AnalysisPipeline,
    config: Arc<SandboxConfig>,
    pool: Arc<Mutex<Vec<Worker>>>,
    counters: Arc<CounterCells>,
    /// Built once from `config.wire_faults` and shared across every
    /// worker this executor spawns, so each scheduled wire fault fires at
    /// most once no matter how many workers the pool cycles through.
    faulty: Option<FaultyTransport>,
}

impl SandboxedExecutor {
    /// An executor running work against `pipeline`'s chip and thresholds
    /// under `config`.
    #[must_use]
    pub fn new(pipeline: AnalysisPipeline, config: SandboxConfig) -> Self {
        let faulty = config.wire_faults.as_ref().map(|plan| FaultyTransport::new(plan, 0));
        SandboxedExecutor {
            pipeline,
            config: Arc::new(config),
            pool: Arc::new(Mutex::new(Vec::new())),
            counters: Arc::new(CounterCells::default()),
            faulty,
        }
    }

    /// The pipeline whose configuration (and cache) this executor uses.
    #[must_use]
    pub fn pipeline(&self) -> &AnalysisPipeline {
        &self.pipeline
    }

    /// Snapshot of the executor's counters.
    #[must_use]
    pub fn counters(&self) -> SandboxCounters {
        self.counters.snapshot()
    }

    /// Runs `work` in a sandboxed child under the full supervision
    /// machinery: the result cache is consulted first, kills and crashes
    /// are retried / fed to the breaker / degraded per `policy` exactly
    /// like in-process transient failures, and a signalled `cancel`
    /// token kills the child and reports preemption without touching the
    /// breaker or the fallback.
    ///
    /// # Errors
    ///
    /// The `Worker*` variants of [`PipelineError`] for containment
    /// failures, plus everything the in-process supervised path reports.
    pub fn run_supervised(
        &self,
        work: &WorkSpec,
        policy: &RunPolicy,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        let probe = work.instantiate();
        let key = self.pipeline.cache_key(probe.as_ref());
        if let Some(found) = lock(&self.pipeline.shared.cache).map.get(&key) {
            let result = Arc::clone(found);
            lock(&self.pipeline.shared.stats).hits += 1;
            return Ok(result);
        }
        let fallback_op: Option<&dyn Operator> =
            if work.fallback_eligible() { Some(probe.as_ref()) } else { None };
        self.pipeline.supervise_loop(key, policy, cancel, fallback_op, &mut || {
            self.execute_raw(work, key, policy, cancel)
        })
    }

    /// One sandboxed attempt: checkout (or spawn) a warm worker, ship
    /// the job frame, monitor until a result frame or a kill condition.
    fn execute_raw(
        &self,
        work: &WorkSpec,
        key: u64,
        policy: &RunPolicy,
        cancel: Option<&CancelToken>,
    ) -> Result<PipelineResult, PipelineError> {
        let mut worker = self.checkout()?;
        let job = JobFrame {
            chip: self.pipeline.chip().clone(),
            thresholds: *self.pipeline.thresholds(),
            work: *work,
            deadline_ms: policy.deadline.map(|d| d.as_millis() as u64),
            budget: policy
                .budget
                .map(|b| WireBudget { max_events: b.max_events, max_cycles: b.max_cycles }),
            heartbeat_ms: self.config.heartbeat_interval.as_millis().max(1) as u64,
        };
        let payload = serde_json::to_string(&job).map_err(|err| PipelineError::WorkerProtocol {
            detail: format!("job frame serialization failed: {err}"),
        })?;
        if let Err(err) = worker.stdin.send(FrameKind::Job, payload.as_bytes()) {
            // The warm worker died between jobs; its exit status says how.
            let status = worker.kill_and_reap();
            return Err(
                self.record_kill(classify_exit(status, &format!("job frame write failed: {err}")))
            );
        }
        self.monitor(worker, key, cancel).map_err(|err| self.record_kill(err))
    }

    /// Bumps the counter matching a sandboxed failure. The monitor
    /// produces `Runtime(Cancelled)` only for caller preemption, so that
    /// variant maps to the preemption counter rather than a health one.
    fn record_kill(&self, err: PipelineError) -> PipelineError {
        let cell = match &err {
            PipelineError::Runtime(SimError::Cancelled { .. }) => &self.counters.preempted,
            PipelineError::WorkerHung { .. } => &self.counters.hung,
            PipelineError::WorkerOverMemory { .. } => &self.counters.over_memory,
            PipelineError::WorkerCrashed { .. } => &self.counters.crashed,
            PipelineError::WorkerProtocol { .. } => &self.counters.protocol,
            PipelineError::WorkerReported { .. } => &self.counters.reported_failures,
            _ => return err,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        err
    }

    /// The parent-side monitor loop for one in-flight job.
    fn monitor(
        &self,
        mut worker: Worker,
        key: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<PipelineResult, PipelineError> {
        let started = Instant::now();
        let wall_deadline = started + self.config.wall_clock_limit;
        let mut last_beat = started;
        let mut heartbeats = 0u64;
        loop {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                // Forceful preemption: kill the child and report the same
                // error shape the cooperative in-process path produces, so
                // drain logic upstream cannot tell the tiers apart (and
                // the breaker/fallback exemption for preemption applies).
                worker.kill_and_reap();
                return Err(PipelineError::Runtime(SimError::preempted_at("sandboxed worker")));
            }
            let now = Instant::now();
            if now >= wall_deadline {
                worker.kill_and_reap();
                return Err(PipelineError::WorkerHung { waited: now - started, heartbeats });
            }
            if now.duration_since(last_beat) >= self.config.heartbeat_timeout {
                worker.kill_and_reap();
                return Err(PipelineError::WorkerHung { waited: now - started, heartbeats });
            }
            if let Some(limit) = self.config.rss_limit_bytes {
                if let Some(rss) = rss_bytes(worker.pid()) {
                    if rss > limit {
                        worker.kill_and_reap();
                        return Err(PipelineError::WorkerOverMemory {
                            rss_bytes: rss,
                            budget_bytes: limit,
                        });
                    }
                }
            }
            match worker.events.recv_timeout(self.config.poll_interval) {
                Ok(ReadEvent::Frame(frame)) => match frame.kind {
                    FrameKind::Heartbeat => {
                        heartbeats += 1;
                        last_beat = Instant::now();
                    }
                    FrameKind::Outcome => {
                        return self.accept_outcome(worker, &frame.payload, key);
                    }
                    FrameKind::Job => {
                        worker.kill_and_reap();
                        return Err(PipelineError::WorkerProtocol {
                            detail: "worker sent a job frame to its parent".to_string(),
                        });
                    }
                },
                Ok(ReadEvent::Malformed(detail)) => {
                    // Garbage or a torn frame. Give a voluntarily-exiting
                    // child a moment so its own exit status survives.
                    let status = worker.reap_with_grace(Duration::from_millis(250));
                    let err = classify_exit(status, &detail);
                    // A malformed *stream* is a protocol violation even
                    // if the child then exited 0; only an actual signal
                    // or nonzero exit outranks it.
                    return Err(match err {
                        PipelineError::WorkerCrashed { .. } => err,
                        _ => PipelineError::WorkerProtocol { detail },
                    });
                }
                Ok(ReadEvent::Eof) => {
                    let status = worker.reap_with_grace(Duration::from_millis(250));
                    return Err(classify_exit(status, "stream ended before a result frame"));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    let status = worker.kill_and_reap();
                    return Err(classify_exit(status, "reader thread lost the stream"));
                }
            }
        }
    }

    /// Parses and validates a result frame, recycling or pooling the
    /// surviving worker.
    fn accept_outcome(
        &self,
        mut worker: Worker,
        payload: &[u8],
        key: u64,
    ) -> Result<PipelineResult, PipelineError> {
        let outcome: Option<WireOutcome> =
            std::str::from_utf8(payload).ok().and_then(|text| serde_json::from_str(text).ok());
        let Some(outcome) = outcome else {
            worker.kill_and_reap();
            return Err(PipelineError::WorkerProtocol {
                detail: "result frame payload did not parse as an outcome".to_string(),
            });
        };
        worker.jobs_done += 1;
        if worker.jobs_done >= self.config.recycle_after {
            self.counters.recycled.fetch_add(1, Ordering::Relaxed);
            drop(worker); // Drop kills and reaps
        } else {
            lock(&self.pool).push(worker);
        }
        match outcome {
            WireOutcome::Ok { result } => {
                if result.fingerprint != key {
                    return Err(PipelineError::WorkerProtocol {
                        detail: format!(
                            "result fingerprint {:#018x} does not match the job's {key:#018x}",
                            result.fingerprint
                        ),
                    });
                }
                self.counters.jobs_ok.fetch_add(1, Ordering::Relaxed);
                Ok(*result)
            }
            WireOutcome::Err { failure } => Err(PipelineError::WorkerReported {
                message: failure.message,
                transient: failure.transient,
            }),
        }
    }

    /// Pops a warm worker or spawns a fresh one.
    fn checkout(&self) -> Result<Worker, PipelineError> {
        if let Some(worker) = lock(&self.pool).pop() {
            return Ok(worker);
        }
        self.spawn_worker()
    }

    fn spawn_worker(&self) -> Result<Worker, PipelineError> {
        let program = match &self.config.worker_cmd {
            Some(path) => path.clone(),
            None => std::env::current_exe().map_err(|err| PipelineError::WorkerProtocol {
                detail: format!("cannot locate the current executable: {err}"),
            })?,
        };
        let (child, stdin, events) =
            spawn_framed_child(&program, WORKER_ENV, self.faulty.as_ref())?;
        self.counters.spawned.fetch_add(1, Ordering::Relaxed);
        Ok(Worker { child, stdin, events, jobs_done: 0 })
    }

    /// Kills every pooled warm worker (drain hygiene; in-flight workers
    /// are owned by their monitor loops and die through preemption).
    pub fn shutdown(&self) {
        lock(&self.pool).clear(); // Worker::drop kills and reaps
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// If the [`WORKER_ENV`] marker is set, runs the sandbox worker loop; if
/// the cluster tier's [`CLUSTER_SHARD_ENV`](crate::CLUSTER_SHARD_ENV)
/// marker is set, runs the shard worker loop instead. Either way it
/// never returns. Call this at the top of `main` in any binary that
/// should be usable as a re-exec worker host; it is a no-op otherwise.
pub fn run_worker_if_requested() {
    if std::env::var_os(WORKER_ENV).is_some_and(|value| value == "1") {
        worker_main();
    }
    if std::env::var_os(crate::cluster::CLUSTER_SHARD_ENV).is_some_and(|value| value == "1") {
        crate::cluster::shard_worker_main();
    }
}

/// The sandbox worker loop: read job frames from stdin, run them through
/// an ordinary in-process pipeline, write result frames (and heartbeats,
/// from a dedicated thread) to stdout. Exits 0 on clean EOF, 3 on a
/// malformed input stream. Never returns.
pub fn worker_main() -> ! {
    let stdout: Arc<Mutex<std::io::Stdout>> = Arc::new(Mutex::new(std::io::stdout()));
    let mut stdin = std::io::stdin().lock();
    loop {
        let frame = match read_frame(&mut stdin) {
            Ok(Some(frame)) => frame,
            Ok(None) => std::process::exit(0),
            Err(detail) => {
                eprintln!("[sandbox worker] malformed input: {detail}");
                std::process::exit(3);
            }
        };
        if frame.kind != FrameKind::Job {
            eprintln!("[sandbox worker] unexpected frame kind (want job)");
            std::process::exit(3);
        }
        let job: JobFrame = match std::str::from_utf8(&frame.payload)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
        {
            Some(job) => job,
            None => {
                eprintln!("[sandbox worker] job frame did not parse");
                std::process::exit(3);
            }
        };
        ensure_heartbeats(&stdout, Duration::from_millis(job.heartbeat_ms));
        let fault = job.work.protocol_fault();
        let outcome = run_job(job);
        let payload = match serde_json::to_string(&outcome) {
            Ok(payload) => payload,
            Err(err) => {
                eprintln!("[sandbox worker] outcome serialization failed: {err}");
                std::process::exit(3);
            }
        };
        let mut out = lock(&stdout);
        match fault.and_then(|mode| {
            // Protocol faults route through the transport-fault vocabulary
            // (byte parity with the historical bytes is pinned in
            // `transport::tests`): garbage is wrong magic from the first
            // byte; truncation is a Tear shipping the frame's first half —
            // the shape a crash between write and flush leaves.
            protocol_fault_bytes(
                mode,
                FrameKind::Outcome,
                payload.as_bytes(),
                b"XXXXthis is definitely not a sandbox frame",
            )
        }) {
            Some(bytes) => {
                let _ = out.write_all(&bytes);
                let _ = out.flush();
                std::process::exit(0);
            }
            None => {
                if write_frame(&mut *out, FrameKind::Outcome, payload.as_bytes()).is_err() {
                    // Parent is gone; nothing left to serve.
                    std::process::exit(0);
                }
            }
        }
    }
}

/// Runs one job through an ordinary in-process pipeline.
fn run_job(job: JobFrame) -> WireOutcome {
    let pipeline = match AnalysisPipeline::try_new(job.chip) {
        Ok(pipeline) => pipeline.with_thresholds(job.thresholds),
        Err(err) => {
            return WireOutcome::Err {
                failure: WireFailure {
                    message: PipelineError::Chip(err).to_string(),
                    transient: false,
                },
            }
        }
    };
    let mut policy = RunPolicy::default();
    if let Some(ms) = job.deadline_ms {
        policy = policy.with_deadline(Duration::from_millis(ms));
    }
    if let Some(budget) = job.budget {
        policy = policy.with_budget(SimBudget {
            max_events: budget.max_events,
            max_cycles: budget.max_cycles,
        });
    }
    let op = job.work.instantiate();
    match pipeline.run_supervised(op.as_ref(), &policy) {
        Ok(result) => WireOutcome::Ok { result: Box::new((*result).clone()) },
        Err(err) => WireOutcome::Err {
            failure: WireFailure { message: err.to_string(), transient: err.is_transient() },
        },
    }
}

/// Spawns the heartbeat thread once per worker process: every `interval`
/// it writes a heartbeat frame — unless the fault library's mute flag is
/// set, which is exactly how [`HostileMode::Mute`] simulates a worker
/// that is alive but looks dead. (Shared with cluster shard workers —
/// a process is one kind of worker or the other, never both.)
pub(crate) fn ensure_heartbeats(stdout: &Arc<Mutex<std::io::Stdout>>, interval: Duration) {
    static STARTED: OnceLock<()> = OnceLock::new();
    let stdout = Arc::clone(stdout);
    STARTED.get_or_init(move || {
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if ascend_faults::heartbeats_muted() {
                continue;
            }
            let mut out = lock(&stdout);
            if write_frame(&mut *out, FrameKind::Heartbeat, &[]).is_err() {
                return; // parent is gone
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{encode_frame, WIRE_VERSION};
    use ascend_ops::OpSpec;

    #[test]
    fn frames_round_trip() {
        let payload = b"{\"hello\":1}".to_vec();
        let mut buffer = Vec::new();
        write_frame(&mut buffer, FrameKind::Outcome, &payload).unwrap();
        write_frame(&mut buffer, FrameKind::Heartbeat, &[]).unwrap();
        let mut reader = buffer.as_slice();
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(first.kind, FrameKind::Outcome);
        assert_eq!(first.payload, payload);
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(second.kind, FrameKind::Heartbeat);
        assert!(second.payload.is_empty());
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF at a frame boundary");
    }

    #[test]
    fn corrupted_frames_are_rejected_with_cause() {
        let mut frame = encode_frame(FrameKind::Job, b"payload");
        frame[15] ^= 0xFF; // flip a payload byte: digest mismatch
        let err = read_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");

        let mut wrong_version = encode_frame(FrameKind::Job, b"payload");
        wrong_version[4] = 0xFF;
        let err = read_frame(&mut wrong_version.as_slice()).unwrap_err();
        assert!(err.contains("unsupported frame version"), "{err}");
        assert!(err.contains(&WIRE_VERSION.to_string()), "{err}");

        let garbage = b"XXXXnot a frame".to_vec();
        let err = read_frame(&mut garbage.as_slice()).unwrap_err();
        assert!(err.contains("bad frame magic"), "{err}");

        let full = encode_frame(FrameKind::Outcome, b"some payload bytes");
        let truncated = &full[..full.len() / 2];
        let err = read_frame(&mut &truncated[..]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let mut bad_kind = encode_frame(FrameKind::Job, b"");
        bad_kind[6] = 99;
        let err = read_frame(&mut bad_kind.as_slice()).unwrap_err();
        assert!(err.contains("unknown frame kind"), "{err}");
    }

    #[test]
    fn work_specs_serialize_and_instantiate() {
        let specs = [
            WorkSpec::op(OpSpec::add_relu(1 << 12)),
            WorkSpec::hostile(HostileMode::Spin),
            WorkSpec::hostile(HostileMode::Grow { megabytes: 48 }),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
        let op = WorkSpec::op(OpSpec::add_relu(1 << 12)).instantiate();
        assert_eq!(op.fingerprint(), OpSpec::add_relu(1 << 12).instantiate().fingerprint());
        assert!(WorkSpec::op(OpSpec::add_relu(4)).fallback_eligible());
        assert!(!WorkSpec::hostile(HostileMode::Abort).fallback_eligible());
        assert_eq!(
            WorkSpec::hostile(HostileMode::GarbageStdout).protocol_fault(),
            Some(HostileMode::GarbageStdout)
        );
        assert_eq!(WorkSpec::hostile(HostileMode::Spin).protocol_fault(), None);
    }

    #[test]
    fn job_frames_round_trip() {
        let job = JobFrame {
            chip: ascend_arch::ChipSpec::inference(),
            thresholds: Thresholds::default(),
            work: WorkSpec::op(OpSpec::matmul(16, 16, 16)),
            deadline_ms: Some(250),
            budget: Some(WireBudget { max_events: 10_000, max_cycles: 1e9 }),
            heartbeat_ms: 20,
        };
        let json = serde_json::to_string(&job).unwrap();
        let back: JobFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }

    #[test]
    fn exit_classification_covers_the_taxonomy() {
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            let signalled = ExitStatus::from_raw(6); // killed by SIGABRT
            match classify_exit(Some(signalled), "eof") {
                PipelineError::WorkerCrashed { signal: Some(6), code: None } => {}
                other => panic!("expected signal crash, got {other:?}"),
            }
            let nonzero = ExitStatus::from_raw(3 << 8); // exited 3
            match classify_exit(Some(nonzero), "eof") {
                PipelineError::WorkerCrashed { code: Some(3), signal: None } => {}
                other => panic!("expected nonzero crash, got {other:?}"),
            }
            let clean = ExitStatus::from_raw(0);
            match classify_exit(Some(clean), "stream ended early") {
                PipelineError::WorkerProtocol { detail } => {
                    assert!(detail.contains("stream ended early"));
                }
                other => panic!("expected protocol violation, got {other:?}"),
            }
        }
        match classify_exit(None, "eof") {
            PipelineError::WorkerProtocol { .. } => {}
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn own_rss_is_readable() {
        let rss = rss_bytes(std::process::id()).expect("VmRSS of the current process");
        assert!(rss > 0, "a running process has resident pages");
    }
}
