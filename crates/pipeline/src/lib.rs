#![warn(missing_docs)]

//! The analysis pipeline: one abstraction owning the chip spec, the
//! classification thresholds, and the stage sequence every caller of the
//! workspace runs — **build → simulate → profile → analyze**.
//!
//! Before this crate, each consumer (`ascend_bench::run_op`, the model
//! runner, the optimizer loop, the figure binaries) re-implemented the
//! same four stages. [`AnalysisPipeline`] centralizes them and adds two
//! things none of the ad-hoc copies had:
//!
//! * **A content-addressed result cache.** Results are keyed by a stable
//!   fingerprint of the operator descriptor (shape + flags), the chip
//!   spec, and the thresholds. The optimizer re-measures the same
//!   operator/flag combinations constantly, and model streams repeat
//!   operators across invocations — those become cache hits returning the
//!   bit-identical [`PipelineResult`]. Hit/miss/eviction counters are
//!   exposed via [`CacheStats`].
//!
//! * **A batch API.** [`AnalysisPipeline::run_batch`] fans independent
//!   invocations across scoped worker threads (`std::thread::scope`, no
//!   external dependencies) and returns results in input order,
//!   regardless of worker count. The simulator is deterministic, so the
//!   parallel path is numerically identical to the serial one.
//!
//! Cloning a pipeline is cheap and **shares** the cache and the
//! instrumentation counters — the model runner and the optimizer can each
//! hold a clone and still reuse each other's results. Configuration
//! (thresholds, cache capacity) is per-clone; changing thresholds changes
//! the cache key context, so stale entries can never be returned.
//!
//! # Examples
//!
//! ```
//! use ascend_arch::ChipSpec;
//! use ascend_ops::AddRelu;
//! use ascend_pipeline::AnalysisPipeline;
//!
//! let pipeline = AnalysisPipeline::new(ChipSpec::training());
//! let first = pipeline.run(&AddRelu::new(1 << 16))?;
//! let again = pipeline.run(&AddRelu::new(1 << 16))?; // cache hit
//! assert_eq!(first.analysis, again.analysis);
//! assert_eq!(pipeline.cache_stats().hits, 1);
//! # Ok::<(), ascend_sim::SimError>(())
//! ```

mod analytic;
mod audit;
mod cluster;
pub mod digest;
pub mod divergence;
mod error;
pub mod invariants;
mod journal;
mod sandbox;
mod service;
mod stats;
mod store;
mod supervisor;
pub mod transport;

pub use audit::{AuditPolicy, AuditStats};
pub use cluster::{
    shard_worker_main, ClusterConfig, ClusterCounters, ClusterDrainReport, ClusterHealth,
    ClusterService, HashRing, ShardCounters, ShardHealth, CLUSTER_SHARD_ENV, DEFAULT_VIRTUAL_NODES,
};
pub use divergence::DivergenceReport;
pub use error::PipelineError;
pub use invariants::{InvariantCheck, InvariantReport};
pub use journal::{
    result_digest, BatchJournal, JournalError, JournalRecord, JournalRecovery, JOURNAL_VERSION,
};
pub use sandbox::{
    run_worker_if_requested, worker_main, SandboxConfig, SandboxCounters, SandboxedExecutor,
    WorkSpec, WORKER_ENV,
};
pub use service::{
    AnalysisService, DrainReport, HealthSnapshot, Isolation, Priority, Request, ServiceConfig,
    ServiceCounters, Ticket,
};
pub use stats::{LatencyReservoir, LatencySummary, DEFAULT_RESERVOIR_CAPACITY};
pub use store::{
    FsyncPolicy, ResultStore, StoreConfig, StoreError, StoreStats, StoreVerifyReport,
    MAX_RECORD_BYTES, STORE_MAGIC, STORE_VERSION,
};
pub use supervisor::{Fidelity, RunPolicy, SupervisorStats};
pub use transport::{
    encode_frame, read_frame, write_frame, Frame, FrameKind, FrameTransport, PipeTransport,
    MAX_FRAME_LEN, WIRE_VERSION,
};

use ascend_arch::{ArchError, ChipSpec};
use ascend_faults::BuggyEngine;
use ascend_isa::{Kernel, KernelStats};
use ascend_ops::Operator;
use ascend_profile::Profile;
use ascend_roofline::{analyze, RooflineAnalysis, Thresholds};
use ascend_sim::reference::ReferenceSimulator;
use ascend_sim::{CancelToken, MetricsSink, SimError, Simulator, Trace, TraceCollector};
use audit::{AuditJob, Auditor};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Locks `mutex`, tolerating poison: a panic in one batch item must not
/// wedge the shared cache for every later item. The guarded structures
/// (cache map, counters) are valid at every await-free point, so the
/// poisoned payload is safe to adopt.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default bound on cached results before FIFO eviction kicks in.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Everything the pipeline produces for one operator invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The generated kernel's name (includes the applied flags).
    pub kernel_name: String,
    /// Number of instructions in the generated kernel.
    pub kernel_len: usize,
    /// The fingerprint the result is cached under.
    pub fingerprint: u64,
    /// Section 3.1 metrics collected from the simulated trace.
    pub profile: Profile,
    /// The simulated execution trace (empty for analytical fallbacks).
    pub trace: Trace,
    /// The component-based roofline analysis.
    pub analysis: RooflineAnalysis,
    /// How the result was produced: simulated, or degraded to the
    /// closed-form analytical estimate by a [`RunPolicy`].
    #[serde(default)]
    pub fidelity: Fidelity,
}

impl PipelineResult {
    /// End-to-end simulated execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.trace.total_cycles()
    }
}

/// Counters of the pipeline's result cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Invocations answered from the cache.
    pub hits: u64,
    /// Invocations that ran the full stage sequence.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing ran yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cumulative wall time spent in each pipeline stage (cache misses only —
/// hits skip every stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Seconds spent generating kernels (`Operator::build`).
    pub build_secs: f64,
    /// Seconds spent in the event-driven simulator.
    pub simulate_secs: f64,
    /// Seconds spent collecting profiles from traces.
    pub profile_secs: f64,
    /// Seconds spent in the roofline analysis.
    pub analyze_secs: f64,
    /// Number of uncached stage-sequence executions.
    pub runs: u64,
}

impl StageTimings {
    /// Total wall time across all four stages.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.build_secs + self.simulate_secs + self.profile_secs + self.analyze_secs
    }
}

/// Cumulative engine-loop throughput across all uncached runs on this
/// pipeline (shared across clones): how many events the simulator's
/// event loop processed and how long the loop itself ran — excluding
/// kernel build, trace finalization, profiling, and analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineThroughput {
    /// Events processed by the simulator's event loop.
    pub events: u64,
    /// Wall seconds spent inside the event loop.
    pub sim_secs: f64,
}

impl EngineThroughput {
    /// Events per wall second (0 before anything ran).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.events as f64 / self.sim_secs
        } else {
            0.0
        }
    }

    /// Mean wall nanoseconds per event (0 before anything ran).
    #[must_use]
    pub fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.sim_secs * 1e9 / self.events as f64
        } else {
            0.0
        }
    }

    /// Folds another throughput record into this one.
    pub fn absorb(&mut self, other: EngineThroughput) {
        self.events += other.events;
        self.sim_secs += other.sim_secs;
    }
}

/// How many results each [`Fidelity`] produced (shared across clones).
/// Cache hits are not double-counted: every result is counted once, at
/// production time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FidelityMix {
    /// Results produced by full simulation.
    pub simulated: u64,
    /// Results degraded to the closed-form analytical estimate.
    pub analytical: u64,
    /// Results re-answered by the reference oracle after an online audit
    /// caught the fast engine diverging ([`Fidelity::Audited`]).
    #[serde(default)]
    pub audited: u64,
}

/// Per-stage percentile summaries (seconds), from fixed-size reservoirs
/// fed by every uncached stage-sequence execution. Unlike
/// [`StageTimings`], which accumulates wall time, these expose the
/// *distribution* — tail inflation under load is invisible in sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StagePercentiles {
    /// Kernel-generation latency (`Operator::build`).
    pub build: LatencySummary,
    /// Event-driven simulation latency.
    pub simulate: LatencySummary,
    /// Trace-profiling latency.
    pub profile: LatencySummary,
    /// Roofline-analysis latency.
    pub analyze: LatencySummary,
    /// End-to-end latency of the whole uncached stage sequence.
    pub total: LatencySummary,
}

/// One latency reservoir per stage, all seeded distinctly so replacement
/// streams do not correlate.
#[derive(Debug)]
struct StageReservoirs {
    build: LatencyReservoir,
    simulate: LatencyReservoir,
    profile: LatencyReservoir,
    analyze: LatencyReservoir,
    total: LatencyReservoir,
}

impl Default for StageReservoirs {
    fn default() -> Self {
        StageReservoirs {
            build: LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0xB01),
            simulate: LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0x51E),
            profile: LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0xF0F),
            analyze: LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0xA11),
            total: LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0x707),
        }
    }
}

#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<u64, Arc<PipelineResult>>,
    order: VecDeque<u64>,
}

/// Circuit-breaker state shared across pipeline clones. The counter
/// tracks *consecutive* items whose every supervised attempt failed;
/// once `open`, it stays open (short-circuiting supervised runs whose
/// policy enables the breaker) until [`AnalysisPipeline::reset_breaker`].
#[derive(Debug, Default)]
struct BreakerState {
    consecutive: u32,
    open: bool,
}

#[derive(Debug, Default)]
struct SharedState {
    cache: Mutex<ResultCache>,
    stats: Mutex<CacheStats>,
    timings: Mutex<StageTimings>,
    latency: Mutex<StageReservoirs>,
    supervisor: Mutex<SupervisorStats>,
    breaker: Mutex<BreakerState>,
    engine: Mutex<EngineThroughput>,
    fidelity: Mutex<FidelityMix>,
}

/// The build → simulate → profile → analyze stage sequence with a
/// content-addressed result cache and a scoped-thread batch API.
///
/// See the [crate docs](crate) for the full story; construct with
/// [`AnalysisPipeline::new`], configure with the `with_*` builders, then
/// [`run`](AnalysisPipeline::run) operators through it.
#[derive(Debug, Clone)]
pub struct AnalysisPipeline {
    chip: ChipSpec,
    thresholds: Thresholds,
    simulator: Simulator,
    /// Fingerprint of (chip, thresholds); mixed into every cache key so
    /// clones with different configuration never share entries.
    context: u64,
    capacity: usize,
    shared: Arc<SharedState>,
    /// Optional durable second cache tier (memory → disk → compute).
    /// Shared across clones of *this* configured pipeline; never
    /// consulted for a different context (the store header pins it).
    store: Option<Arc<ResultStore>>,
    /// Optional online audit tier: sampled shadow re-execution on the
    /// reference oracle, quarantine, and the demotion breaker. Shared
    /// across clones (one ledger, one demotion latch).
    auditor: Option<Arc<Auditor>>,
    /// Chaos-only seam: deterministically perturbs served durations
    /// *after* simulation, modelling a silently wrong engine for the
    /// audit tier's end-to-end tests. Never enabled in production paths.
    buggy: Option<BuggyEngine>,
}

impl AnalysisPipeline {
    /// A pipeline for `chip` with the paper's default thresholds.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        let thresholds = Thresholds::default();
        let context = context_fingerprint(&chip, &thresholds);
        AnalysisPipeline {
            simulator: Simulator::new(chip.clone()),
            chip,
            thresholds,
            context,
            capacity: DEFAULT_CACHE_CAPACITY,
            shared: Arc::new(SharedState::default()),
            store: None,
            auditor: None,
            buggy: None,
        }
    }

    /// A pipeline for `chip`, rejecting invalid chip specifications at
    /// construction instead of at the first run.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSpec`] when `chip` violates a
    /// construction invariant (see `ChipSpec::validate`).
    pub fn try_new(chip: ChipSpec) -> Result<Self, ArchError> {
        chip.validate()?;
        Ok(AnalysisPipeline::new(chip))
    }

    /// Overrides the classification thresholds. The cache-key context
    /// changes with them, so results cached under other thresholds are
    /// never returned.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self.context = context_fingerprint(&self.chip, &self.thresholds);
        // An attached store is pinned to the old context; consulting it
        // under the new one would be refused by its header anyway, so
        // drop it loudly. Attach the store *after* configuration.
        if let Some(store) = &self.store {
            if store.context() != self.context {
                eprintln!(
                    "[pipeline] warning: thresholds changed after a result store was \
                     attached; detaching the store (attach it last)"
                );
                self.store = None;
            }
        }
        self
    }

    /// Overrides the cache capacity (entries, minimum 1).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Attaches a durable on-disk cache tier at `path` (created if
    /// missing, recovered if present): lookups go memory → disk →
    /// compute, and computed results are written back through. Attach
    /// the store **after** `with_thresholds` — the store is pinned to
    /// the pipeline's context fingerprint.
    ///
    /// Run-time store failures never fail requests (see
    /// [`ResultStore`]); only *opening* a wrong or unreadable store is
    /// an error, because silently analyzing without the cache the caller
    /// asked for would hide a misconfiguration.
    ///
    /// # Errors
    ///
    /// Everything [`ResultStore::open`] reports.
    pub fn with_store(self, path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let store = ResultStore::open(path, self.context)?;
        Ok(self.with_result_store(Arc::new(store)).expect("context was taken from self"))
    }

    /// [`with_store`](AnalysisPipeline::with_store) with an explicit
    /// [`StoreConfig`] (fsync policy, compaction thresholds).
    ///
    /// # Errors
    ///
    /// Everything [`ResultStore::open_with_config`] reports.
    pub fn with_store_config(
        self,
        path: impl AsRef<std::path::Path>,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let store = ResultStore::open_with_config(path, self.context, config)?;
        Ok(self.with_result_store(Arc::new(store)).expect("context was taken from self"))
    }

    /// Attaches an already-open [`ResultStore`] — the seam for sharing
    /// one store across pipelines and for fault-injected test stores.
    ///
    /// # Errors
    ///
    /// [`StoreError::ContextMismatch`] when the store was opened for a
    /// different (chip, thresholds) context.
    pub fn with_result_store(mut self, store: Arc<ResultStore>) -> Result<Self, StoreError> {
        if store.context() != self.context {
            return Err(StoreError::ContextMismatch {
                found: store.context(),
                expected: self.context,
            });
        }
        self.store = Some(store);
        Ok(self)
    }

    /// Enables the online audit tier under `policy`, in **inline** mode:
    /// a sampled result is shadow re-executed on the reference oracle
    /// *before* it is returned, and a divergent result is replaced by
    /// the oracle's answer ([`Fidelity::Audited`]) with its fingerprint
    /// quarantined. The service attaches the **deferred** variant
    /// instead (audits run on scheduling slack, off the request path).
    #[must_use]
    pub fn with_audit(mut self, policy: AuditPolicy) -> Self {
        self.auditor = Some(Arc::new(Auditor::new(policy, false)));
        self
    }

    /// [`with_audit`](AnalysisPipeline::with_audit) in **deferred**
    /// mode: sampled results are queued and shadow re-executed only when
    /// [`run_pending_audit`](AnalysisPipeline::run_pending_audit) is
    /// called — the service drains the queue on scheduling slack, so
    /// audits never add latency to the request path.
    #[must_use]
    pub fn with_audit_deferred(mut self, policy: AuditPolicy) -> Self {
        self.auditor = Some(Arc::new(Auditor::new(policy, true)));
        self
    }

    /// Chaos seam: makes the *served* results deterministically wrong.
    /// An afflicted result's trace durations are perturbed after
    /// simulation (see [`BuggyEngine`]), modelling a silently
    /// miscompiled or drifted fast engine. Only the audit tier can tell;
    /// this is how the chaos suite proves it does. Never combine with
    /// production use.
    #[must_use]
    pub fn with_buggy_engine(mut self, bug: BuggyEngine) -> Self {
        self.buggy = Some(bug);
        self
    }

    /// The context fingerprint mixed into every cache key — what a
    /// [`ResultStore`] must be opened with to be attachable.
    #[must_use]
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Counters of the attached disk tier (`None` without one).
    #[must_use]
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|store| store.stats())
    }

    /// Syncs the attached store's unsynced appends to the device (the
    /// drain hook). A no-op without a store.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            store.flush();
        }
    }

    /// Disk-tier lookup for `key`: a digest-valid record that also
    /// deserializes is promoted into the memory cache and returned.
    /// Undecodable payloads (format drift behind a valid digest) are
    /// discarded from the store and recomputed.
    fn store_lookup(&self, key: u64) -> Option<Arc<PipelineResult>> {
        let store = self.store.as_ref()?;
        let payload = store.get(key)?;
        let parsed = std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| serde_json::from_str::<PipelineResult>(text).ok());
        match parsed {
            Some(result) if result.fingerprint == key => {
                let result = Arc::new(result);
                self.insert(key, Arc::clone(&result));
                Some(result)
            }
            _ => {
                store.discard(key);
                None
            }
        }
    }

    /// Write-through for a freshly computed result. Fallback results are
    /// never persisted — a durable degraded estimate would outlive the
    /// condition that forced it.
    fn store_put(&self, key: u64, result: &PipelineResult) {
        let Some(store) = &self.store else { return };
        if result.fidelity != Fidelity::Simulated {
            return;
        }
        match serde_json::to_string(result) {
            Ok(json) => store.put(key, json.as_bytes()),
            Err(err) => {
                eprintln!("[pipeline] warning: result {key:#018x} not persisted: {err}");
            }
        }
    }

    /// The chip this pipeline simulates.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// The classification thresholds in use.
    #[must_use]
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The cache key for `op` under this pipeline's configuration.
    #[must_use]
    pub fn cache_key(&self, op: &dyn Operator) -> u64 {
        mix(self.context, op.fingerprint())
    }

    /// Runs the full stage sequence on `op`, answering from the cache
    /// when this (operator, chip, thresholds) combination already ran.
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction and simulation errors.
    pub fn run(&self, op: &dyn Operator) -> Result<Arc<PipelineResult>, SimError> {
        let key = self.cache_key(op);
        if let Some(found) = lock(&self.shared.cache).map.get(&key) {
            let result = Arc::clone(found);
            lock(&self.shared.stats).hits += 1;
            return Ok(result);
        }
        // Second tier: the durable store. A disk hit is a cache hit to
        // the caller (and is promoted into memory by the lookup).
        if let Some(found) = self.store_lookup(key) {
            lock(&self.shared.stats).hits += 1;
            return Ok(found);
        }
        // Compute outside the cache lock so batch workers make progress
        // concurrently. Two workers racing on the same key both miss; the
        // later insert is a no-op.
        let result = Arc::new(self.execute(op, key)?);
        lock(&self.shared.stats).misses += 1;
        self.insert(key, Arc::clone(&result));
        self.store_put(key, &result);
        Ok(result)
    }

    /// [`run`](AnalysisPipeline::run) with panic isolation: a panicking
    /// operator (or stage) is caught at this boundary and reported as
    /// [`PipelineError::Panicked`] instead of unwinding into the caller.
    /// This is the per-item unit of the batch and stream APIs.
    ///
    /// # Errors
    ///
    /// Everything [`run`](AnalysisPipeline::run) reports, reclassified
    /// into the [`PipelineError`] taxonomy, plus the panic case.
    pub fn run_isolated(&self, op: &dyn Operator) -> Result<Arc<PipelineResult>, PipelineError> {
        // The shared state stays coherent across an unwind: `lock`
        // tolerates poison and the guarded structures are valid between
        // mutations, so resuming with the caught state is safe.
        catch_unwind(AssertUnwindSafe(|| self.run(op)))
            .map_err(|payload| PipelineError::Panicked {
                message: error::panic_message(payload.as_ref()),
            })?
            .map_err(PipelineError::from)
    }

    /// Runs `op` under a supervision [`RunPolicy`]: per-attempt
    /// deadline/budget, bounded seeded retries of transient failures, a
    /// circuit breaker across items, and optional degradation to the
    /// closed-form analytical estimate ([`Fidelity::AnalyticalFallback`])
    /// when every attempt fails.
    ///
    /// A passthrough policy ([`RunPolicy::default`]) behaves exactly
    /// like [`run_isolated`](AnalysisPipeline::run_isolated). Fallback
    /// results are **not** cached — a later run under a healthier policy
    /// gets a fresh chance to simulate.
    ///
    /// # Errors
    ///
    /// Everything [`run_isolated`](AnalysisPipeline::run_isolated)
    /// reports (the *last* attempt's error once retries are exhausted
    /// and fallback is disabled or impossible), plus
    /// [`PipelineError::CircuitOpen`] when the breaker short-circuits
    /// the item.
    pub fn run_supervised(
        &self,
        op: &dyn Operator,
        policy: &RunPolicy,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        self.run_supervised_inner(op, policy, None)
    }

    /// [`run_supervised`](AnalysisPipeline::run_supervised) with an
    /// external cancellation token threaded into every attempt.
    ///
    /// This is the service's preemption hook: each attempt runs under a
    /// [child](CancelToken::child_with_timeout) of `cancel` (so the
    /// policy's per-attempt deadline still applies), and a signalled
    /// token also stops the retry loop — no backoff sleep, no further
    /// attempts, no analytical fallback masking the preemption. The
    /// caller sees the cancelled attempt's error
    /// ([`PipelineError::Runtime`] wrapping `SimError::Cancelled`).
    ///
    /// # Errors
    ///
    /// Everything [`run_supervised`](AnalysisPipeline::run_supervised)
    /// reports, plus the cancellation case above.
    pub fn run_supervised_with_cancel(
        &self,
        op: &dyn Operator,
        policy: &RunPolicy,
        cancel: &CancelToken,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        self.run_supervised_inner(op, policy, Some(cancel))
    }

    fn run_supervised_inner(
        &self,
        op: &dyn Operator,
        policy: &RunPolicy,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        if policy.is_passthrough() && cancel.is_none() {
            return self.run_isolated(op);
        }
        let key = self.cache_key(op);
        if let Some(found) = lock(&self.shared.cache).map.get(&key) {
            let result = Arc::clone(found);
            lock(&self.shared.stats).hits += 1;
            return Ok(result);
        }
        if let Some(found) = self.store_lookup(key) {
            lock(&self.shared.stats).hits += 1;
            return Ok(found);
        }
        self.supervise_loop(key, policy, cancel, Some(op), &mut || {
            self.attempt_supervised(op, key, policy, cancel)
        })
    }

    /// The retry/breaker/fallback core shared by the in-process and
    /// sandboxed supervised paths: runs `attempt` under `policy`, feeding
    /// the shared circuit breaker and supervision counters, degrading to
    /// the analytical estimate of `fallback_op` (when the policy allows
    /// and one is provided — the sandboxed path withholds it for hostile
    /// work whose `build` must never run in this process).
    ///
    /// The caller has already checked the cache for `key`; a success is
    /// inserted under it.
    pub(crate) fn supervise_loop(
        &self,
        key: u64,
        policy: &RunPolicy,
        cancel: Option<&CancelToken>,
        fallback_op: Option<&dyn Operator>,
        attempt: &mut dyn FnMut() -> Result<PipelineResult, PipelineError>,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        lock(&self.shared.supervisor).supervised_runs += 1;

        if policy.breaker_threshold > 0 {
            let breaker = lock(&self.shared.breaker);
            if breaker.open {
                let consecutive = breaker.consecutive;
                drop(breaker);
                lock(&self.shared.supervisor).breaker_short_circuits += 1;
                if policy.fallback {
                    if let Some(op) = fallback_op {
                        if let Ok(result) = self.analytic_fallback(op, key) {
                            lock(&self.shared.supervisor).fallbacks += 1;
                            return Ok(result);
                        }
                    }
                }
                return Err(PipelineError::CircuitOpen { consecutive_failures: consecutive });
            }
        }

        let mut last_err: Option<PipelineError> = None;
        for round in 0..=policy.max_retries {
            if round > 0 {
                // A signalled external token ends supervision now:
                // retrying (or even sleeping out the backoff) after the
                // service asked for preemption would stall drain.
                if cancel.is_some_and(CancelToken::is_signalled) {
                    break;
                }
                lock(&self.shared.supervisor).retries += 1;
                let delay = policy.backoff_delay(key, round);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            match attempt() {
                Ok(result) => {
                    if policy.breaker_threshold > 0 {
                        let mut breaker = lock(&self.shared.breaker);
                        if !breaker.open {
                            breaker.consecutive = 0;
                        }
                    }
                    lock(&self.shared.stats).misses += 1;
                    let result = Arc::new(result);
                    self.insert(key, Arc::clone(&result));
                    self.store_put(key, &result);
                    return Ok(result);
                }
                Err(err) => {
                    {
                        let mut sup = lock(&self.shared.supervisor);
                        match &err {
                            PipelineError::Runtime(SimError::Cancelled { .. }) => {
                                sup.deadline_preemptions += 1;
                            }
                            PipelineError::Runtime(SimError::BudgetExceeded { .. }) => {
                                sup.budget_trips += 1;
                            }
                            _ => {}
                        }
                    }
                    let transient = err.is_transient();
                    last_err = Some(err);
                    if !transient {
                        // Invalid kernels and broken specs fail the same
                        // way every time; retrying burns the deadline for
                        // nothing.
                        break;
                    }
                }
            }
        }

        let err = last_err.unwrap_or(PipelineError::Panicked {
            message: "supervised run produced neither result nor error".to_string(),
        });
        // An externally preempted item is not a backend-health signal:
        // it must neither feed the breaker nor degrade to the analytical
        // estimate — the caller asked it to stop, so report that.
        let transient = err.is_transient() && !cancel.is_some_and(CancelToken::is_signalled);
        if transient {
            // Only backend-health failures feed the breaker: a batch of
            // invalid operators must not lock healthy items out of the
            // simulator.
            lock(&self.shared.supervisor).hard_failures += 1;
            if policy.breaker_threshold > 0 {
                let mut breaker = lock(&self.shared.breaker);
                breaker.consecutive += 1;
                if !breaker.open && breaker.consecutive >= policy.breaker_threshold {
                    breaker.open = true;
                    drop(breaker);
                    lock(&self.shared.supervisor).breaker_trips += 1;
                }
            }
            if policy.fallback {
                if let Some(op) = fallback_op {
                    if let Ok(result) = self.analytic_fallback(op, key) {
                        lock(&self.shared.supervisor).fallbacks += 1;
                        return Ok(result);
                    }
                }
            }
        }
        Err(err)
    }

    /// One supervised attempt: the stage sequence on a simulator derived
    /// from the policy (budget override, cancellation deadline), with
    /// panic isolation at the attempt boundary.
    fn attempt_supervised(
        &self,
        op: &dyn Operator,
        key: u64,
        policy: &RunPolicy,
        cancel: Option<&CancelToken>,
    ) -> Result<PipelineResult, PipelineError> {
        // The attempt's token composes the external cancellation flag
        // (shared with the service's drain token) with the policy's
        // per-attempt deadline, whichever applies.
        let token = match (cancel, policy.deadline) {
            (Some(parent), Some(deadline)) => Some(parent.child_with_timeout(deadline)),
            (Some(parent), None) => Some(parent.clone()),
            (None, Some(deadline)) => Some(CancelToken::with_timeout(deadline)),
            (None, None) => None,
        };
        let simulator = if token.is_some() || policy.budget.is_some() {
            let mut simulator = self.simulator.clone();
            if let Some(budget) = policy.budget {
                simulator = simulator.with_budget(budget);
            }
            if let Some(token) = token {
                simulator = simulator.with_cancel(token);
            }
            Some(simulator)
        } else {
            None
        };
        let simulator = simulator.as_ref().unwrap_or(&self.simulator);
        catch_unwind(AssertUnwindSafe(|| self.execute_on(op, key, simulator)))
            .map_err(|payload| PipelineError::Panicked {
                message: error::panic_message(payload.as_ref()),
            })?
            .map_err(PipelineError::from)
    }

    /// Builds the degraded result: the kernel's closed-form analytical
    /// roofline estimate with an empty trace, tagged
    /// [`Fidelity::AnalyticalFallback`]. Never cached.
    fn analytic_fallback(
        &self,
        op: &dyn Operator,
        key: u64,
    ) -> Result<Arc<PipelineResult>, PipelineError> {
        let kernel = op.build(&self.chip)?;
        let estimate = analytic::estimate(&kernel, &self.chip)?;
        let stats = KernelStats::of(&kernel);
        let profile = Profile {
            name: kernel.name().to_owned(),
            ops: stats.ops,
            bytes: stats.bytes,
            active_cycles: estimate.active_cycles,
            total_cycles: estimate.total_cycles,
            instruction_count: kernel.len() as u64,
        };
        let analysis = analyze(&profile, &self.chip, &self.thresholds);
        lock(&self.shared.fidelity).analytical += 1;
        Ok(Arc::new(PipelineResult {
            kernel_name: kernel.name().to_owned(),
            kernel_len: kernel.len(),
            fingerprint: key,
            profile,
            trace: Trace::from_parts(kernel.name(), Vec::new(), estimate.total_cycles),
            analysis,
            fidelity: Fidelity::AnalyticalFallback,
        }))
    }

    /// Runs independent operators concurrently on scoped worker threads,
    /// one per available CPU (capped by the batch size). Results are
    /// returned in **input order** regardless of completion order, one
    /// `Result` per input: a failing or panicking operator costs its own
    /// slot, never its siblings'.
    pub fn run_batch(
        &self,
        ops: &[&dyn Operator],
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.run_batch_with_workers(ops, workers)
    }

    /// [`run_batch`](AnalysisPipeline::run_batch) with an explicit worker
    /// count.
    ///
    /// The worker count is **clamped to `1..=ops.len()`**: `0` (or any
    /// degenerate request) runs serially on the calling thread, a count
    /// above the batch size is reduced to one worker per item (threads
    /// that could never claim work are not spawned), and an empty batch
    /// spawns no threads and returns an empty vector.
    pub fn run_batch_with_workers(
        &self,
        ops: &[&dyn Operator],
        workers: usize,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        self.batch_with_workers(ops, workers, |op| self.run_isolated(op))
    }

    /// The shared fan-out machinery of every batch API: `run_one` per
    /// item on scoped worker threads (count clamped to `1..=ops.len()`,
    /// see [`run_batch_with_workers`](AnalysisPipeline::run_batch_with_workers)),
    /// results in input order.
    fn batch_with_workers<F>(
        &self,
        ops: &[&dyn Operator],
        workers: usize,
        run_one: F,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>>
    where
        F: Fn(&dyn Operator) -> Result<Arc<PipelineResult>, PipelineError> + Sync,
    {
        if ops.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, ops.len());
        if workers <= 1 {
            return ops.iter().map(|op| run_one(*op)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<Arc<PipelineResult>, PipelineError>>> =
            (0..ops.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(op) = ops.get(index) else { break };
                    let filled = slots[index].set(run_one(*op));
                    debug_assert!(filled.is_ok(), "every slot is claimed exactly once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|| {
                    // Unreachable while the claim loop covers every index;
                    // degrade to a per-slot error rather than panic.
                    Err(PipelineError::Panicked {
                        message: "batch slot was never filled".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Analyzes a stream of operator invocations (e.g. one model
    /// iteration): a batched [`run`](AnalysisPipeline::run) over the
    /// stream, input-ordered, one `Result` per invocation.
    pub fn analyze_stream<'a, I>(&self, ops: I) -> Vec<Result<Arc<PipelineResult>, PipelineError>>
    where
        I: IntoIterator<Item = &'a dyn Operator>,
    {
        let ops: Vec<&dyn Operator> = ops.into_iter().collect();
        self.run_batch(&ops)
    }

    /// [`run_batch`](AnalysisPipeline::run_batch) with every item going
    /// through [`run_supervised`](AnalysisPipeline::run_supervised)
    /// under `policy`.
    pub fn run_batch_supervised(
        &self,
        ops: &[&dyn Operator],
        policy: &RunPolicy,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.run_batch_supervised_with_workers(ops, workers, policy)
    }

    /// [`run_batch_supervised`](AnalysisPipeline::run_batch_supervised)
    /// with an explicit worker count (clamped as in
    /// [`run_batch_with_workers`](AnalysisPipeline::run_batch_with_workers)).
    pub fn run_batch_supervised_with_workers(
        &self,
        ops: &[&dyn Operator],
        workers: usize,
        policy: &RunPolicy,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        self.batch_with_workers(ops, workers, |op| self.run_supervised(op, policy))
    }

    /// [`analyze_stream`](AnalysisPipeline::analyze_stream) with every
    /// invocation supervised under `policy`.
    pub fn analyze_stream_supervised<'a, I>(
        &self,
        ops: I,
        policy: &RunPolicy,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>>
    where
        I: IntoIterator<Item = &'a dyn Operator>,
    {
        let ops: Vec<&dyn Operator> = ops.into_iter().collect();
        self.run_batch_supervised(&ops, policy)
    }

    /// A crash-safe resumable batch: items whose fingerprint is already
    /// in `journal` replay the journaled result
    /// (counted as [`SupervisorStats::journal_skips`]); fresh items run
    /// through [`run_supervised`](AnalysisPipeline::run_supervised) and
    /// are appended — fsync'd — before the batch moves on. Killing the
    /// process mid-batch therefore loses at most the items that were in
    /// flight; reopening the same journal and re-running the same batch
    /// completes only the remainder.
    pub fn run_batch_resumable(
        &self,
        ops: &[&dyn Operator],
        policy: &RunPolicy,
        journal: &BatchJournal,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.run_batch_resumable_with_workers(ops, workers, policy, journal)
    }

    /// [`run_batch_resumable`](AnalysisPipeline::run_batch_resumable)
    /// with an explicit worker count (clamped as in
    /// [`run_batch_with_workers`](AnalysisPipeline::run_batch_with_workers)).
    pub fn run_batch_resumable_with_workers(
        &self,
        ops: &[&dyn Operator],
        workers: usize,
        policy: &RunPolicy,
        journal: &BatchJournal,
    ) -> Vec<Result<Arc<PipelineResult>, PipelineError>> {
        self.batch_with_workers(ops, workers, |op| {
            let key = self.cache_key(op);
            if let Some(record) = journal.get(key) {
                lock(&self.shared.supervisor).journal_skips += 1;
                return Ok(Arc::new(record.result));
            }
            let result = self.run_supervised(op, policy)?;
            if let Err(err) = journal.append(key, &result) {
                // The result is still correct; only resumability of this
                // one item is lost. Warn instead of failing the slot.
                eprintln!("[pipeline] warning: journal append failed for {:#018x}: {err}", key);
            }
            Ok(result)
        })
    }

    /// Runs only the analyze stage on an externally assembled profile
    /// (e.g. a whole-model aggregate), under this pipeline's chip and
    /// thresholds. Not cached.
    #[must_use]
    pub fn analyze_profile(&self, profile: &Profile) -> RooflineAnalysis {
        let start = Instant::now();
        let analysis = analyze(profile, &self.chip, &self.thresholds);
        lock(&self.shared.timings).analyze_secs += start.elapsed().as_secs_f64();
        analysis
    }

    /// Current hit/miss/eviction counters (shared across clones).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        *lock(&self.shared.stats)
    }

    /// Current supervision counters (shared across clones).
    #[must_use]
    pub fn supervisor_stats(&self) -> SupervisorStats {
        *lock(&self.shared.supervisor)
    }

    /// Whether the supervision circuit breaker is currently open.
    #[must_use]
    pub fn breaker_is_open(&self) -> bool {
        lock(&self.shared.breaker).open
    }

    /// Closes the circuit breaker and zeroes its consecutive-failure
    /// counter — the explicit recovery step after the backend (chip
    /// spec, fault plan, host load) has been fixed.
    pub fn reset_breaker(&self) {
        *lock(&self.shared.breaker) = BreakerState::default();
    }

    /// Cumulative per-stage wall times (shared across clones).
    #[must_use]
    pub fn timings(&self) -> StageTimings {
        *lock(&self.shared.timings)
    }

    /// Per-stage latency percentiles from the shared reservoirs (cache
    /// misses only — hits skip every stage).
    #[must_use]
    pub fn stage_percentiles(&self) -> StagePercentiles {
        let latency = lock(&self.shared.latency);
        StagePercentiles {
            build: latency.build.summary(),
            simulate: latency.simulate.summary(),
            profile: latency.profile.summary(),
            analyze: latency.analyze.summary(),
            total: latency.total.summary(),
        }
    }

    /// Number of results currently cached.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        lock(&self.shared.cache).map.len()
    }

    /// Cumulative engine event-loop throughput (shared across clones):
    /// events processed and wall seconds spent inside the event loop,
    /// with derived events/sec and ns/event.
    #[must_use]
    pub fn engine_throughput(&self) -> EngineThroughput {
        *lock(&self.shared.engine)
    }

    /// How many results each fidelity produced (shared across clones).
    #[must_use]
    pub fn fidelity_mix(&self) -> FidelityMix {
        *lock(&self.shared.fidelity)
    }

    /// Audit-tier counters (all zero without an attached audit policy).
    #[must_use]
    pub fn audit_stats(&self) -> AuditStats {
        self.auditor.as_deref().map(Auditor::stats).unwrap_or_default()
    }

    /// Whether the divergence breaker has demoted this pipeline to the
    /// reference engine for the rest of the run.
    #[must_use]
    pub fn is_demoted(&self) -> bool {
        self.auditor.as_deref().is_some_and(Auditor::is_demoted)
    }

    /// Deferred audits waiting for scheduling slack.
    #[must_use]
    pub fn pending_audits(&self) -> usize {
        self.auditor.as_deref().map_or(0, Auditor::pending)
    }

    /// Runs one deferred audit, if any are queued: shadow re-execution,
    /// comparison, and — on divergence — quarantine plus replacement of
    /// the cached result by the oracle's answer. Returns whether a job
    /// was processed (the service calls this on worker slack until it
    /// reports `false`).
    pub fn run_pending_audit(&self) -> bool {
        let Some(auditor) = &self.auditor else { return false };
        let Some(job) = auditor.take_job() else { return false };
        if let Some(oracle) = self.perform_audit(job.key, &job.kernel, &job.result) {
            // The divergent entry was purged by the quarantine; the
            // oracle's answer takes its place so later hits on this key
            // serve the truth.
            self.insert(job.key, Arc::new(oracle));
        }
        true
    }

    /// Discards the deferred audit backlog (counted as dropped) — the
    /// drain hook: a stopping service must not owe shadow work.
    pub fn drop_pending_audits(&self) -> usize {
        self.auditor.as_deref().map_or(0, Auditor::drop_pending)
    }

    /// Clears the cache and zeroes all counters (shared across clones).
    pub fn reset(&self) {
        let mut cache = lock(&self.shared.cache);
        cache.map.clear();
        cache.order.clear();
        drop(cache);
        *lock(&self.shared.stats) = CacheStats::default();
        *lock(&self.shared.timings) = StageTimings::default();
        *lock(&self.shared.latency) = StageReservoirs::default();
        *lock(&self.shared.supervisor) = SupervisorStats::default();
        *lock(&self.shared.breaker) = BreakerState::default();
        *lock(&self.shared.engine) = EngineThroughput::default();
        *lock(&self.shared.fidelity) = FidelityMix::default();
        if let Some(auditor) = &self.auditor {
            auditor.reset();
        }
    }

    /// The two-line instrumentation footer the figure binaries print:
    /// per-stage wall time plus cache behaviour.
    #[must_use]
    pub fn instrumentation_footer(&self) -> String {
        let timings = self.timings();
        let stats = self.cache_stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[pipeline] stages ({} uncached runs): build {:.3}s | simulate {:.3}s | profile {:.3}s | analyze {:.3}s",
            timings.runs,
            timings.build_secs,
            timings.simulate_secs,
            timings.profile_secs,
            timings.analyze_secs,
        );
        if timings.runs > 0 {
            let pct = self.stage_percentiles();
            let _ = writeln!(
                out,
                "[pipeline] stage latency ms p50/p95/p99: build {} | simulate {} | profile {} | analyze {} | total {}",
                pct.build, pct.simulate, pct.profile, pct.analyze, pct.total,
            );
        }
        let engine = self.engine_throughput();
        if engine.events > 0 {
            let _ = writeln!(
                out,
                "[pipeline] engine: {} events in {:.3}s ({:.0} events/s, {:.0} ns/event)",
                engine.events,
                engine.sim_secs,
                engine.events_per_sec(),
                engine.ns_per_event(),
            );
        }
        let _ = write!(
            out,
            "[pipeline] cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {} entries live",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.evictions,
            self.cache_len(),
        );
        // The store line only appears when a disk tier is attached,
        // keeping store-less binaries' output byte-identical.
        if let Some(store) = self.store_stats() {
            let _ = write!(
                out,
                "\n[pipeline] store: {} hits / {} misses, {} recovered, {} corrupt dropped, \
                 {} appends, {} compactions, {} io errors{}",
                store.hits,
                store.misses,
                store.recovered,
                store.corrupt_dropped,
                store.appends,
                store.compactions,
                store.io_errors,
                if store.disabled { " [DISABLED]" } else { "" },
            );
        }
        // The supervision line only appears when something supervised
        // actually happened, keeping unsupervised binaries' output
        // byte-identical to before the supervisor existed.
        let sup = self.supervisor_stats();
        if sup.any_activity() {
            let _ = write!(out, "\n[pipeline] supervision: {sup}");
        }
        // Same rule for the audit line: silent until the tier does
        // something, so audit-less binaries' output never changes.
        let audit = self.audit_stats();
        if audit.any_activity() {
            let _ = write!(out, "\n[pipeline] audit: {audit}");
        }
        out
    }

    /// The uncached stage sequence on the pipeline's own simulator.
    fn execute(&self, op: &dyn Operator, key: u64) -> Result<PipelineResult, SimError> {
        self.execute_on(op, key, &self.simulator)
    }

    /// The uncached stage sequence on an explicit simulator (the
    /// supervised path substitutes one carrying a deadline token and/or
    /// a budget override).
    fn execute_on(
        &self,
        op: &dyn Operator,
        key: u64,
        simulator: &Simulator,
    ) -> Result<PipelineResult, SimError> {
        // A demoted pipeline no longer trusts the fast engine at all:
        // every uncached request runs on the reference oracle.
        if self.auditor.as_deref().is_some_and(Auditor::is_demoted) {
            return self.execute_demoted(op, key, simulator);
        }
        // The engine polls its token every event, but the other stages
        // would otherwise run to completion after a cancellation: poll at
        // every stage boundary so a deadline lapsing during a long build
        // preempts before the next stage starts, not after.
        let cancel = simulator.cancel_token();
        poll_stage(cancel, "build")?;
        let start = Instant::now();
        let kernel = op.build(&self.chip)?;
        let built = Instant::now();
        poll_stage(cancel, "simulate")?;
        // One engine pass feeds both sinks: the full-record collector
        // (results keep their trace) and the streaming metrics the
        // profile stage consumes without re-walking kernel + trace.
        let mut sinks = (TraceCollector::new(), MetricsSink::new());
        let summary = simulator.simulate_into(&kernel, &mut sinks)?;
        let engine_done = Instant::now();
        let (collector, metrics) = sinks;
        let mut trace = collector.into_trace(kernel.name(), summary.total_cycles);
        let mut perturbed = false;
        if let Some(bug) = &self.buggy {
            if bug.afflicts(key) {
                trace = perturb_trace(bug, key, &trace);
                perturbed = true;
            }
        }
        let simulated = Instant::now();
        poll_stage(cancel, "profile")?;
        // A perturbed trace must stay *self-consistent* — profile
        // re-derived from it, not from the untouched metrics stream —
        // or the lie would be visible without an audit.
        let profile = if perturbed {
            Profile::collect(&kernel, &trace)
        } else {
            Profile::from_metrics(&metrics, summary.total_cycles)
        };
        let profiled = Instant::now();
        poll_stage(cancel, "analyze")?;
        let analysis = analyze(&profile, &self.chip, &self.thresholds);
        let analyzed = Instant::now();

        lock(&self.shared.engine).absorb(EngineThroughput {
            events: summary.events,
            sim_secs: (engine_done - built).as_secs_f64(),
        });
        lock(&self.shared.fidelity).simulated += 1;
        self.record_stage_timings(start, built, simulated, profiled, analyzed);

        let result = PipelineResult {
            kernel_name: kernel.name().to_owned(),
            kernel_len: kernel.len(),
            fingerprint: key,
            profile,
            trace,
            analysis,
            fidelity: Fidelity::Simulated,
        };
        if let Some(auditor) = &self.auditor {
            if auditor.should_audit(key) {
                if auditor.deferred() {
                    auditor.enqueue(AuditJob { key, kernel, result: Arc::new(result.clone()) });
                } else if let Some(oracle) = self.perform_audit(key, &kernel, &result) {
                    // Inline mode: the divergent result is never
                    // returned, cached, or persisted — the caller gets
                    // the oracle's answer in its place.
                    return Ok(oracle);
                }
            }
        }
        Ok(result)
    }

    /// The demoted stage sequence: identical shape to the fast path, but
    /// simulation runs on the [`ReferenceSimulator`] under the same
    /// budget and cancellation as the supervised attempt would have
    /// used. Oracle results are trustworthy simulations — they keep
    /// [`Fidelity::Simulated`] and may be cached and persisted — but
    /// they never feed the fast engine's throughput counters, and the
    /// chaos perturbation is *not* applied (the modelled bug lives in
    /// the fast engine).
    fn execute_demoted(
        &self,
        op: &dyn Operator,
        key: u64,
        simulator: &Simulator,
    ) -> Result<PipelineResult, SimError> {
        let cancel = simulator.cancel_token();
        poll_stage(cancel, "build")?;
        let start = Instant::now();
        let kernel = op.build(&self.chip)?;
        let built = Instant::now();
        poll_stage(cancel, "simulate")?;
        let mut reference =
            ReferenceSimulator::new(self.chip.clone()).with_budget(simulator.budget());
        if let Some(token) = cancel {
            reference = reference.with_cancel(token.clone());
        }
        let trace = reference.simulate(&kernel)?;
        let simulated = Instant::now();
        poll_stage(cancel, "profile")?;
        let profile = Profile::collect(&kernel, &trace);
        let profiled = Instant::now();
        poll_stage(cancel, "analyze")?;
        let analysis = analyze(&profile, &self.chip, &self.thresholds);
        let analyzed = Instant::now();

        lock(&self.shared.fidelity).simulated += 1;
        self.record_stage_timings(start, built, simulated, profiled, analyzed);

        Ok(PipelineResult {
            kernel_name: kernel.name().to_owned(),
            kernel_len: kernel.len(),
            fingerprint: key,
            profile,
            trace,
            analysis,
            fidelity: Fidelity::Simulated,
        })
    }

    fn record_stage_timings(
        &self,
        start: Instant,
        built: Instant,
        simulated: Instant,
        profiled: Instant,
        analyzed: Instant,
    ) {
        let mut timings = lock(&self.shared.timings);
        timings.build_secs += (built - start).as_secs_f64();
        timings.simulate_secs += (simulated - built).as_secs_f64();
        timings.profile_secs += (profiled - simulated).as_secs_f64();
        timings.analyze_secs += (analyzed - profiled).as_secs_f64();
        timings.runs += 1;
        drop(timings);
        let mut latency = lock(&self.shared.latency);
        latency.build.record((built - start).as_secs_f64());
        latency.simulate.record((simulated - built).as_secs_f64());
        latency.profile.record((profiled - simulated).as_secs_f64());
        latency.analyze.record((analyzed - profiled).as_secs_f64());
        latency.total.record((analyzed - start).as_secs_f64());
    }

    /// Shadow re-executes `served` on the reference oracle and compares
    /// the traces. Returns the oracle's replacement result when they
    /// diverge (`served`'s fingerprint is quarantined from memory and
    /// disk first), `None` when they match or the shadow was preempted.
    fn perform_audit(
        &self,
        key: u64,
        kernel: &Kernel,
        served: &PipelineResult,
    ) -> Option<PipelineResult> {
        let Some(auditor) = &self.auditor else { return None };
        let policy = auditor.policy();
        // The shadow is supervised like any other work: the oracle
        // inherits the fast engine's event/cycle budget and runs under
        // its own wall-clock deadline, so an audit can never wedge the
        // worker that volunteered the slack.
        let token = CancelToken::with_timeout(policy.shadow_deadline);
        let reference = ReferenceSimulator::new(self.chip.clone())
            .with_budget(self.simulator.budget())
            .with_cancel(token);
        // The kernel already passed validation when the fast engine ran.
        let oracle_trace = match reference.simulate_unchecked(kernel) {
            Ok(trace) => trace,
            Err(_) => {
                auditor.record_aborted();
                return None;
            }
        };
        let Some(report) = divergence::compare(&served.trace, &oracle_trace) else {
            auditor.record_outcome(false);
            return None;
        };
        eprintln!("[pipeline] audit: {report}");
        self.quarantine(key);
        let profile = Profile::collect(kernel, &oracle_trace);
        let analysis = analyze(&profile, &self.chip, &self.thresholds);
        lock(&self.shared.fidelity).audited += 1;
        if auditor.record_outcome(true) {
            eprintln!(
                "[pipeline] audit: divergence breaker tripped ({} in window of {}); \
                 demoting to the reference engine for the rest of the run",
                policy.demote_after, policy.window,
            );
        }
        Some(PipelineResult {
            kernel_name: kernel.name().to_owned(),
            kernel_len: kernel.len(),
            fingerprint: key,
            profile,
            trace: oracle_trace,
            analysis,
            fidelity: Fidelity::Audited,
        })
    }

    /// Purges `key` everywhere a divergent result could be served from:
    /// the memory cache now, and the durable store forever (tombstone).
    fn quarantine(&self, key: u64) {
        let mut cache = lock(&self.shared.cache);
        if cache.map.remove(&key).is_some() {
            cache.order.retain(|&k| k != key);
        }
        drop(cache);
        if let Some(store) = &self.store {
            store.quarantine(key);
        }
    }

    /// Quarantines cache key `key` by hand: the memory entry (if any) is
    /// purged and, with a store attached, a durable tombstone bars the
    /// fingerprint from ever being served or re-persisted. The same path
    /// the audit tier takes for a divergent result — exposed so a
    /// cluster peer's verdict can be applied here
    /// ([`ClusterService::quarantine`] broadcasts through it). Idempotent.
    pub fn quarantine_key(&self, key: u64) {
        self.quarantine(key);
    }

    fn insert(&self, key: u64, result: Arc<PipelineResult>) {
        let mut cache = lock(&self.shared.cache);
        if cache.map.insert(key, result).is_none() {
            cache.order.push_back(key);
            while cache.order.len() > self.capacity {
                if let Some(oldest) = cache.order.pop_front() {
                    cache.map.remove(&oldest);
                    drop(cache);
                    lock(&self.shared.stats).evictions += 1;
                    cache = lock(&self.shared.cache);
                }
            }
        }
    }
}

/// Applies a [`BuggyEngine`]'s deterministic duration skew to a served
/// trace: each positive-duration queue record is stretched by the
/// engine's seeded factor for its position, and the total is re-derived,
/// so the perturbed trace is internally consistent — wrong in exactly
/// the way only a bit-exact oracle comparison can see.
fn perturb_trace(bug: &BuggyEngine, key: u64, trace: &Trace) -> Trace {
    let mut records = trace.records().to_vec();
    let mut position = 0usize;
    for record in &mut records {
        if record.queue.is_some() && record.end > record.start {
            let factor = bug.duration_factor(key, position);
            position += 1;
            if factor != 1.0 {
                record.end = record.start + (record.end - record.start) * factor;
            }
        }
    }
    let total = records.iter().map(|r| r.end).fold(trace.total_cycles(), f64::max);
    Trace::from_parts(trace.kernel_name(), records, total)
}

/// Returns [`SimError::Cancelled`] (with a synthetic forensics snapshot
/// naming `stage`) when `cancel` is signalled or expired — the
/// stage-boundary counterpart of the engine's in-loop poll.
fn poll_stage(cancel: Option<&CancelToken>, stage: &str) -> Result<(), SimError> {
    match cancel {
        Some(token) if token.is_cancelled() => Err(SimError::preempted_at(stage)),
        _ => Ok(()),
    }
}

/// FNV-1a over the chip and threshold configuration.
pub(crate) fn context_fingerprint(chip: &ChipSpec, thresholds: &Thresholds) -> u64 {
    digest::fnv1a(format!("{chip:?}|{thresholds:?}").as_bytes())
}

/// SplitMix64-style combiner for (context, operator) fingerprints.
pub(crate) fn mix(context: u64, fingerprint: u64) -> u64 {
    let mut z = context ^ fingerprint.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::{AddRelu, Gelu, OptFlags};
    use ascend_profile::Profiler;

    #[test]
    fn cached_result_is_identical_to_the_direct_path() {
        let chip = ChipSpec::training();
        let pipeline = AnalysisPipeline::new(chip.clone());
        let op = AddRelu::new(1 << 14);

        let first = pipeline.run(&op).unwrap();
        let second = pipeline.run(&op).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second run must be a cache hit");

        // Same numbers as the hand-rolled stage sequence.
        let kernel = op.build(&chip).unwrap();
        let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(first.profile, profile);
        assert_eq!(first.trace, trace);
        assert_eq!(first.analysis, analysis);
        assert_eq!(pipeline.cache_stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn flags_change_the_cache_key() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        let base = AddRelu::new(1 << 19);
        let tuned = base.with_flags(OptFlags::new().rsd(true));
        assert_ne!(pipeline.cache_key(&base), pipeline.cache_key(&tuned));
        let a = pipeline.run(&base).unwrap();
        let b = pipeline.run(&tuned).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "distinct flags must be distinct entries");
        assert_ne!(a.cycles(), b.cycles(), "RSD must change the simulated time");
        assert_eq!(pipeline.cache_stats().misses, 2);
    }

    #[test]
    fn thresholds_change_the_context() {
        let chip = ChipSpec::training();
        let a = AnalysisPipeline::new(chip.clone());
        let b = a
            .clone()
            .with_thresholds(Thresholds { parallelism_ratio: 0.99, ..Thresholds::default() });
        let op = AddRelu::new(1 << 12);
        assert_ne!(a.cache_key(&op), b.cache_key(&op));
    }

    #[test]
    fn clones_share_cache_and_counters() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        let clone = pipeline.clone();
        clone.run(&Gelu::new(1 << 12)).unwrap();
        let hit = pipeline.run(&Gelu::new(1 << 12)).unwrap();
        assert_eq!(hit.kernel_name, "gelu");
        assert_eq!(pipeline.cache_stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training()).with_cache_capacity(2);
        for shift in [10u64, 11, 12] {
            pipeline.run(&AddRelu::new(1 << shift)).unwrap();
        }
        assert_eq!(pipeline.cache_len(), 2);
        let stats = pipeline.cache_stats();
        assert_eq!(stats.evictions, 1);
        // The oldest entry (1<<10) was dropped: running it again misses.
        pipeline.run(&AddRelu::new(1 << 10)).unwrap();
        assert_eq!(pipeline.cache_stats().misses, 4);
    }

    /// An operator whose build stage always panics.
    #[derive(Debug, Clone)]
    struct PanickingOp;

    impl Operator for PanickingOp {
        fn name(&self) -> String {
            "panicker".to_string()
        }
        fn flags(&self) -> OptFlags {
            OptFlags::new()
        }
        fn with_flags_dyn(&self, _flags: OptFlags) -> Box<dyn Operator> {
            Box::new(self.clone())
        }
        fn build(&self, _chip: &ChipSpec) -> Result<ascend_isa::Kernel, ascend_isa::IsaError> {
            panic!("injected failure: operator build exploded")
        }
    }

    #[test]
    fn batch_isolates_a_panicking_item() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        let good_a = AddRelu::new(1 << 12);
        let bad = PanickingOp;
        let good_b = Gelu::new(1 << 12);
        let ops: Vec<&dyn Operator> = vec![&good_a, &bad, &good_b];
        for workers in [1, 3] {
            let results = pipeline.run_batch_with_workers(&ops, workers);
            assert_eq!(results.len(), 3);
            assert!(results[0].is_ok(), "workers={workers}");
            assert!(results[2].is_ok(), "workers={workers}");
            match &results[1] {
                Err(PipelineError::Panicked { message }) => {
                    assert!(message.contains("operator build exploded"), "{message}");
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
        }
        // The shared state survived the unwind: the pipeline still runs
        // and the counters still respond.
        assert!(pipeline.run(&good_a).is_ok());
        assert!(pipeline.cache_stats().hits > 0);
    }

    #[test]
    fn run_isolated_reclassifies_stage_errors() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        // AvgPool with an enormous tile cannot be laid out -> Invalid.
        let impossible = ascend_ops::AvgPool::new(1 << 14).with_tile(1 << 40);
        match pipeline.run_isolated(&impossible) {
            Err(PipelineError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn external_cancel_preempts_without_fallback_or_retries() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        // Retries and fallback are both enabled, but a signalled token
        // must override them: the caller asked the item to stop.
        let policy = RunPolicy::default().with_retries(3).with_fallback(true);
        let token = CancelToken::new();
        token.cancel();
        match pipeline.run_supervised_with_cancel(&AddRelu::new(1 << 12), &policy, &token) {
            Err(PipelineError::Runtime(SimError::Cancelled { .. })) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let sup = pipeline.supervisor_stats();
        assert_eq!(sup.retries, 0, "a signalled token must stop the retry loop");
        assert_eq!(sup.fallbacks, 0, "preemption must not degrade to the analytical estimate");
        assert!(!pipeline.breaker_is_open(), "preemption is not a backend-health signal");
        // An untriggered token leaves the supervised path fully intact.
        let ok = pipeline
            .run_supervised_with_cancel(&AddRelu::new(1 << 12), &policy, &CancelToken::new())
            .unwrap();
        assert_eq!(ok.fidelity, Fidelity::Simulated);
    }

    #[test]
    fn stage_percentiles_track_uncached_runs() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        for shift in 10..14u64 {
            pipeline.run(&AddRelu::new(1 << shift)).unwrap();
        }
        pipeline.run(&AddRelu::new(1 << 10)).unwrap(); // hit: no sample
        let pct = pipeline.stage_percentiles();
        assert_eq!(pct.total.count, 4, "cache hits must not record latency");
        assert!(pct.total.p50 > 0.0);
        assert!(pct.total.p99 >= pct.total.p50);
        assert!(pct.simulate.p50 > 0.0);
        let footer = pipeline.instrumentation_footer();
        assert!(footer.contains("stage latency ms p50/p95/p99"), "{footer}");
        pipeline.reset();
        assert_eq!(pipeline.stage_percentiles().total.count, 0);
    }

    #[test]
    fn footer_mentions_all_counters() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        pipeline.run(&AddRelu::new(1 << 12)).unwrap();
        pipeline.run(&AddRelu::new(1 << 12)).unwrap();
        let footer = pipeline.instrumentation_footer();
        assert!(footer.contains("1 hits / 1 misses"), "{footer}");
        assert!(footer.contains("1 uncached runs"), "{footer}");
        assert!(footer.contains("[pipeline] engine:"), "{footer}");
    }

    #[test]
    fn engine_throughput_and_fidelity_mix_track_runs() {
        let pipeline = AnalysisPipeline::new(ChipSpec::training());
        assert_eq!(pipeline.engine_throughput(), EngineThroughput::default());
        pipeline.run(&AddRelu::new(1 << 12)).unwrap();
        pipeline.run(&AddRelu::new(1 << 12)).unwrap(); // cache hit: no new events
        let engine = pipeline.engine_throughput();
        assert!(engine.events > 0, "uncached runs must count engine events");
        assert!(engine.sim_secs > 0.0);
        assert!(engine.events_per_sec() > 0.0);
        assert!(engine.ns_per_event() > 0.0);
        assert_eq!(
            pipeline.fidelity_mix(),
            FidelityMix { simulated: 1, analytical: 0, audited: 0 }
        );
        pipeline.reset();
        assert_eq!(pipeline.engine_throughput(), EngineThroughput::default());
        assert_eq!(pipeline.fidelity_mix(), FidelityMix::default());
    }
}
