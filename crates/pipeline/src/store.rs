//! The durable result store: a crash-consistent on-disk cache tier.
//!
//! The in-memory `ResultCache` dies with the process; the
//! [`BatchJournal`](crate::BatchJournal) covers one batch at a time. This
//! module is the layer underneath both: an **append-only segment log** of
//! digest-checked records keyed by the same fingerprints the memory cache
//! uses, built to survive what the journal and sandbox already survive —
//! torn writes, bit rot, version skew, `kill -9` — and to degrade
//! gracefully under what they never see (ENOSPC mid-record, a device
//! refusing fsync).
//!
//! # On-disk format
//!
//! ```text
//! header   := "ASTR" | version u16 LE | context u64 LE          (14 bytes)
//! record   := len u32 LE | fingerprint u64 LE | digest u64 LE | payload
//! digest   := FNV-1a( fingerprint LE bytes ‖ payload )
//! ```
//!
//! The header pins the format version (readers refuse **newer** versions,
//! exactly like the sandbox wire protocol) and the pipeline's context
//! fingerprint, so a store built for one (chip, thresholds) pair is never
//! consulted for another. The record digest covers the key as well as the
//! payload: a bit flip in either is detected, not served.
//!
//! # Recovery
//!
//! Opening a store scans the log once and rebuilds the in-memory
//! fingerprint→offset index. The scan:
//!
//! * **truncates torn tails** — a record cut mid-write (the crash case)
//!   is chopped off, like the journal's torn-line rule;
//! * **skips digest-invalid records** — counted in
//!   [`StoreStats::corrupt_dropped`], never indexed, never served; when
//!   the *length framing itself* is untrustworthy (length beyond the
//!   cap or past EOF), everything from that point on is truncated;
//! * applies **last-wins** — a fingerprint appended twice resolves to the
//!   later valid record, so overwrites need no in-place mutation.
//!
//! # Degradation
//!
//! The store is a cache, not a source of truth: every record can be
//! recomputed. So **no store I/O error ever propagates to a request**.
//! Any failure — ENOSPC, permission, fsync refusal, corruption mid-run —
//! increments [`StoreStats::io_errors`], flips the store into a disabled
//! state for the rest of the run, and lets recomputation serve the
//! request. Callers observe the degradation through
//! [`stats`](ResultStore::stats), never through an `Err`.
//!
//! # Compaction
//!
//! Last-wins appends accumulate dead bytes. Once the log exceeds
//! [`StoreConfig::compact_at_bytes`] **and** the dead fraction exceeds
//! [`StoreConfig::compact_min_dead_fraction`], the live records are
//! rewritten to a fresh sibling file, fsync'd, and atomically renamed
//! over the old segment — a crash at any point leaves either the old
//! valid segment or the new valid segment, never a mix.

use crate::digest::Fnv64;
use crate::lock;
use ascend_faults::DiskFile;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// First bytes of every store segment.
pub const STORE_MAGIC: [u8; 4] = *b"ASTR";

/// Current store format version. Readers refuse anything newer: an old
/// binary must never misparse (or silently clobber) a segment written by
/// a newer one.
pub const STORE_VERSION: u16 = 1;

/// Segment header length: magic (4) + version (2) + context (8).
const HEADER_LEN: usize = 14;

/// Record header length: payload length (4) + fingerprint (8) + digest (8).
const RECORD_HEADER_LEN: usize = 20;

/// Upper bound on a record payload — mirrors the sandbox's frame cap. A
/// length field above this is corruption, not a record.
pub const MAX_RECORD_BYTES: u64 = 64 * 1024 * 1024;

/// Payload of a quarantine tombstone. A normal payload is a JSON object
/// (first byte `{`), so this marker can never collide with real data; it
/// rides the ordinary record framing (digest-checked, last-wins
/// position) without a format-version bump, so older readers skip it as
/// an undecodable-but-valid record instead of misparsing the segment.
const TOMBSTONE_PAYLOAD: &[u8] = b"\x00ASTR-TOMBSTONE\x00";

/// When the store fsyncs appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every `n` appended records (minimum 1). The
    /// default, `EveryN(1)`, makes every completed `put` durable — the
    /// journal's discipline.
    EveryN(u32),
    /// Only sync on explicit [`flush`](ResultStore::flush) (and drain).
    /// Faster, but a crash can lose everything since the last flush.
    OnFlush,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(1)
    }
}

/// Tuning for a [`ResultStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Durability policy for appended records.
    pub fsync: FsyncPolicy,
    /// Compaction is considered once the segment grows past this size.
    pub compact_at_bytes: u64,
    /// ... and runs only when at least this fraction of the segment's
    /// record bytes is dead (superseded or corrupt).
    pub compact_min_dead_fraction: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: FsyncPolicy::default(),
            compact_at_bytes: 8 * 1024 * 1024,
            compact_min_dead_fraction: 0.5,
        }
    }
}

/// Counters of the disk tier, shaped like [`CacheStats`](crate::CacheStats)
/// but with the recovery/corruption story the memory tier cannot have.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Entries recovered by the open-time scan.
    pub recovered: u64,
    /// Records dropped because their digest (or a higher layer's decode)
    /// said they were corrupt — at open or at read time. Never served.
    pub corrupt_dropped: u64,
    /// Bytes truncated as torn/unframeable tails at open.
    pub torn_bytes: u64,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found nothing usable on disk.
    pub misses: u64,
    /// Records appended this run.
    pub appends: u64,
    /// Compactions completed this run.
    pub compactions: u64,
    /// I/O errors absorbed (each one also disables the tier).
    pub io_errors: u64,
    /// Whether the tier is currently disabled (degraded to recomputation).
    pub disabled: bool,
    /// Fingerprints barred by a quarantine tombstone: never indexed,
    /// never served, never re-persisted (see
    /// [`quarantine`](ResultStore::quarantine)).
    #[serde(default)]
    pub quarantined: u64,
}

/// Why a store could not be opened. Unlike run-time I/O (which degrades
/// silently), open-time refusal is loud: consulting the wrong store would
/// be a correctness bug, not a performance one.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying open/read/write failed.
    Io(io::Error),
    /// The file exists but does not start with the `ASTR` magic.
    NotAStore,
    /// The segment was written by a newer format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The segment belongs to a different (chip, thresholds) context.
    ContextMismatch {
        /// Context fingerprint in the header.
        found: u64,
        /// Context fingerprint of the opening pipeline.
        expected: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store I/O error: {err}"),
            StoreError::NotAStore => write!(f, "file is not a result store (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} is newer than supported version {supported}"
            ),
            StoreError::ContextMismatch { found, expected } => write!(
                f,
                "store context {found:#018x} does not match pipeline context {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Where a live record sits in the segment.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Offset of the record header from the start of the file.
    offset: u64,
    /// Payload length.
    len: u32,
    /// Record digest, re-checked on every read.
    digest: u64,
}

impl IndexEntry {
    /// Total on-disk footprint of the record.
    fn total_len(self) -> u64 {
        RECORD_HEADER_LEN as u64 + u64::from(self.len)
    }
}

/// The mutable file-side state, guarded by one mutex. Lock order across
/// the store is **file → index → quarantined → stats**; never acquire
/// them in another order (skipping intermediates is fine).
struct StoreFileState {
    file: Box<dyn DiskFile>,
    /// Current logical end of the segment (next append offset).
    end: u64,
    /// Appends since the last successful `sync_data`.
    unsynced: u32,
    /// Record bytes superseded or dropped — compaction's fuel gauge.
    dead_bytes: u64,
}

impl fmt::Debug for StoreFileState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreFileState")
            .field("end", &self.end)
            .field("unsynced", &self.unsynced)
            .field("dead_bytes", &self.dead_bytes)
            .finish_non_exhaustive()
    }
}

/// The append-only, digest-checked, crash-recovering disk cache tier.
/// See the [module docs](self) for format, recovery, and degradation
/// rules.
#[derive(Debug)]
pub struct ResultStore {
    /// Backing path; `None` for injected in-test files (which then never
    /// compact — compaction needs a sibling path to rename over).
    path: Option<PathBuf>,
    context: u64,
    config: StoreConfig,
    file: Mutex<StoreFileState>,
    index: Mutex<HashMap<u64, IndexEntry>>,
    /// Fingerprints barred by a quarantine tombstone. Populated by the
    /// open-time scan and by [`quarantine`](ResultStore::quarantine);
    /// [`put`](ResultStore::put) refuses these forever.
    quarantined: Mutex<HashSet<u64>>,
    stats: Mutex<StoreStats>,
    /// Once true, every operation is a no-op: the tier has degraded to
    /// pure recomputation for the rest of the run.
    disabled: AtomicBool,
}

/// FNV-1a over the fingerprint (LE bytes) followed by the payload — the
/// record digest. Covering the key means a flipped fingerprint byte can
/// never serve one entry's payload under another's key.
fn record_digest(fingerprint: u64, payload: &[u8]) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write_u64(fingerprint);
    hasher.write(payload);
    hasher.finish()
}

/// A fully framed quarantine tombstone record for `fingerprint`.
fn tombstone_record(fingerprint: u64) -> Vec<u8> {
    let digest = record_digest(fingerprint, TOMBSTONE_PAYLOAD);
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN + TOMBSTONE_PAYLOAD.len());
    record.extend_from_slice(&(TOMBSTONE_PAYLOAD.len() as u32).to_le_bytes());
    record.extend_from_slice(&fingerprint.to_le_bytes());
    record.extend_from_slice(&digest.to_le_bytes());
    record.extend_from_slice(TOMBSTONE_PAYLOAD);
    record
}

fn header_bytes(context: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&STORE_MAGIC);
    header[4..6].copy_from_slice(&STORE_VERSION.to_le_bytes());
    header[6..14].copy_from_slice(&context.to_le_bytes());
    header
}

impl ResultStore {
    /// Opens (or creates) the store at `path` for `context`, with the
    /// default [`StoreConfig`]. Existing contents are recovered by the
    /// scan described in the [module docs](self).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotAStore`] for a file without the magic,
    /// [`StoreError::UnsupportedVersion`] for a newer format,
    /// [`StoreError::ContextMismatch`] for another pipeline's store, and
    /// [`StoreError::Io`] when the open/scan itself fails.
    pub fn open(path: impl AsRef<Path>, context: u64) -> Result<ResultStore, StoreError> {
        ResultStore::open_with_config(path, context, StoreConfig::default())
    }

    /// [`open`](ResultStore::open) with an explicit [`StoreConfig`].
    ///
    /// # Errors
    ///
    /// As [`open`](ResultStore::open).
    pub fn open_with_config(
        path: impl AsRef<Path>,
        context: u64,
        config: StoreConfig,
    ) -> Result<ResultStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(StoreError::Io)?;
            }
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        ResultStore::open_inner(Some(path), Box::new(file), context, config)
    }

    /// Opens a store over an already-open [`DiskFile`] — the seam the
    /// fault-injection tests use to put a
    /// [`FaultyFile`](ascend_faults::FaultyFile) underneath a live store.
    /// Path-less stores never compact (there is no sibling to rename
    /// over); everything else behaves identically.
    ///
    /// # Errors
    ///
    /// As [`open`](ResultStore::open).
    pub fn open_with_file(
        file: Box<dyn DiskFile>,
        context: u64,
        config: StoreConfig,
    ) -> Result<ResultStore, StoreError> {
        ResultStore::open_inner(None, file, context, config)
    }

    fn open_inner(
        path: Option<PathBuf>,
        mut file: Box<dyn DiskFile>,
        context: u64,
        config: StoreConfig,
    ) -> Result<ResultStore, StoreError> {
        let file_len = file.seek(SeekFrom::End(0))?;
        let expected_header = header_bytes(context);
        let mut stats = StoreStats::default();

        if file_len < HEADER_LEN as u64 {
            // Empty, or a header torn by a crash during creation. A torn
            // header is recoverable only if what *is* there matches the
            // header we would write — anything else is another file.
            if file_len > 0 {
                let mut prefix = vec![0u8; usize::try_from(file_len).unwrap_or(HEADER_LEN)];
                file.seek(SeekFrom::Start(0))?;
                file.read_exact(&mut prefix)?;
                if prefix != expected_header[..prefix.len()] {
                    return Err(StoreError::NotAStore);
                }
                stats.torn_bytes += file_len;
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&expected_header)?;
            file.sync_data()?;
            let state = StoreFileState { file, end: HEADER_LEN as u64, unsynced: 0, dead_bytes: 0 };
            return Ok(ResultStore {
                path,
                context,
                config,
                file: Mutex::new(state),
                index: Mutex::new(HashMap::new()),
                quarantined: Mutex::new(HashSet::new()),
                stats: Mutex::new(stats),
                disabled: AtomicBool::new(false),
            });
        }

        let mut header = [0u8; HEADER_LEN];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if header[..4] != STORE_MAGIC {
            return Err(StoreError::NotAStore);
        }
        let found_version = u16::from_le_bytes([header[4], header[5]]);
        if found_version > STORE_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: found_version,
                supported: STORE_VERSION,
            });
        }
        let found_context = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
        if found_context != context {
            return Err(StoreError::ContextMismatch { found: found_context, expected: context });
        }

        // Recovery scan: one pass over the record region, rebuilding the
        // index. Read into memory once — segments are compaction-bounded.
        let body_len = usize::try_from(file_len - HEADER_LEN as u64)
            .map_err(|_| StoreError::Io(io::Error::other("store too large to scan")))?;
        let mut body = vec![0u8; body_len];
        file.read_exact(&mut body)?;

        let mut index: HashMap<u64, IndexEntry> = HashMap::new();
        let mut quarantined: HashSet<u64> = HashSet::new();
        let mut dead_bytes: u64 = 0;
        let mut pos: usize = 0;
        let scan_end = loop {
            if pos == body.len() {
                break pos;
            }
            if pos + RECORD_HEADER_LEN > body.len() {
                // Torn record header.
                stats.torn_bytes += (body.len() - pos) as u64;
                break pos;
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len as u64 > MAX_RECORD_BYTES || pos + RECORD_HEADER_LEN + len > body.len() {
                // Either the length field is corrupt or the payload runs
                // past EOF. We cannot distinguish "torn final record"
                // from "corrupt framing" here, and framing is the only
                // thing letting us skip forward — so stop trusting the
                // file from this point and truncate.
                stats.torn_bytes += (body.len() - pos) as u64;
                break pos;
            }
            let fingerprint =
                u64::from_le_bytes(body[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let digest = u64::from_le_bytes(body[pos + 12..pos + 20].try_into().expect("8 bytes"));
            let payload = &body[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
            let record_len = (RECORD_HEADER_LEN + len) as u64;
            if record_digest(fingerprint, payload) == digest {
                if payload == TOMBSTONE_PAYLOAD {
                    // Quarantine tombstone: whatever was recovered for
                    // this fingerprint is dead, and nothing later may
                    // resurrect it. The tombstone itself stays live
                    // metadata (compaction rewrites it).
                    if let Some(old) = index.remove(&fingerprint) {
                        dead_bytes += old.total_len();
                    }
                    if !quarantined.insert(fingerprint) {
                        // A duplicate tombstone is dead weight.
                        dead_bytes += record_len;
                    }
                } else if quarantined.contains(&fingerprint) {
                    // A record appended after its quarantine tombstone
                    // (a hostile or pre-quarantine writer): never
                    // indexed, never served.
                    dead_bytes += record_len;
                } else {
                    let entry = IndexEntry {
                        offset: HEADER_LEN as u64 + pos as u64,
                        len: len as u32,
                        digest,
                    };
                    if let Some(old) = index.insert(fingerprint, entry) {
                        // Last-wins: the superseded record is dead weight.
                        dead_bytes += old.total_len();
                    }
                }
            } else {
                // Digest-invalid: counted, skipped via the (trusted)
                // framing, never indexed.
                stats.corrupt_dropped += 1;
                dead_bytes += record_len;
            }
            pos += RECORD_HEADER_LEN + len;
        };

        let end = HEADER_LEN as u64 + scan_end as u64;
        if end < file_len {
            file.set_len(end)?;
            file.sync_data()?;
        }
        stats.recovered = index.len() as u64;
        stats.quarantined = quarantined.len() as u64;

        let state = StoreFileState { file, end, unsynced: 0, dead_bytes };
        Ok(ResultStore {
            path,
            context,
            config,
            file: Mutex::new(state),
            index: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(HashSet::new()),
            stats: Mutex::new(stats),
            disabled: AtomicBool::new(false),
        }
        .with_index(index, quarantined))
    }

    fn with_index(self, index: HashMap<u64, IndexEntry>, quarantined: HashSet<u64>) -> ResultStore {
        *lock(&self.index) = index;
        *lock(&self.quarantined) = quarantined;
        self
    }

    /// The context fingerprint this store was opened for.
    #[must_use]
    pub fn context(&self) -> u64 {
        self.context
    }

    /// The backing path (`None` for injected test files).
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of live (indexed) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.index).len()
    }

    /// Whether the store holds no live entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the tier has degraded to a no-op for this run.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Acquire)
    }

    /// Current counters (the `disabled` flag reflects live state).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = *lock(&self.stats);
        stats.disabled = self.is_disabled();
        stats
    }

    /// Absorbs an I/O error: count it, disable the tier, carry on. The
    /// store is a cache — recomputation always serves what disk cannot.
    fn degrade(&self, context: &str, err: &io::Error) {
        let mut stats = lock(&self.stats);
        stats.io_errors += 1;
        stats.disabled = true;
        drop(stats);
        let first = !self.disabled.swap(true, Ordering::AcqRel);
        if first {
            eprintln!("[store] warning: {context} failed ({err}); disk tier disabled for this run");
        }
    }

    /// Looks up `fingerprint`, returning the payload bytes of the newest
    /// digest-valid record. The digest is re-verified on every read: a
    /// record that rotted since open is dropped (counted in
    /// [`StoreStats::corrupt_dropped`]) and reported as a miss, never
    /// served. I/O errors degrade the tier and report a miss.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Vec<u8>> {
        if self.is_disabled() {
            return None;
        }
        let mut state = lock(&self.file);
        let entry = lock(&self.index).get(&fingerprint).copied();
        let Some(entry) = entry else {
            drop(state);
            lock(&self.stats).misses += 1;
            return None;
        };
        match read_record(state.file.as_mut(), fingerprint, entry) {
            Ok(Some(payload)) => {
                drop(state);
                lock(&self.stats).hits += 1;
                Some(payload)
            }
            Ok(None) => {
                // Bit rot since open: drop the entry, recompute upstream.
                lock(&self.index).remove(&fingerprint);
                state.dead_bytes += entry.total_len();
                drop(state);
                let mut stats = lock(&self.stats);
                stats.corrupt_dropped += 1;
                stats.misses += 1;
                None
            }
            Err(err) => {
                drop(state);
                self.degrade("read", &err);
                lock(&self.stats).misses += 1;
                None
            }
        }
    }

    /// Appends a record for `fingerprint`, fsyncing per the configured
    /// [`FsyncPolicy`], superseding any earlier record (last-wins), and
    /// compacting when the thresholds say so. Infallible by design:
    /// errors degrade the tier (a torn partial append is rolled back
    /// best-effort; recovery truncates it otherwise), oversized payloads
    /// are skipped, and [quarantined](ResultStore::quarantine)
    /// fingerprints are refused forever.
    pub fn put(&self, fingerprint: u64, payload: &[u8]) {
        if self.is_disabled() || payload.len() as u64 > MAX_RECORD_BYTES {
            return;
        }
        let digest = record_digest(fingerprint, payload);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&u32::try_from(payload.len()).expect("bounded").to_le_bytes());
        record.extend_from_slice(&fingerprint.to_le_bytes());
        record.extend_from_slice(&digest.to_le_bytes());
        record.extend_from_slice(payload);

        let mut state = lock(&self.file);
        // Checked under the file lock so a concurrent quarantine cannot
        // interleave between the check and the append.
        if lock(&self.quarantined).contains(&fingerprint) {
            return;
        }
        let offset = state.end;
        let wrote =
            state.file.seek(SeekFrom::Start(offset)).and_then(|_| state.file.write_all(&record));
        if let Err(err) = wrote {
            // Roll the torn partial back so the in-file tail stays
            // record-aligned; if even that fails, the open-time scan
            // truncates it at the next run.
            let _ = state.file.set_len(offset);
            drop(state);
            self.degrade("append", &err);
            return;
        }
        state.end = offset + record.len() as u64;
        state.unsynced += 1;

        let sync_now = match self.config.fsync {
            FsyncPolicy::EveryN(n) => state.unsynced >= n.max(1),
            FsyncPolicy::OnFlush => false,
        };
        if sync_now {
            if let Err(err) = state.file.sync_data() {
                drop(state);
                self.degrade("fsync", &err);
                return;
            }
            state.unsynced = 0;
        }

        let entry = IndexEntry { offset, len: payload.len() as u32, digest };
        if let Some(old) = lock(&self.index).insert(fingerprint, entry) {
            state.dead_bytes += old.total_len();
        }
        lock(&self.stats).appends += 1;
        self.maybe_compact(state);
    }

    /// Syncs any unsynced appends to the device (the drain-time hook for
    /// [`FsyncPolicy::OnFlush`] stores). Errors degrade, as always.
    pub fn flush(&self) {
        if self.is_disabled() {
            return;
        }
        let mut state = lock(&self.file);
        if state.unsynced == 0 {
            return;
        }
        match state.file.sync_data() {
            Ok(()) => state.unsynced = 0,
            Err(err) => {
                drop(state);
                self.degrade("flush", &err);
            }
        }
    }

    /// Drops an entry whose payload the *caller* found unusable (e.g. it
    /// failed to deserialize despite a valid digest — format drift). The
    /// record is counted as corrupt and its earlier hit uncounted, so
    /// `hits` keeps meaning "results actually served".
    pub fn discard(&self, fingerprint: u64) {
        let mut state = lock(&self.file);
        let removed = lock(&self.index).remove(&fingerprint);
        if let Some(entry) = removed {
            state.dead_bytes += entry.total_len();
            drop(state);
            let mut stats = lock(&self.stats);
            stats.corrupt_dropped += 1;
            stats.hits = stats.hits.saturating_sub(1);
            stats.misses += 1;
        }
    }

    /// Whether `fingerprint` is barred by a quarantine tombstone.
    #[must_use]
    pub fn is_quarantined(&self, fingerprint: u64) -> bool {
        lock(&self.quarantined).contains(&fingerprint)
    }

    /// Quarantines `fingerprint`: the live record (if any) is dropped
    /// from the index, a tombstone is appended and fsynced so recovery
    /// never resurrects an earlier record, and every future
    /// [`put`](ResultStore::put) of this fingerprint is refused.
    ///
    /// This is the audit tier's disk-side purge for a fingerprint whose
    /// served result diverged from the oracle: the defective bytes must
    /// not survive a restart. The in-memory bar takes effect even when
    /// the tier is disabled (or the tombstone append fails and degrades
    /// it) — durability of the bar is then best-effort, like every other
    /// write on a failing device.
    pub fn quarantine(&self, fingerprint: u64) {
        let mut state = lock(&self.file);
        {
            let mut index = lock(&self.index);
            let mut quarantined = lock(&self.quarantined);
            if !quarantined.insert(fingerprint) {
                return;
            }
            if let Some(old) = index.remove(&fingerprint) {
                state.dead_bytes += old.total_len();
            }
        }
        lock(&self.stats).quarantined += 1;
        if self.is_disabled() {
            return;
        }
        let record = tombstone_record(fingerprint);
        let offset = state.end;
        let wrote =
            state.file.seek(SeekFrom::Start(offset)).and_then(|_| state.file.write_all(&record));
        if let Err(err) = wrote {
            let _ = state.file.set_len(offset);
            drop(state);
            self.degrade("tombstone append", &err);
            return;
        }
        state.end = offset + record.len() as u64;
        // A tombstone is a correctness marker, not a cache entry: it is
        // always synced immediately, regardless of the fsync policy.
        if let Err(err) = state.file.sync_data() {
            drop(state);
            self.degrade("tombstone fsync", &err);
            return;
        }
        state.unsynced = 0;
    }

    /// Compacts when the segment is both big and mostly dead. Takes the
    /// held file lock by value so callers cannot accidentally re-lock.
    fn maybe_compact(&self, mut state: std::sync::MutexGuard<'_, StoreFileState>) {
        if self.path.is_none() || state.end < self.config.compact_at_bytes {
            return;
        }
        let record_bytes = state.end - HEADER_LEN as u64;
        if record_bytes == 0 {
            return;
        }
        let dead_fraction = state.dead_bytes as f64 / record_bytes as f64;
        if dead_fraction < self.config.compact_min_dead_fraction {
            return;
        }
        let mut index = lock(&self.index);
        let quarantined = lock(&self.quarantined);
        match self.compact_locked(&mut state, &mut index, &quarantined) {
            Ok(()) => {
                drop(quarantined);
                drop(index);
                drop(state);
                lock(&self.stats).compactions += 1;
            }
            Err(err) => {
                drop(quarantined);
                drop(index);
                drop(state);
                // The old segment is still intact and valid; disabling
                // anyway keeps the degradation rule uniform: one I/O
                // error, tier off, recomputation takes over.
                self.degrade("compaction", &err);
            }
        }
    }

    /// Rewrites the live records (in append order) to a fresh sibling
    /// segment — followed by one tombstone per quarantined fingerprint,
    /// so the bar survives compaction — fsyncs it, and atomically
    /// renames it over the old one.
    fn compact_locked(
        &self,
        state: &mut StoreFileState,
        index: &mut HashMap<u64, IndexEntry>,
        quarantined: &HashSet<u64>,
    ) -> io::Result<()> {
        let path = self.path.as_ref().expect("compaction requires a backing path");
        let tmp_path = path.with_extension("compact-tmp");

        let mut live: Vec<(u64, IndexEntry)> = index.iter().map(|(k, v)| (*k, *v)).collect();
        live.sort_by_key(|(_, entry)| entry.offset);

        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&header_bytes(self.context))?;

        let mut new_index = HashMap::with_capacity(live.len());
        let mut pos = HEADER_LEN as u64;
        for (fingerprint, entry) in live {
            let payload =
                read_record(state.file.as_mut(), fingerprint, entry)?.ok_or_else(|| {
                    io::Error::other("record failed digest verification during compaction")
                })?;
            let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
            record.extend_from_slice(&entry.len.to_le_bytes());
            record.extend_from_slice(&fingerprint.to_le_bytes());
            record.extend_from_slice(&entry.digest.to_le_bytes());
            record.extend_from_slice(&payload);
            tmp.write_all(&record)?;
            new_index.insert(
                fingerprint,
                IndexEntry { offset: pos, len: entry.len, digest: entry.digest },
            );
            pos += entry.total_len();
        }
        let mut barred: Vec<u64> = quarantined.iter().copied().collect();
        barred.sort_unstable();
        for fingerprint in barred {
            let record = tombstone_record(fingerprint);
            tmp.write_all(&record)?;
            pos += record.len() as u64;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, path)?;

        let file = OpenOptions::new().read(true).write(true).open(path)?;
        state.file = Box::new(file);
        state.end = pos;
        state.unsynced = 0;
        state.dead_bytes = 0;
        *index = new_index;
        Ok(())
    }
}

/// What an offline [`ResultStore::verify`] scan found in a segment.
///
/// The scan is read-only and never mutates the file — unlike opening,
/// which truncates torn tails. It is the ops tool behind
/// `bench store verify`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreVerifyReport {
    /// Format version from the header.
    pub version: u16,
    /// Context fingerprint from the header. The scan cannot know which
    /// pipeline *should* own the segment — compare against an expected
    /// context to detect a foreign store.
    pub context: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Live (servable) records after last-wins and quarantine rules.
    pub live: u64,
    /// Valid records superseded by a later record or tombstone.
    pub superseded: u64,
    /// Records whose digest does not match their bytes.
    pub digest_invalid: u64,
    /// Unframeable tail bytes (torn final record or corrupt framing).
    pub torn_bytes: u64,
    /// Quarantine tombstones (distinct barred fingerprints).
    pub tombstones: u64,
    /// Valid records appended *after* their fingerprint's tombstone —
    /// a quarantine violation no compliant writer produces.
    pub resurrected: u64,
}

impl StoreVerifyReport {
    /// Whether the segment is fully intact: no corruption, no torn
    /// bytes, no quarantine violations. Superseded records and
    /// tombstones are normal operation, not damage.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.digest_invalid == 0 && self.torn_bytes == 0 && self.resurrected == 0
    }
}

impl fmt::Display for StoreVerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "version {} context {:#018x}: {} bytes, {} live, {} superseded, \
             {} digest-invalid, {} torn bytes, {} tombstones, {} resurrected — {}",
            self.version,
            self.context,
            self.file_bytes,
            self.live,
            self.superseded,
            self.digest_invalid,
            self.torn_bytes,
            self.tombstones,
            self.resurrected,
            if self.is_clean() { "clean" } else { "CORRUPT" },
        )
    }
}

impl ResultStore {
    /// Scans the segment at `path` **read-only** and reports what a
    /// recovery would find: torn bytes, digest-invalid records,
    /// superseded records, quarantine tombstones, and quarantine
    /// violations. Nothing is truncated or repaired; run it on a live
    /// segment, a backup, or a foreign file safely.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read,
    /// [`StoreError::NotAStore`] when the magic is wrong, and
    /// [`StoreError::UnsupportedVersion`] for a newer format. A torn
    /// header (shorter than [`HEADER_LEN`] bytes but magic-prefixed) is
    /// reported as torn bytes, not an error — recovery would
    /// reinitialize it.
    pub fn verify(path: impl AsRef<Path>) -> Result<StoreVerifyReport, StoreError> {
        let bytes = std::fs::read(path.as_ref())?;
        let magic_len = bytes.len().min(4);
        if bytes[..magic_len] != STORE_MAGIC[..magic_len] {
            return Err(StoreError::NotAStore);
        }
        let mut report = StoreVerifyReport { file_bytes: bytes.len() as u64, ..Default::default() };
        if bytes.len() < HEADER_LEN {
            report.torn_bytes = bytes.len() as u64;
            return Ok(report);
        }
        report.version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if report.version > STORE_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: report.version,
                supported: STORE_VERSION,
            });
        }
        report.context = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));

        let body = &bytes[HEADER_LEN..];
        let mut live: HashSet<u64> = HashSet::new();
        let mut quarantined: HashSet<u64> = HashSet::new();
        let mut pos = 0usize;
        while pos < body.len() {
            if pos + RECORD_HEADER_LEN > body.len() {
                report.torn_bytes += (body.len() - pos) as u64;
                break;
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len as u64 > MAX_RECORD_BYTES || pos + RECORD_HEADER_LEN + len > body.len() {
                report.torn_bytes += (body.len() - pos) as u64;
                break;
            }
            let fingerprint =
                u64::from_le_bytes(body[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let digest = u64::from_le_bytes(body[pos + 12..pos + 20].try_into().expect("8 bytes"));
            let payload = &body[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
            if record_digest(fingerprint, payload) != digest {
                report.digest_invalid += 1;
            } else if payload == TOMBSTONE_PAYLOAD {
                if live.remove(&fingerprint) {
                    report.superseded += 1;
                }
                quarantined.insert(fingerprint);
            } else if quarantined.contains(&fingerprint) {
                report.resurrected += 1;
            } else if !live.insert(fingerprint) {
                report.superseded += 1;
            }
            pos += RECORD_HEADER_LEN + len;
        }
        report.live = live.len() as u64;
        report.tombstones = quarantined.len() as u64;
        Ok(report)
    }
}

/// Reads and fully re-verifies one record: header fields must match the
/// index entry and the digest must match the payload. `Ok(None)` means
/// the bytes on disk no longer agree with what was indexed — corruption,
/// not an I/O failure.
fn read_record(
    file: &mut dyn DiskFile,
    fingerprint: u64,
    entry: IndexEntry,
) -> io::Result<Option<Vec<u8>>> {
    file.seek(SeekFrom::Start(entry.offset))?;
    let mut header = [0u8; RECORD_HEADER_LEN];
    file.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let disk_fingerprint = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let disk_digest = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len != entry.len || disk_fingerprint != fingerprint || disk_digest != entry.digest {
        return Ok(None);
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    if record_digest(fingerprint, &payload) != entry.digest {
        return Ok(None);
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_faults::{corrupt_file, DiskFault, FaultyFile};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ascend-store-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CTX: u64 = 0xDEAD_BEEF_CAFE_F00D;

    #[test]
    fn roundtrip_and_reopen_recovers_everything() {
        let dir = tempdir("roundtrip");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"one");
            store.put(2, b"two");
            assert_eq!(store.get(1).as_deref(), Some(&b"one"[..]));
            assert_eq!(store.stats().appends, 2);
            assert_eq!(store.stats().hits, 1);
        }
        let store = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(store.stats().recovered, 2);
        assert_eq!(store.get(2).as_deref(), Some(&b"two"[..]));
        assert_eq!(store.get(3), None);
        assert_eq!(store.stats().misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_wins_on_duplicate_fingerprints() {
        let dir = tempdir("lastwins");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(7, b"old");
            store.put(7, b"new");
            assert_eq!(store.get(7).as_deref(), Some(&b"new"[..]));
            assert_eq!(store.len(), 1);
        }
        let store = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(store.stats().recovered, 1);
        assert_eq!(store.get(7).as_deref(), Some(&b"new"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = tempdir("torn");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"complete");
            store.put(2, b"will be torn");
        }
        corrupt_file(&path, DiskFault::TruncateTailBytes(5)).unwrap();
        let store = ResultStore::open(&path, CTX).unwrap();
        let stats = store.stats();
        assert_eq!(stats.recovered, 1, "only the complete record survives");
        assert!(stats.torn_bytes > 0);
        assert_eq!(store.get(1).as_deref(), Some(&b"complete"[..]));
        assert_eq!(store.get(2), None);
        // The truncation is physical: reopening again finds no new tears.
        drop(store);
        let again = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(again.stats().torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_rot_is_dropped_not_served() {
        let dir = tempdir("bitrot");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"aaaa");
            store.put(2, b"bbbb");
        }
        // Flip one payload bit of the first record: header 14 + record
        // header 20 puts its payload at offset 34.
        corrupt_file(&path, DiskFault::FlipBits { offset: 34, mask: 0x40 }).unwrap();
        let store = ResultStore::open(&path, CTX).unwrap();
        let stats = store.stats();
        assert_eq!(stats.corrupt_dropped, 1);
        assert_eq!(stats.recovered, 1, "the later record still recovers via framing");
        assert_eq!(store.get(1), None, "rotted record must never be served");
        assert_eq!(store.get(2).as_deref(), Some(&b"bbbb"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rot_after_open_is_caught_at_read_time() {
        let dir = tempdir("liverot");
        let path = dir.join("store.astr");
        let store = ResultStore::open(&path, CTX).unwrap();
        store.put(9, b"payload");
        // Corrupt behind the live store's back, then read through it.
        corrupt_file(&path, DiskFault::FlipBits { offset: 36, mask: 0x01 }).unwrap();
        assert_eq!(store.get(9), None);
        let stats = store.stats();
        assert_eq!(stats.corrupt_dropped, 1);
        assert_eq!(stats.hits, 0);
        assert!(!stats.disabled, "corruption is not an I/O error");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refuses_foreign_newer_and_mismatched_stores() {
        let dir = tempdir("refuse");
        let not_a_store = dir.join("not.astr");
        std::fs::write(&not_a_store, b"this is sixteen+").unwrap();
        assert!(matches!(ResultStore::open(&not_a_store, CTX), Err(StoreError::NotAStore)));

        let newer = dir.join("newer.astr");
        let mut header = header_bytes(CTX);
        header[4..6].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        std::fs::write(&newer, header).unwrap();
        assert!(matches!(
            ResultStore::open(&newer, CTX),
            Err(StoreError::UnsupportedVersion { found, supported })
                if found == STORE_VERSION + 1 && supported == STORE_VERSION
        ));

        let other = dir.join("other.astr");
        ResultStore::open(&other, CTX ^ 1).unwrap();
        assert!(matches!(
            ResultStore::open(&other, CTX),
            Err(StoreError::ContextMismatch { found, expected })
                if found == (CTX ^ 1) && expected == CTX
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_from_creation_crash_is_reinitialized() {
        let dir = tempdir("tornheader");
        let path = dir.join("store.astr");
        std::fs::write(&path, &header_bytes(CTX)[..6]).unwrap();
        let store = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(store.stats().torn_bytes, 6);
        store.put(1, b"fresh");
        drop(store);
        assert_eq!(ResultStore::open(&path, CTX).unwrap().stats().recovered, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_length_framing_truncates_the_rest() {
        let dir = tempdir("badlen");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"good");
            store.put(2, b"also good");
        }
        // Blow up the second record's length field (offset 14 + 20 + 4).
        corrupt_file(&path, DiskFault::FlipBits { offset: 38 + 3, mask: 0x80 }).unwrap();
        let store = ResultStore::open(&path, CTX).unwrap();
        let stats = store.stats();
        assert_eq!(stats.recovered, 1);
        assert!(stats.torn_bytes > 0, "untrustworthy framing truncates from there");
        assert_eq!(store.get(1).as_deref(), Some(&b"good"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_mid_append_degrades_and_rolls_back() {
        let dir = tempdir("enospc");
        let path = dir.join("store.astr");
        // Budget: header (14) + first record (20 + 4) + 10 bytes of the
        // second — the second append tears mid-record.
        let file = FaultyFile::create(&path).unwrap().fail_writes_after(14 + 24 + 10);
        let store =
            ResultStore::open_with_file(Box::new(file), CTX, StoreConfig::default()).unwrap();
        store.put(1, b"aaaa");
        assert!(!store.is_disabled());
        store.put(2, b"bbbb");
        let stats = store.stats();
        assert!(stats.disabled, "ENOSPC must disable the tier");
        assert_eq!(stats.io_errors, 1);
        assert_eq!(stats.appends, 1);
        // Disabled tier answers nothing and accepts nothing, quietly.
        assert_eq!(store.get(1), None);
        store.put(3, b"cccc");
        assert_eq!(store.stats().appends, 1);
        // The torn second record was rolled back (or will be truncated at
        // reopen): recovery sees exactly the one durable record.
        drop(store);
        let reopened = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(reopened.stats().recovered, 1);
        assert_eq!(reopened.get(1).as_deref(), Some(&b"aaaa"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_refusal_degrades_without_failing_the_caller() {
        let dir = tempdir("fsyncrefusal");
        let path = dir.join("store.astr");
        // The header sync happens before the refusal knob matters only if
        // we enable it post-open — so write the header with a clean file,
        // then reopen through a refusing one.
        ResultStore::open(&path, CTX).unwrap();
        let file = FaultyFile::open(&path).unwrap().refuse_fsync();
        let store =
            ResultStore::open_with_file(Box::new(file), CTX, StoreConfig::default()).unwrap();
        store.put(1, b"data");
        let stats = store.stats();
        assert!(stats.disabled);
        assert_eq!(stats.io_errors, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_flush_policy_defers_sync_to_flush() {
        let dir = tempdir("onflush");
        let path = dir.join("store.astr");
        ResultStore::open(&path, CTX).unwrap();
        let file = FaultyFile::open(&path).unwrap().refuse_fsync();
        let config = StoreConfig { fsync: FsyncPolicy::OnFlush, ..StoreConfig::default() };
        let store = ResultStore::open_with_file(Box::new(file), CTX, config).unwrap();
        store.put(1, b"data");
        assert!(!store.is_disabled(), "OnFlush must not sync per append");
        store.flush();
        assert!(store.is_disabled(), "flush hits the refusing device");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_dead_bytes_and_survives_reopen() {
        let dir = tempdir("compact");
        let path = dir.join("store.astr");
        let config = StoreConfig {
            fsync: FsyncPolicy::EveryN(1),
            compact_at_bytes: 256,
            compact_min_dead_fraction: 0.5,
        };
        let store = ResultStore::open_with_config(&path, CTX, config).unwrap();
        // Overwrite one key until most of the segment is dead.
        let payload = [0x5Au8; 64];
        for _ in 0..16 {
            store.put(42, &payload);
        }
        store.put(43, b"live too");
        let stats = store.stats();
        assert!(stats.compactions >= 1, "dead-heavy segment must compact: {stats:?}");
        assert!(!stats.disabled);
        assert_eq!(store.get(42).as_deref(), Some(&payload[..]));
        assert_eq!(store.get(43).as_deref(), Some(&b"live too"[..]));
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(size < 256 + 2 * (RECORD_HEADER_LEN as u64 + 64), "compacted file stays small");
        drop(store);
        let reopened = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(reopened.stats().recovered, 2);
        assert_eq!(reopened.get(42).as_deref(), Some(&payload[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_payloads_are_skipped_not_fatal() {
        let dir = tempdir("oversize");
        let path = dir.join("store.astr");
        let store = ResultStore::open(&path, CTX).unwrap();
        // Don't allocate 64 MiB in a unit test: a custom tiny config
        // can't lower MAX_RECORD_BYTES, so fake it with the check's own
        // boundary — a payload just over the cap would allocate, so this
        // test documents the guard by exercising the boundary arithmetic.
        assert!(MAX_RECORD_BYTES < u64::from(u32::MAX), "length field must hold the cap");
        store.put(1, b"normal");
        assert_eq!(store.stats().appends, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_bars_memory_disk_and_reopen() {
        let dir = tempdir("quarantine");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"poisoned");
            store.put(2, b"fine");
            store.quarantine(1);
            assert!(store.is_quarantined(1));
            assert!(!store.is_quarantined(2));
            assert_eq!(store.get(1), None, "quarantined must not be served");
            assert_eq!(store.get(2).as_deref(), Some(&b"fine"[..]));
            // Re-persisting the barred fingerprint is silently refused.
            store.put(1, b"resurrection attempt");
            assert_eq!(store.get(1), None);
            assert_eq!(store.stats().quarantined, 1);
            assert_eq!(store.len(), 1);
        }
        // The tombstone is durable: recovery never resurrects the key,
        // and the bar still refuses new writes after restart.
        let store = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(store.stats().recovered, 1);
        assert_eq!(store.stats().quarantined, 1);
        assert!(store.is_quarantined(1));
        assert_eq!(store.get(1), None);
        store.put(1, b"still refused");
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(2).as_deref(), Some(&b"fine"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_survives_compaction() {
        let dir = tempdir("quarcompact");
        let path = dir.join("store.astr");
        let config = StoreConfig {
            fsync: FsyncPolicy::EveryN(1),
            compact_at_bytes: 256,
            compact_min_dead_fraction: 0.5,
        };
        {
            let store = ResultStore::open_with_config(&path, CTX, config).unwrap();
            store.put(1, b"to be barred");
            store.quarantine(1);
            // Churn another key until compaction rewrites the segment.
            let payload = [0x5Au8; 64];
            for _ in 0..16 {
                store.put(42, &payload);
            }
            assert!(store.stats().compactions >= 1);
            assert!(store.is_quarantined(1));
        }
        let reopened = ResultStore::open(&path, CTX).unwrap();
        assert!(reopened.is_quarantined(1), "compaction must preserve the tombstone");
        assert_eq!(reopened.get(1), None);
        assert_eq!(reopened.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_clean_segments() {
        let dir = tempdir("verifyclean");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"one");
            store.put(2, b"two");
            store.put(2, b"two again"); // supersedes
            store.quarantine(1);
        }
        let report = ResultStore::verify(&path).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.version, STORE_VERSION);
        assert_eq!(report.context, CTX);
        assert_eq!(report.live, 1, "key 2 only: key 1 is barred");
        assert_eq!(report.superseded, 2, "old key-2 record and tombstoned key-1 record");
        assert_eq!(report.tombstones, 1);
        assert_eq!(report.resurrected, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_detects_rot_tears_and_resurrections() {
        let dir = tempdir("verifydirty");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.put(1, b"aaaa");
            store.put(2, b"bbbb");
            store.quarantine(3);
        }
        // A compliant writer never appends after a tombstone; forge one.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            let digest = record_digest(3, b"zombie");
            file.write_all(&(b"zombie".len() as u32).to_le_bytes()).unwrap();
            file.write_all(&3u64.to_le_bytes()).unwrap();
            file.write_all(&digest.to_le_bytes()).unwrap();
            file.write_all(b"zombie").unwrap();
        }
        corrupt_file(&path, DiskFault::FlipBits { offset: 34, mask: 0x40 }).unwrap();
        corrupt_file(&path, DiskFault::TruncateTailBytes(2)).unwrap();
        let report = ResultStore::verify(&path).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.digest_invalid, 1, "{report}");
        assert_eq!(report.resurrected, 0, "the truncated zombie is torn, not resurrected");
        assert!(report.torn_bytes > 0);
        assert_eq!(report.tombstones, 1);

        // Verify never mutates: the torn tail is still there afterwards,
        // so a full (untorn) zombie now counts as resurrected.
        let before = std::fs::metadata(&path).unwrap().len();
        ResultStore::verify(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[0u8; 2]).unwrap(); // heal the torn zombie tail
        }
        let healed = ResultStore::verify(&path).unwrap();
        assert_eq!(healed.digest_invalid, 2, "healed tail bytes were zeroed, digest now wrong");

        // Errors mirror open(): bad magic and newer versions refuse.
        let not_a_store = dir.join("not.astr");
        std::fs::write(&not_a_store, b"nope").unwrap();
        assert!(matches!(ResultStore::verify(&not_a_store), Err(StoreError::NotAStore)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_counts_a_true_resurrection() {
        let dir = tempdir("verifyzombie");
        let path = dir.join("store.astr");
        {
            let store = ResultStore::open(&path, CTX).unwrap();
            store.quarantine(7);
        }
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            let digest = record_digest(7, b"zombie");
            file.write_all(&(b"zombie".len() as u32).to_le_bytes()).unwrap();
            file.write_all(&7u64.to_le_bytes()).unwrap();
            file.write_all(&digest.to_le_bytes()).unwrap();
            file.write_all(b"zombie").unwrap();
        }
        let report = ResultStore::verify(&path).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.resurrected, 1, "{report}");
        assert_eq!(report.live, 0);
        // Recovery agrees with verify: the zombie is not served.
        let store = ResultStore::open(&path, CTX).unwrap();
        assert_eq!(store.get(7), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discard_uncounts_the_served_hit() {
        let dir = tempdir("discard");
        let path = dir.join("store.astr");
        let store = ResultStore::open(&path, CTX).unwrap();
        store.put(5, b"not json at all");
        assert!(store.get(5).is_some());
        store.discard(5);
        let stats = store.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.corrupt_dropped, 1);
        assert_eq!(store.get(5), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
