//! Closed-form analytical time estimate — the degradation target when
//! simulation is preempted or keeps failing.
//!
//! The estimate mirrors the engine's per-instruction duration model
//! (compute issue cost + ops/peak, transfer efficiency curve, flag
//! cost) but replaces event-driven scheduling with the roofline
//! abstraction from the paper: each component queue executes its
//! instructions serially, queues overlap perfectly, and the kernel takes
//! `max` over the per-queue serial times plus the serial dispatcher and
//! barrier overheads. That ignores cross-queue synchronization stalls
//! and spatial-dependency serialization, so the estimate is an
//! **optimistic lower bound** of the simulated time — which is exactly
//! what the roofline analysis downstream expects as "peak-shape" input.

use ascend_arch::{ArchError, ChipSpec, Component};
use ascend_isa::{Instruction, Kernel};
use std::collections::BTreeMap;

/// Per-queue serial active cycles plus the estimated end-to-end time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AnalyticEstimate {
    /// Serial execution cycles per component queue (only busy queues).
    pub active_cycles: BTreeMap<Component, f64>,
    /// Estimated end-to-end cycles: `max(active) + dispatch + barriers`.
    pub total_cycles: f64,
}

/// Estimates `kernel` on `chip` without simulating.
///
/// # Errors
///
/// Returns [`ArchError`] when the kernel references a compute rate or
/// transfer path missing from the spec — the same lookups the simulator
/// performs, so a kernel that simulates cleanly always estimates
/// cleanly.
pub(crate) fn estimate(kernel: &Kernel, chip: &ChipSpec) -> Result<AnalyticEstimate, ArchError> {
    let mut active_cycles: BTreeMap<Component, f64> = BTreeMap::new();
    let mut dispatched = 0u64;
    let mut barriers = 0u64;
    for instr in kernel.instructions() {
        match instr {
            Instruction::Compute(c) => {
                let peak = chip.peak_ops_per_cycle(c.unit, c.precision)?;
                let cycles = chip.compute_issue_cycles + c.ops as f64 / peak;
                *active_cycles.entry(Component::from_unit(c.unit)).or_default() += cycles;
            }
            Instruction::Transfer(t) => {
                let spec = chip.transfer(t.path)?;
                *active_cycles.entry(t.path.component()).or_default() += spec.cycles(t.bytes());
            }
            Instruction::SetFlag { queue, .. } | Instruction::WaitFlag { queue, .. } => {
                *active_cycles.entry(*queue).or_default() += chip.flag_cycles;
            }
            Instruction::Barrier => barriers += 1,
        }
        dispatched += 1;
    }
    let busiest = active_cycles.values().copied().fold(0.0f64, f64::max);
    let total_cycles =
        busiest + chip.dispatch_cycles * dispatched as f64 + chip.barrier_cycles * barriers as f64;
    Ok(AnalyticEstimate { active_cycles, total_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};
    use ascend_sim::Simulator;

    fn sample() -> Kernel {
        let gm = Region::new(Buffer::Gm, 0, 4096);
        let ub = Region::new(Buffer::Ub, 0, 4096);
        let mut b = KernelBuilder::new("sample");
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 2048, vec![ub], vec![ub]);
        b.build()
    }

    #[test]
    fn estimate_is_positive_and_covers_busy_queues() {
        let chip = ChipSpec::training();
        let est = estimate(&sample(), &chip).unwrap();
        assert!(est.total_cycles > 0.0);
        assert!(est.active_cycles[&Component::MteGm] > 0.0);
        assert!(est.active_cycles[&Component::Vector] > 0.0);
    }

    #[test]
    fn estimate_lower_bounds_the_simulator_within_sync_slack() {
        // The estimate ignores cross-queue waiting, so the simulated
        // time can only exceed it (it pays the same per-instruction
        // durations plus stalls).
        let chip = ChipSpec::training();
        let kernel = sample();
        let est = estimate(&kernel, &chip).unwrap();
        let trace = Simulator::new(chip).simulate(&kernel).unwrap();
        assert!(
            est.total_cycles <= trace.total_cycles() + 1e-9,
            "analytic {} must lower-bound simulated {}",
            est.total_cycles,
            trace.total_cycles()
        );
    }

    #[test]
    fn missing_rate_is_an_arch_error() {
        // The training spec's cube has no FP32 rate; the estimate must
        // surface the same lookup failure the simulator would.
        let mut b = KernelBuilder::new("unsupported");
        b.compute(ComputeUnit::Cube, Precision::Fp32, 64, vec![], vec![]);
        assert!(matches!(
            estimate(&b.build(), &ChipSpec::training()),
            Err(ArchError::UnsupportedPrecision { .. })
        ));
    }
}
