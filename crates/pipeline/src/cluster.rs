//! The fault-tolerant sharded cluster tier: N supervised shard
//! processes behind one consistent-hash router.
//!
//! The [`AnalysisService`](crate::AnalysisService) hardened a *single*
//! process; this module scales the same guarantees horizontally. A
//! [`ClusterService`] owns `N` long-lived shard processes — the same
//! binary re-executed with the [`CLUSTER_SHARD_ENV`] marker, speaking
//! the sandbox tier's `ASBX` framed wire protocol — and routes every
//! request by consistent hash of its pipeline cache fingerprint:
//!
//! * **Consistent-hash ring.** [`HashRing`] places
//!   [`DEFAULT_VIRTUAL_NODES`] points per shard on a 64-bit ring built
//!   from the workspace's shared FNV-1a ([`crate::digest`]). A key is
//!   owned by the first point at or after it; when a shard dies, only
//!   *its* keys move to their ring successors (≈ `1/N` of the keyspace),
//!   so per-shard caches stay hot through membership churn.
//! * **Shard failure detection.** Each shard has a dedicated dispatcher
//!   thread enforcing the sandbox tier's containment from outside:
//!   heartbeat silence, a wall-clock kill, and an RSS budget
//!   (inherited from [`SandboxConfig`]), plus exit-status taxonomy for
//!   children that die on their own (`kill -9` included).
//! * **Failover.** In-flight and queued requests of a dead shard are
//!   re-routed to the ring successor, bounded by
//!   [`ClusterConfig::max_failovers`] per request. Ticket accounting is
//!   cluster-wide and exactly-once: `completed_ok + failed +
//!   shed_deadline + drain_flushed == accepted` holds across any shard
//!   death, because tickets complete idempotently (first write wins).
//! * **Respawn with backoff.** A dead shard is respawned under seeded
//!   exponential backoff; consecutive failures open a per-shard circuit
//!   breaker (visible in [`ShardHealth`]) that manifests as growing
//!   backoff rather than permanent eviction. A successful warm-up ping
//!   closes it.
//! * **Durable rewarm.** With [`ClusterConfig::store_dir`] set, each
//!   shard opens its own context-pinned
//!   [`ResultStore`](crate::ResultStore) segment
//!   (`shard-<index>-<context>.astr`), so a respawned shard answers
//!   repeat traffic from disk instead of cold-computing.
//! * **Quarantine broadcast.** [`ClusterService::quarantine`] tombstones
//!   a fingerprint cluster-wide: every live shard gets the tombstone on
//!   its next frame (an idle shard is nudged with a control ping), and
//!   every respawn warm-up carries the *full* quarantine set — no shard
//!   ever serves a tombstoned result, before or after a kill.
//! * **Graceful drain.** [`ClusterService::drain`] stops admissions,
//!   flushes queued tickets, cancels in-flight attempts, then kills the
//!   children. Idempotent and `Drop`-safe.
//!
//! Everything observable is surfaced in a [`ClusterHealth`] snapshot:
//! per-shard depth, in-flight state, breaker, respawns, pids, and
//! counters, plus the ring generation (bumped on every membership
//! change).
//!
//! The chaos proof lives in `tests/cluster.rs` and
//! `examples/cluster_chaos.rs`: shards are `kill -9`ed mid-load and the
//! suite asserts zero lost tickets, continued availability, respawn,
//! disk rewarm, and quarantine integrity.
//!
//! ```no_run
//! use ascend_arch::ChipSpec;
//! use ascend_ops::OpSpec;
//! use ascend_pipeline::{ClusterConfig, ClusterService, Priority, WorkSpec};
//!
//! // The current binary's `main` must call `run_worker_if_requested`.
//! let cluster = ClusterService::start(
//!     ChipSpec::training(),
//!     ClusterConfig { shards: 4, ..ClusterConfig::default() },
//! )?;
//! let ticket = cluster.submit(OpSpec::add_relu(1 << 12), Priority::Interactive)?;
//! let result = ticket.wait()?;
//! assert!(result.cycles() > 0.0);
//! cluster.drain(std::time::Duration::from_secs(10));
//! # Ok::<(), ascend_pipeline::PipelineError>(())
//! ```

use crate::digest::Fnv64;
use crate::sandbox::{
    classify_exit, ensure_heartbeats, rss_bytes, spawn_framed_child, ReadEvent, SandboxConfig,
    WireBudget, WireFailure, WorkSpec,
};
use crate::service::{Priority, Ticket, TicketShared};
use crate::supervisor::RunPolicy;
use crate::transport::{
    protocol_fault_bytes, read_frame, write_frame, FrameKind, FrameTransport, PipeTransport,
};
use crate::{lock, AnalysisPipeline, PipelineError, PipelineResult};
use ascend_arch::ChipSpec;
use ascend_faults::{BuggyEngine, FaultyTransport, SplitMix64};
use ascend_roofline::Thresholds;
use ascend_sim::{CancelToken, SimBudget, SimError};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ExitStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment marker that turns a re-exec of the current binary into a
/// cluster shard worker (see
/// [`run_worker_if_requested`](crate::run_worker_if_requested)).
pub const CLUSTER_SHARD_ENV: &str = "ASCEND_CLUSTER_SHARD";

/// Default virtual nodes per shard on the [`HashRing`]. 64 points keep
/// per-shard keyspace shares within a few percent of `1/N`, so removing
/// one of `N` shards remaps close to `1/N` of the keys.
pub const DEFAULT_VIRTUAL_NODES: usize = 64;

/// Dispatcher tick: the cadence at which an idle dispatcher re-runs its
/// maintenance pass (idle-death detection, respawn-backoff checks).
const TICK: Duration = Duration::from_millis(10);

/// Grace given to a child believed to be exiting voluntarily, so its own
/// exit status survives instead of being overwritten by SIGKILL.
const REAP_GRACE: Duration = Duration::from_millis(250);

// ---------------------------------------------------------------------
// The consistent-hash ring
// ---------------------------------------------------------------------

/// A consistent-hash ring over shard indexes.
///
/// Each shard contributes `virtual_nodes` points, hashed with the
/// workspace's shared FNV-1a over `(shard, vnode)`. A key is routed to
/// the first point at or after it (wrapping); [`route`](HashRing::route)
/// walks past points whose shard a liveness predicate rejects, which is
/// exactly ring-successor failover: keys owned by live shards never
/// move, keys owned by dead shards land on their successors.
///
/// Construction is deterministic — two rings built with the same
/// parameters are identical, so every router in a fleet agrees on
/// placement without coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point hash, shard index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    shards: usize,
    virtual_nodes: usize,
}

impl HashRing {
    /// A ring of `shards` members with `virtual_nodes` points each
    /// (both clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize, virtual_nodes: usize) -> Self {
        let shards = shards.max(1);
        let virtual_nodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(shards * virtual_nodes);
        for shard in 0..shards {
            for vnode in 0..virtual_nodes {
                let mut hasher = Fnv64::new();
                hasher.write(b"ascend-cluster-ring");
                hasher.write_u64(shard as u64);
                hasher.write_u64(vnode as u64);
                points.push((hasher.finish(), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards, virtual_nodes }
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    #[must_use]
    pub fn virtual_nodes(&self) -> usize {
        self.virtual_nodes
    }

    /// The shard owning `key` with every member alive.
    #[must_use]
    pub fn owner(&self, key: u64) -> usize {
        self.route(key, |_| true).expect("a ring always has at least one point")
    }

    /// The first shard at or after `key` (wrapping) that `alive`
    /// accepts, or `None` when it rejects every shard.
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|&(hash, _)| hash < key);
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if alive(shard) {
                return Some(shard);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Wire payloads (inside the sandbox tier's ASBX frame container)
// ---------------------------------------------------------------------

/// Parent → shard: one request, or a control ping when `work` is `None`.
/// Control pings open/rewarm the shard's store and apply tombstones
/// without running anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardJob {
    chip: ChipSpec,
    thresholds: Thresholds,
    /// `None` is a control ping (warm-up, quarantine nudge).
    work: Option<WorkSpec>,
    deadline_ms: Option<u64>,
    budget: Option<WireBudget>,
    heartbeat_ms: u64,
    /// The shard's own durable store segment, opened on first use.
    store_path: Option<String>,
    /// Tombstones to apply before serving: fingerprints this shard must
    /// never answer from cached state.
    quarantine: Vec<u64>,
    /// Chaos-only: a silently-wrong engine the shard's resident pipeline
    /// must arm ([`AnalysisPipeline::with_buggy_engine`]). Absent in
    /// every production frame.
    #[serde(default)]
    buggy: Option<BuggyEngine>,
}

/// The typed outcome inside a [`ShardReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ShardResult {
    /// The shard's pipeline ran the work to completion.
    Ok {
        /// The result, bit-identical to an in-process run.
        result: Box<PipelineResult>,
    },
    /// The shard's pipeline run failed; the error crosses rendered.
    Err {
        /// The rendered failure.
        failure: WireFailure,
    },
    /// Acknowledgement of a control ping.
    Control,
}

/// Shard → parent: the outcome of one [`ShardJob`], plus the shard-side
/// observability the cluster folds into its counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardReply {
    outcome: ShardResult,
    /// Whether the answer came from the shard's warm state (memory or
    /// disk) rather than a fresh computation.
    served_cached: bool,
    /// Entries the shard's store recovered at its last open — nonzero
    /// after a respawn proves the disk rewarm worked.
    store_recovered: u64,
}

// ---------------------------------------------------------------------
// Configuration and observability types
// ---------------------------------------------------------------------

/// Tuning for a [`ClusterService`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shard processes (minimum 1).
    pub shards: usize,
    /// Virtual nodes per shard on the ring (minimum 1).
    pub virtual_nodes: usize,
    /// Classification thresholds every shard analyzes under (part of the
    /// cache-key context, like a single pipeline's).
    pub thresholds: Thresholds,
    /// Bound on queued (not yet executing) requests, cluster-wide. At
    /// capacity, [`submit`](ClusterService::submit) rejects with
    /// [`PipelineError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that did not set their own.
    pub default_deadline: Option<Duration>,
    /// Watchdog budget forwarded to every shard-side attempt.
    pub budget: Option<SimBudget>,
    /// Containment limits inherited from the sandbox tier: worker
    /// binary, heartbeat interval/timeout, wall-clock limit, RSS budget,
    /// and monitor poll cadence. (`recycle_after` is ignored — shards
    /// are long-lived residents, not disposable workers.)
    pub sandbox: SandboxConfig,
    /// Consecutive failures after which a shard's circuit breaker is
    /// considered open (reported in [`ShardHealth::breaker_open`]; the
    /// breaker manifests as maximal respawn backoff, not eviction).
    pub breaker_threshold: u32,
    /// Times one request may fail over to a successor after killing (or
    /// losing) its shard before it completes with the last error — the
    /// bound that stops a poisonous item from serially killing the
    /// whole fleet.
    pub max_failovers: u32,
    /// Base of the seeded exponential respawn backoff.
    pub respawn_backoff: Duration,
    /// Cap on the respawn backoff.
    pub respawn_backoff_max: Duration,
    /// Seed of the backoff jitter streams (per-shard, derived).
    pub seed: u64,
    /// When set, shard `i` opens a durable store segment
    /// `shard-<i>-<context>.astr` in this directory and rewarms from it
    /// on every respawn.
    pub store_dir: Option<PathBuf>,
    /// Chaos-only: a wire-fault plan applied to every shard's pipe pair.
    /// Each scheduled event fires at most once per shard per direction,
    /// surviving respawns (a fresh process gets a healthy stream, but the
    /// shared fault counter keeps advancing).
    pub wire_faults: Option<ascend_faults::WireFaultPlan>,
    /// Chaos-only: arm every shard's resident pipeline with a
    /// silently-wrong engine. The cluster has no divergence auditor, so
    /// this is the canary a chaos run's bit-identity invariant must
    /// catch.
    pub buggy: Option<BuggyEngine>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            virtual_nodes: DEFAULT_VIRTUAL_NODES,
            thresholds: Thresholds::default(),
            queue_capacity: 64,
            default_deadline: None,
            budget: None,
            sandbox: SandboxConfig::default(),
            breaker_threshold: 3,
            max_failovers: 2,
            respawn_backoff: Duration::from_millis(25),
            respawn_backoff_max: Duration::from_secs(1),
            seed: 0xC1A5_7E12_5EED_0001,
            store_dir: None,
            wire_faults: None,
            buggy: None,
        }
    }
}

/// Monotonic per-shard event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCounters {
    /// Requests this shard completed with a result.
    pub completed_ok: u64,
    /// Requests this shard completed with an error.
    pub failed: u64,
    /// Requests shed at this shard's dispatch because their deadline
    /// lapsed while queued.
    pub shed_deadline: u64,
    /// Completed requests the shard answered from warm state (memory or
    /// disk) rather than fresh computation.
    pub cache_hits: u64,
    /// Times this shard's process died or was killed (heartbeat
    /// silence, wall-clock, RSS, crash, protocol violation, `kill -9`).
    pub kills: u64,
    /// Successful process bring-ups, the initial spawn included — a
    /// value above 1 proves the shard came back after a death.
    pub respawns: u64,
    /// Entries the shard's store recovered at its most recent open
    /// (a gauge, not a running total).
    pub store_recovered: u64,
}

/// Monotonic cluster-wide event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterCounters {
    /// Requests admitted (each owns exactly one ticket).
    pub accepted: u64,
    /// Requests rejected at admission with [`PipelineError::Overloaded`].
    pub rejected_overload: u64,
    /// Accepted requests that completed with a result.
    pub completed_ok: u64,
    /// Accepted requests that completed with an execution error.
    pub failed: u64,
    /// Accepted requests shed at dispatch after their deadline lapsed.
    pub shed_deadline: u64,
    /// Accepted requests flushed with [`PipelineError::ServiceStopped`]
    /// at drain.
    pub drain_flushed: u64,
    /// Requests re-routed to a ring successor after their shard died.
    pub failovers: u64,
    /// Successful shard process bring-ups (initial spawns included).
    pub respawns: u64,
    /// Shard process deaths, however caused.
    pub kills: u64,
    /// Quarantine broadcasts issued cluster-wide.
    pub quarantine_broadcasts: u64,
    /// Completed requests answered from a shard's warm state.
    pub cache_hits: u64,
}

impl ClusterCounters {
    /// Terminal states recorded so far. After a quiesced drain this
    /// equals [`accepted`](ClusterCounters::accepted): every admitted
    /// ticket ended exactly one way, shard deaths notwithstanding.
    #[must_use]
    pub fn terminal_states(&self) -> u64 {
        self.completed_ok + self.failed + self.shed_deadline + self.drain_flushed
    }
}

/// Point-in-time health of one shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardHealth {
    /// The shard's index (stable; also its ring identity).
    pub index: usize,
    /// Whether the shard process is alive and warmed.
    pub up: bool,
    /// Requests queued at this shard.
    pub queue_depth: usize,
    /// Whether a request is executing on this shard right now.
    pub in_flight: bool,
    /// Consecutive failures since the last healthy sign.
    pub consecutive_failures: u32,
    /// Whether the per-shard circuit breaker is open
    /// (`consecutive_failures >= breaker_threshold`).
    pub breaker_open: bool,
    /// OS pid of the live shard process.
    pub pid: Option<u32>,
    /// The shard's event counters.
    pub counters: ShardCounters,
}

/// Point-in-time health of a [`ClusterService`], cheap enough for a
/// readiness probe and serializable for `serve_health.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterHealth {
    /// Per-shard health, indexed by shard.
    pub shards: Vec<ShardHealth>,
    /// The cluster-wide counters.
    pub counters: ClusterCounters,
    /// Bumped on every shard membership change (death or respawn) —
    /// routing decisions can be attributed to a ring epoch.
    pub ring_generation: u64,
    /// Whether drain has begun (admissions closed).
    pub draining: bool,
    /// Requests queued cluster-wide (excludes executing ones).
    pub queue_depth: usize,
    /// Fingerprints under cluster-wide quarantine.
    pub quarantined: usize,
}

impl ClusterHealth {
    /// Shards currently up.
    #[must_use]
    pub fn live_shards(&self) -> usize {
        self.shards.iter().filter(|shard| shard.up).count()
    }

    /// Whether at least one shard can serve (the no-full-cluster-outage
    /// predicate the chaos suite asserts under kills).
    #[must_use]
    pub fn is_serving(&self) -> bool {
        !self.draining && self.live_shards() > 0
    }
}

/// What [`ClusterService::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterDrainReport {
    /// Queued requests flushed with [`PipelineError::ServiceStopped`].
    pub flushed_queued: u64,
    /// Whether every in-flight request reached a terminal state (and
    /// the dispatchers were joined) before the drain deadline.
    pub quiesced: bool,
    /// Wall time drain took.
    pub elapsed: Duration,
}

// ---------------------------------------------------------------------
// Parent-side state
// ---------------------------------------------------------------------

/// One queued cluster request (or a control ping when `work` is `None`).
#[derive(Debug)]
struct ClusterJob {
    work: Option<WorkSpec>,
    key: u64,
    ticket: Option<Arc<TicketShared>>,
    priority: Priority,
    deadline: Option<Duration>,
    enqueued_at: Instant,
    failovers: u32,
}

/// A live shard process. The handle lives in a shared slot (not in the
/// dispatcher) so [`ClusterService::kill_shard`] can SIGKILL it mid-job
/// — the chaos harness's `kill -9`.
#[derive(Debug)]
struct ShardProcess {
    child: Child,
    stdin: PipeTransport<ChildStdin>,
}

impl ShardProcess {
    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Kills (idempotently) and reaps the child. A child that already
    /// exited keeps its original status — SIGKILL on a zombie is a
    /// no-op.
    fn kill_and_reap(&mut self) -> Option<ExitStatus> {
        let _ = self.child.kill();
        self.child.wait().ok()
    }

    /// Reaps a child believed to have exited on its own, giving it
    /// `grace` before falling back to a kill.
    fn reap_with_grace(&mut self, grace: Duration) -> Option<ExitStatus> {
        let deadline = Instant::now() + grace;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Some(status),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => return self.kill_and_reap(),
            }
        }
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Mutable state of one shard, under the cluster state lock.
#[derive(Debug, Default)]
struct ShardSlot {
    queues: [VecDeque<ClusterJob>; Priority::COUNT],
    up: bool,
    in_flight: bool,
    consecutive_failures: u32,
    backoff_until: Option<Instant>,
    /// Tombstones not yet acknowledged by this shard; delivered on the
    /// next frame, cleared on its acknowledgement.
    pending_tombstones: Vec<u64>,
    pid: Option<u32>,
    counters: ShardCounters,
}

impl ShardSlot {
    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn pop(&mut self) -> Option<ClusterJob> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }
}

/// Everything under the one cluster state mutex: shard slots, the
/// lifecycle flag, and the quarantine set change atomically relative to
/// routing decisions.
#[derive(Debug, Default)]
struct ClusterState {
    shards: Vec<ShardSlot>,
    draining: bool,
    quarantined: HashSet<u64>,
    generation: u64,
    in_flight_total: usize,
}

impl ClusterState {
    fn depth(&self) -> usize {
        self.shards.iter().map(ShardSlot::depth).sum()
    }
}

/// State shared between the service handle and its dispatchers.
#[derive(Debug)]
struct ClusterShared {
    config: ClusterConfig,
    chip: ChipSpec,
    context: u64,
    ring: HashRing,
    /// The resolved worker binary (config override or the current exe).
    program: PathBuf,
    state: Mutex<ClusterState>,
    /// Signalled on admission, failover, and drain: dispatchers wait
    /// here for work.
    work_cv: Condvar,
    /// Signalled whenever a shard's in-flight request concludes: drain
    /// waits here.
    idle_cv: Condvar,
    counters: Mutex<ClusterCounters>,
    /// One process slot per shard, outside the state lock so a frame
    /// write or a `kill_shard` never blocks routing. Lock ordering:
    /// never hold the state lock and a process slot lock together.
    workers: Vec<Mutex<Option<ShardProcess>>>,
    /// One wire-fault harness per shard, shared across that shard's
    /// respawns so each scheduled fault fires at most once for the whole
    /// run. `None` everywhere outside chaos runs.
    faulty: Vec<Option<FaultyTransport>>,
    /// Parent token of every in-flight attempt; cancelled at drain.
    drain_token: CancelToken,
}

impl ClusterShared {
    fn take_process(&self, index: usize) -> Option<ShardProcess> {
        lock(&self.workers[index]).take()
    }

    /// Kills and reaps shard `index`'s process if one is installed,
    /// returning its exit status.
    fn kill_process(&self, index: usize) -> Option<ExitStatus> {
        self.take_process(index).as_mut().and_then(ShardProcess::kill_and_reap)
    }

    /// Reaps shard `index`'s process with a voluntary-exit grace.
    fn reap_process(&self, index: usize) -> Option<ExitStatus> {
        self.take_process(index).as_mut().and_then(|p| p.reap_with_grace(REAP_GRACE))
    }

    /// The durable store segment of shard `index`, when a store
    /// directory is configured. Context-pinned like any store: two
    /// shards never share a file, and a segment refuses to open under
    /// the wrong (chip, thresholds).
    fn shard_store_path(&self, index: usize) -> Option<PathBuf> {
        self.config
            .store_dir
            .as_ref()
            .map(|dir| dir.join(format!("shard-{index}-{:016x}.astr", self.context)))
    }
}

/// First live shard for `key` on the ring walk, excluding `exclude`;
/// falls back to the key's owner when no shard is up (jobs then wait in
/// the owner's queue for its respawn instead of being rejected).
fn pick(ring: &HashRing, shards: &[ShardSlot], key: u64, exclude: Option<usize>) -> usize {
    ring.route(key, |shard| exclude != Some(shard) && shards[shard].up)
        .unwrap_or_else(|| ring.owner(key))
}

/// The sharded cluster front end. See the [module docs](self) for the
/// semantics and `tests/cluster.rs` for the chaos proof.
#[derive(Debug)]
pub struct ClusterService {
    shared: Arc<ClusterShared>,
    dispatchers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl ClusterService {
    /// Starts `config.shards` dispatcher threads (each bringing up its
    /// own shard process) and returns the routing handle.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Chip`] for an invalid chip specification, and
    /// [`PipelineError::WorkerProtocol`] when no worker binary can be
    /// resolved. Shard processes that fail to *spawn* are not startup
    /// errors — they retry under backoff like any other shard death.
    pub fn start(chip: ChipSpec, config: ClusterConfig) -> Result<Self, PipelineError> {
        chip.validate().map_err(PipelineError::Chip)?;
        let program = match &config.sandbox.worker_cmd {
            Some(path) => path.clone(),
            None => std::env::current_exe().map_err(|err| PipelineError::WorkerProtocol {
                detail: format!("cannot locate the current executable: {err}"),
            })?,
        };
        let shards = config.shards.max(1);
        let context = crate::context_fingerprint(&chip, &config.thresholds);
        let ring = HashRing::new(shards, config.virtual_nodes);
        let mut state = ClusterState::default();
        state.shards.resize_with(shards, ShardSlot::default);
        let shared = Arc::new(ClusterShared {
            ring,
            program,
            context,
            chip,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            counters: Mutex::new(ClusterCounters::default()),
            workers: (0..shards).map(|_| Mutex::new(None)).collect(),
            faulty: (0..shards)
                .map(|index| {
                    config.wire_faults.as_ref().map(|plan| FaultyTransport::new(plan, index))
                })
                .collect(),
            drain_token: CancelToken::new(),
            config,
        });
        let dispatchers = (0..shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatcher_loop(&shared, index))
            })
            .collect();
        Ok(ClusterService {
            shared,
            dispatchers: Mutex::new(dispatchers),
            next_id: AtomicU64::new(0),
        })
    }

    /// The context fingerprint (chip + thresholds) every shard serves
    /// under — what their store segments are pinned to.
    #[must_use]
    pub fn context(&self) -> u64 {
        self.shared.context
    }

    /// The routing ring (shared construction with any external router).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.shared.ring
    }

    /// The cluster-wide cache key `work` routes by — the same key a
    /// single pipeline with this chip and thresholds would cache under.
    #[must_use]
    pub fn cache_key(&self, work: &WorkSpec) -> u64 {
        crate::mix(self.shared.context, work.instantiate().fingerprint())
    }

    /// The durable store segment shard `index` persists to, when a
    /// store directory is configured.
    #[must_use]
    pub fn shard_store_path(&self, index: usize) -> Option<PathBuf> {
        self.shared.shard_store_path(index)
    }

    /// OS pids of the live shard processes, by shard index.
    #[must_use]
    pub fn shard_pids(&self) -> Vec<Option<u32>> {
        lock(&self.shared.state).shards.iter().map(|slot| slot.pid).collect()
    }

    /// SIGKILLs shard `index`'s process — the chaos harness's
    /// `kill -9`. Returns whether a live process was there to kill. The
    /// shard's dispatcher detects the death, fails its work over, and
    /// respawns under backoff; no ticket is lost.
    pub fn kill_shard(&self, index: usize) -> bool {
        let Some(slot) = self.shared.workers.get(index) else { return false };
        match lock(slot).as_mut() {
            Some(process) => {
                let _ = process.child.kill();
                true
            }
            None => false,
        }
    }

    /// Submits `work` at `priority` with no per-item deadline beyond
    /// the cluster default.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Overloaded`] at capacity and
    /// [`PipelineError::ServiceStopped`] once drain has begun; an
    /// accepted request reports execution errors through its
    /// [`Ticket`] instead.
    pub fn submit(
        &self,
        work: impl Into<WorkSpec>,
        priority: Priority,
    ) -> Result<Ticket, PipelineError> {
        self.submit_inner(work.into(), priority, None)
    }

    /// [`submit`](ClusterService::submit) with a per-item deadline
    /// measured from admission: lapsing in a queue sheds the request,
    /// and the remainder bounds the shard-side attempt.
    ///
    /// # Errors
    ///
    /// As [`submit`](ClusterService::submit).
    pub fn submit_with_deadline(
        &self,
        work: impl Into<WorkSpec>,
        priority: Priority,
        deadline: Duration,
    ) -> Result<Ticket, PipelineError> {
        self.submit_inner(work.into(), priority, Some(deadline))
    }

    fn submit_inner(
        &self,
        work: WorkSpec,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, PipelineError> {
        let deadline = deadline.or(self.shared.config.default_deadline);
        let key = self.cache_key(&work);
        let mut state = lock(&self.shared.state);
        if state.draining {
            return Err(PipelineError::ServiceStopped);
        }
        let depth = state.depth();
        if depth >= self.shared.config.queue_capacity {
            drop(state);
            lock(&self.shared.counters).rejected_overload += 1;
            return Err(PipelineError::Overloaded {
                queue_depth: depth,
                retry_after_hint: Duration::from_millis(25),
            });
        }
        let ticket = Arc::new(TicketShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            priority,
            state: Mutex::new(None),
            ready: Condvar::new(),
        });
        let target = pick(&self.shared.ring, &state.shards, key, None);
        state.shards[target].queues[priority.index()].push_back(ClusterJob {
            work: Some(work),
            key,
            ticket: Some(Arc::clone(&ticket)),
            priority,
            deadline,
            enqueued_at: Instant::now(),
            failovers: 0,
        });
        drop(state);
        lock(&self.shared.counters).accepted += 1;
        self.shared.work_cv.notify_all();
        Ok(Ticket { shared: ticket })
    }

    /// Quarantines `key` cluster-wide: the tombstone rides the next
    /// frame to every shard (idle shards are nudged with a control
    /// ping), every respawn warm-up re-delivers the full set, and each
    /// shard's pipeline purges its memory entry and tombstones its
    /// store — no shard ever serves the fingerprint from cached state
    /// again. Recomputation stays allowed; only stale bytes are barred.
    /// Idempotent.
    pub fn quarantine(&self, key: u64) {
        let mut state = lock(&self.shared.state);
        if !state.quarantined.insert(key) {
            return;
        }
        for slot in &mut state.shards {
            slot.pending_tombstones.push(key);
            // Nudge ahead of queued work so the tombstone cannot lose a
            // race with a request for the same fingerprint.
            slot.queues[Priority::Interactive.index()].push_front(ClusterJob {
                work: None,
                key,
                ticket: None,
                priority: Priority::Interactive,
                deadline: None,
                enqueued_at: Instant::now(),
                failovers: 0,
            });
        }
        drop(state);
        lock(&self.shared.counters).quarantine_broadcasts += 1;
        self.shared.work_cv.notify_all();
    }

    /// Whether `key` is under cluster-wide quarantine.
    #[must_use]
    pub fn is_quarantined(&self, key: u64) -> bool {
        lock(&self.shared.state).quarantined.contains(&key)
    }

    /// A point-in-time [`ClusterHealth`] snapshot.
    #[must_use]
    pub fn health(&self) -> ClusterHealth {
        let state = lock(&self.shared.state);
        let shards = state
            .shards
            .iter()
            .enumerate()
            .map(|(index, slot)| ShardHealth {
                index,
                up: slot.up,
                queue_depth: slot.depth(),
                in_flight: slot.in_flight,
                consecutive_failures: slot.consecutive_failures,
                breaker_open: slot.consecutive_failures >= self.shared.config.breaker_threshold,
                pid: slot.pid,
                counters: slot.counters,
            })
            .collect();
        let health = ClusterHealth {
            shards,
            ring_generation: state.generation,
            draining: state.draining,
            queue_depth: state.depth(),
            quarantined: state.quarantined.len(),
            counters: ClusterCounters::default(),
        };
        drop(state);
        ClusterHealth { counters: *lock(&self.shared.counters), ..health }
    }

    /// Gracefully stops the cluster: closes admissions, flushes every
    /// queued ticket with [`PipelineError::ServiceStopped`], cancels
    /// in-flight attempts (killing their shard processes), waits up to
    /// `timeout` for quiescence, then force-kills any children still
    /// alive. Idempotent; every accepted ticket has a terminal state
    /// once this returns with `quiesced == true`.
    pub fn drain(&self, timeout: Duration) -> ClusterDrainReport {
        let start = Instant::now();
        let flushed = {
            let mut state = lock(&self.shared.state);
            state.draining = true;
            let mut flushed = Vec::new();
            for slot in &mut state.shards {
                for queue in &mut slot.queues {
                    flushed.extend(queue.drain(..));
                }
            }
            flushed
        };
        self.shared.work_cv.notify_all();
        let mut flushed_count = 0u64;
        for job in flushed {
            // Control pings die silently; only tickets owe an answer.
            if let Some(ticket) = job.ticket {
                if ticket.complete(Err(PipelineError::ServiceStopped)) {
                    flushed_count += 1;
                }
            }
        }
        if flushed_count > 0 {
            lock(&self.shared.counters).drain_flushed += flushed_count;
        }
        self.shared.drain_token.cancel();

        let mut state = lock(&self.shared.state);
        while state.in_flight_total > 0 {
            let Some(remaining) = timeout.checked_sub(start.elapsed()) else { break };
            let (guard, _timed_out) = self
                .shared
                .idle_cv
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        let quiesced = state.in_flight_total == 0;
        drop(state);
        if quiesced {
            let handles = std::mem::take(&mut *lock(&self.dispatchers));
            for handle in handles {
                let _ = handle.join();
            }
        }
        // Backstop: dispatchers kill their own children on exit, but a
        // non-quiesced drain leaves them running — never leak a child.
        for index in 0..self.shared.workers.len() {
            self.shared.kill_process(index);
        }
        let mut state = lock(&self.shared.state);
        let mut bumps = 0u64;
        for slot in &mut state.shards {
            if slot.up {
                bumps += 1;
            }
            slot.up = false;
            slot.pid = None;
        }
        state.generation += bumps;
        drop(state);
        ClusterDrainReport { flushed_queued: flushed_count, quiesced, elapsed: start.elapsed() }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        // Best-effort drain so dropping the handle never leaks shard
        // processes or leaves tickets without a terminal state.
        self.drain(Duration::from_secs(10));
    }
}

// ---------------------------------------------------------------------
// The dispatcher (one thread per shard)
// ---------------------------------------------------------------------

/// What `next_job` tells the dispatcher to do.
enum Next {
    Job(ClusterJob),
    Idle,
    Exit,
}

/// How one frame exchange with the shard ended.
enum ReplyEnd {
    /// A parsed reply arrived; the process is still healthy.
    Reply(ShardReply),
    /// The process is dead (killed here or died on its own).
    Fatal(PipelineError),
    /// The drain token fired; the process was killed for preemption.
    Preempted,
}

/// Ensures the in-flight bookkeeping — and a terminal state for the
/// ticket — survives every exit path of one dispatched job, including a
/// panic unwinding out of the dispatcher's own handling. A requeued job
/// hands its ticket onward by clearing `ticket` first.
struct InFlight<'a> {
    shared: &'a ClusterShared,
    index: usize,
    ticket: Option<Arc<TicketShared>>,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        if let Some(ticket) = &self.ticket {
            if ticket.complete(Err(PipelineError::Panicked {
                message: "cluster dispatcher panicked while handling this request".to_string(),
            })) {
                lock(&self.shared.counters).failed += 1;
            }
        }
        let mut state = lock(&self.shared.state);
        state.shards[self.index].in_flight = false;
        state.in_flight_total = state.in_flight_total.saturating_sub(1);
        drop(state);
        self.shared.idle_cv.notify_all();
    }
}

fn dispatcher_loop(shared: &Arc<ClusterShared>, index: usize) {
    let mut events: Option<Receiver<ReadEvent>> = None;
    let mut rng = SplitMix64::new(shared.config.seed ^ (index as u64).wrapping_mul(0x9E37));
    loop {
        maintain(shared, index, &mut events, &mut rng);
        match next_job(shared, index) {
            Next::Job(job) => run_one(shared, index, job, &mut events, &mut rng),
            Next::Idle => {}
            Next::Exit => {
                if let Some(mut process) = shared.take_process(index) {
                    process.kill_and_reap();
                }
                drop(events);
                let leftovers = {
                    let mut state = lock(&shared.state);
                    if state.shards[index].up {
                        state.generation += 1;
                    }
                    let slot = &mut state.shards[index];
                    slot.up = false;
                    slot.pid = None;
                    let mut leftovers = Vec::new();
                    for queue in &mut slot.queues {
                        leftovers.extend(queue.drain(..));
                    }
                    leftovers
                };
                let mut flushed = 0u64;
                for job in leftovers {
                    if let Some(ticket) = job.ticket {
                        if ticket.complete(Err(PipelineError::ServiceStopped)) {
                            flushed += 1;
                        }
                    }
                }
                if flushed > 0 {
                    lock(&shared.counters).drain_flushed += flushed;
                }
                return;
            }
        }
    }
}

/// The idle-path maintenance pass: drains the reader channel (detecting
/// a shard that died *between* jobs — `kill -9` on an idle shard lands
/// here) and respawns a down shard once its backoff elapsed.
fn maintain(
    shared: &Arc<ClusterShared>,
    index: usize,
    events: &mut Option<Receiver<ReadEvent>>,
    rng: &mut SplitMix64,
) {
    if let Some(receiver) = events {
        loop {
            match receiver.try_recv() {
                Ok(ReadEvent::Frame(frame)) if frame.kind == FrameKind::Heartbeat => {}
                Ok(ReadEvent::Frame(_)) => {
                    let status = shared.kill_process(index);
                    let err = classify_exit(status, "shard sent a frame while idle");
                    handle_worker_death(shared, index, events, rng, &err);
                    break;
                }
                Ok(ReadEvent::Malformed(detail)) => {
                    let status = shared.reap_process(index);
                    let err = match classify_exit(status, &detail) {
                        crashed @ PipelineError::WorkerCrashed { .. } => crashed,
                        _ => PipelineError::WorkerProtocol { detail },
                    };
                    handle_worker_death(shared, index, events, rng, &err);
                    break;
                }
                Ok(ReadEvent::Eof) => {
                    let status = shared.reap_process(index);
                    let err = classify_exit(status, "shard stream ended while idle");
                    handle_worker_death(shared, index, events, rng, &err);
                    break;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let status = shared.kill_process(index);
                    let err = classify_exit(status, "shard reader thread lost the stream");
                    handle_worker_death(shared, index, events, rng, &err);
                    break;
                }
            }
        }
    }
    if events.is_some() {
        return;
    }
    let due = {
        let state = lock(&shared.state);
        if state.draining {
            return;
        }
        state.shards[index].backoff_until.is_none_or(|until| Instant::now() >= until)
    };
    if due {
        try_respawn(shared, index, events, rng);
    }
}

/// One respawn attempt: spawn the worker binary, warm it up with a
/// control ping carrying the full quarantine set (and its store path,
/// so it rewarms from disk), and install it on success.
fn try_respawn(
    shared: &Arc<ClusterShared>,
    index: usize,
    events: &mut Option<Receiver<ReadEvent>>,
    rng: &mut SplitMix64,
) {
    let spawned =
        spawn_framed_child(&shared.program, CLUSTER_SHARD_ENV, shared.faulty[index].as_ref());
    let (child, stdin, receiver) = match spawned {
        Ok(parts) => parts,
        Err(err) => {
            eprintln!("[cluster] shard {index} spawn failed: {err}");
            record_respawn_failure(shared, index, rng);
            return;
        }
    };
    let mut process = ShardProcess { child, stdin };
    let tombstones: Vec<u64> = {
        let state = lock(&shared.state);
        state.quarantined.iter().copied().collect()
    };
    match warm_up(shared, index, &mut process, &receiver, &tombstones) {
        Ok(reply) => {
            let pid = process.pid();
            *lock(&shared.workers[index]) = Some(process);
            *events = Some(receiver);
            let mut state = lock(&shared.state);
            state.generation += 1;
            let slot = &mut state.shards[index];
            slot.up = true;
            slot.pid = Some(pid);
            slot.backoff_until = None;
            slot.consecutive_failures = 0;
            slot.counters.respawns += 1;
            slot.counters.store_recovered = reply.store_recovered;
            // The warm-up carried the full quarantine snapshot; only
            // tombstones added after the snapshot stay pending.
            slot.pending_tombstones.retain(|key| !tombstones.contains(key));
            drop(state);
            lock(&shared.counters).respawns += 1;
        }
        Err(err) => {
            process.kill_and_reap();
            eprintln!("[cluster] shard {index} warm-up failed: {err}");
            record_respawn_failure(shared, index, rng);
        }
    }
}

fn record_respawn_failure(shared: &ClusterShared, index: usize, rng: &mut SplitMix64) {
    let mut state = lock(&shared.state);
    let slot = &mut state.shards[index];
    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
    slot.backoff_until =
        Some(Instant::now() + backoff_for(slot.consecutive_failures, &shared.config, rng));
}

/// Seeded exponential backoff: `base * 2^(attempt-1)`, capped, with a
/// deterministic ±25% jitter so a fleet of respawning shards does not
/// thunder in lockstep.
fn backoff_for(attempt: u32, config: &ClusterConfig, rng: &mut SplitMix64) -> Duration {
    let base = config.respawn_backoff.max(Duration::from_millis(1));
    let scaled = base.saturating_mul(2u32.saturating_pow(attempt.saturating_sub(1).min(16)));
    let capped = scaled.min(config.respawn_backoff_max);
    let jitter = 0.75 + 0.5 * rng.unit_f64();
    Duration::from_secs_f64(capped.as_secs_f64() * jitter).min(config.respawn_backoff_max)
}

/// Sends the warm-up control ping on a not-yet-installed process and
/// waits for its acknowledgement under the sandbox limits.
fn warm_up(
    shared: &ClusterShared,
    index: usize,
    process: &mut ShardProcess,
    receiver: &Receiver<ReadEvent>,
    tombstones: &[u64],
) -> Result<ShardReply, PipelineError> {
    let job = ShardJob {
        chip: shared.chip.clone(),
        thresholds: shared.config.thresholds,
        work: None,
        deadline_ms: None,
        budget: None,
        heartbeat_ms: shared.config.sandbox.heartbeat_interval.as_millis().max(1) as u64,
        store_path: shared.shard_store_path(index).map(|p| p.display().to_string()),
        quarantine: tombstones.to_vec(),
        buggy: shared.config.buggy,
    };
    let payload = serde_json::to_string(&job).map_err(|err| PipelineError::WorkerProtocol {
        detail: format!("warm-up frame serialization failed: {err}"),
    })?;
    process.stdin.send(FrameKind::Job, payload.as_bytes()).map_err(|err| {
        PipelineError::WorkerProtocol { detail: format!("warm-up frame write failed: {err}") }
    })?;
    let started = Instant::now();
    let wall_deadline = started + shared.config.sandbox.wall_clock_limit;
    let mut last_beat = started;
    let mut heartbeats = 0u64;
    loop {
        if shared.drain_token.is_cancelled() {
            return Err(PipelineError::Runtime(SimError::preempted_at("cluster warm-up")));
        }
        let now = Instant::now();
        if now >= wall_deadline
            || now.duration_since(last_beat) >= shared.config.sandbox.heartbeat_timeout
        {
            return Err(PipelineError::WorkerHung { waited: now - started, heartbeats });
        }
        match receiver.recv_timeout(shared.config.sandbox.poll_interval) {
            Ok(ReadEvent::Frame(frame)) => match frame.kind {
                FrameKind::Heartbeat => {
                    heartbeats += 1;
                    last_beat = Instant::now();
                }
                FrameKind::Outcome => {
                    return parse_reply(&frame.payload);
                }
                FrameKind::Job => {
                    return Err(PipelineError::WorkerProtocol {
                        detail: "shard sent a job frame to its parent".to_string(),
                    });
                }
            },
            Ok(ReadEvent::Malformed(detail)) => {
                let status = process.reap_with_grace(REAP_GRACE);
                return Err(match classify_exit(status, &detail) {
                    crashed @ PipelineError::WorkerCrashed { .. } => crashed,
                    _ => PipelineError::WorkerProtocol { detail },
                });
            }
            Ok(ReadEvent::Eof) => {
                let status = process.reap_with_grace(REAP_GRACE);
                return Err(classify_exit(status, "shard stream ended during warm-up"));
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                let status = process.kill_and_reap();
                return Err(classify_exit(status, "shard reader thread lost the stream"));
            }
        }
    }
}

fn parse_reply(payload: &[u8]) -> Result<ShardReply, PipelineError> {
    std::str::from_utf8(payload).ok().and_then(|text| serde_json::from_str(text).ok()).ok_or_else(
        || PipelineError::WorkerProtocol {
            detail: "shard reply payload did not parse".to_string(),
        },
    )
}

/// Blocks for the next job of shard `index`, one tick at a time so the
/// maintenance pass keeps running while idle. Jobs dispatch only while
/// the shard is up — a down shard's queue waits for its respawn (or for
/// the death handler to fail it over).
fn next_job(shared: &ClusterShared, index: usize) -> Next {
    let mut state = lock(&shared.state);
    if state.shards[index].up {
        if let Some(job) = state.shards[index].pop() {
            state.shards[index].in_flight = true;
            state.in_flight_total += 1;
            return Next::Job(job);
        }
    }
    if state.draining {
        return Next::Exit;
    }
    let (_guard, _timed_out) =
        shared.work_cv.wait_timeout(state, TICK).unwrap_or_else(PoisonError::into_inner);
    Next::Idle
}

/// Dispatches one job to the shard and concludes its ticket: the heart
/// of the failover and accounting story.
fn run_one(
    shared: &Arc<ClusterShared>,
    index: usize,
    job: ClusterJob,
    events: &mut Option<Receiver<ReadEvent>>,
    rng: &mut SplitMix64,
) {
    let mut guard = InFlight { shared, index, ticket: job.ticket.clone() };

    // Shed at dispatch: a lapsed deadline means nobody is waiting.
    if let (Some(ticket), Some(deadline)) = (&job.ticket, job.deadline) {
        let queued_for = job.enqueued_at.elapsed();
        if queued_for >= deadline {
            if ticket.complete(Err(PipelineError::DeadlineShed { queued_for })) {
                lock(&shared.counters).shed_deadline += 1;
                lock(&shared.state).shards[index].counters.shed_deadline += 1;
            }
            return;
        }
    }

    // Snapshot the tombstones riding this frame, and whether the job's
    // own key is already covered by the quarantine (delivered earlier
    // or in this very frame) — the reply-time race check needs it.
    let (sent_tombstones, covered) = {
        let state = lock(&shared.state);
        let slot = &state.shards[index];
        (slot.pending_tombstones.clone(), state.quarantined.contains(&job.key))
    };
    let shard_job = ShardJob {
        chip: shared.chip.clone(),
        thresholds: shared.config.thresholds,
        work: job.work,
        deadline_ms: job
            .deadline
            .map(|d| d.saturating_sub(job.enqueued_at.elapsed()).as_millis().max(1) as u64),
        budget: shared
            .config
            .budget
            .map(|b| WireBudget { max_events: b.max_events, max_cycles: b.max_cycles }),
        heartbeat_ms: shared.config.sandbox.heartbeat_interval.as_millis().max(1) as u64,
        store_path: shared.shard_store_path(index).map(|p| p.display().to_string()),
        quarantine: sent_tombstones.clone(),
        buggy: shared.config.buggy,
    };
    let payload = match serde_json::to_string(&shard_job) {
        Ok(payload) => payload,
        Err(err) => {
            conclude(
                shared,
                index,
                &job,
                Err(PipelineError::WorkerProtocol {
                    detail: format!("job frame serialization failed: {err}"),
                }),
                false,
            );
            return;
        }
    };
    // Put the (possibly rerouted) work back into the job for failover.
    let job = ClusterJob { work: shard_job.work, ..job };

    let pid = lock(&shared.state).shards[index].pid;
    let sent = {
        let mut worker = lock(&shared.workers[index]);
        match worker.as_mut() {
            Some(process) => process
                .stdin
                .send(FrameKind::Job, payload.as_bytes())
                .map_err(|err| format!("job frame write failed: {err}")),
            None => Err("no live shard process".to_string()),
        }
    };
    if let Err(detail) = sent {
        // The shard died between jobs; classify from its exit status.
        let status = shared.kill_process(index);
        let err = classify_exit(status, &detail);
        handle_worker_death(shared, index, events, rng, &err);
        fail_over(shared, index, job, &mut guard, err);
        return;
    }

    match await_reply(shared, index, events, pid) {
        ReplyEnd::Reply(reply) => {
            // The shard acknowledged the tombstones riding this frame.
            if !sent_tombstones.is_empty() {
                let mut state = lock(&shared.state);
                state.shards[index].pending_tombstones.retain(|key| !sent_tombstones.contains(key));
            }
            match reply.outcome {
                ShardResult::Ok { result } => {
                    if result.fingerprint != job.key {
                        conclude(
                            shared,
                            index,
                            &job,
                            Err(PipelineError::WorkerProtocol {
                                detail: format!(
                                    "result fingerprint {:#018x} does not match the job's \
                                     {:#018x}",
                                    result.fingerprint, job.key
                                ),
                            }),
                            false,
                        );
                        return;
                    }
                    // Quarantine-during-flight race: if the key was
                    // tombstoned after dispatch and the shard did not
                    // have the tombstone, its answer may be stale state
                    // — recompute instead of serving it.
                    let (raced, draining) = {
                        let state = lock(&shared.state);
                        (!covered && state.quarantined.contains(&job.key), state.draining)
                    };
                    if raced {
                        if draining {
                            conclude(
                                shared,
                                index,
                                &job,
                                Err(PipelineError::ServiceStopped),
                                false,
                            );
                        } else {
                            requeue(shared, index, job, &mut guard);
                        }
                        return;
                    }
                    conclude(shared, index, &job, Ok(Arc::new(*result)), reply.served_cached);
                }
                ShardResult::Err { failure } => {
                    conclude(
                        shared,
                        index,
                        &job,
                        Err(PipelineError::WorkerReported {
                            message: failure.message,
                            transient: failure.transient,
                        }),
                        false,
                    );
                }
                ShardResult::Control => {
                    if job.ticket.is_none() {
                        // A quarantine nudge acknowledged; the shard is
                        // healthy.
                        let mut state = lock(&shared.state);
                        state.shards[index].consecutive_failures = 0;
                    } else {
                        conclude(
                            shared,
                            index,
                            &job,
                            Err(PipelineError::WorkerProtocol {
                                detail: "shard answered a work job with a control ack".to_string(),
                            }),
                            false,
                        );
                    }
                }
            }
        }
        ReplyEnd::Fatal(err) => {
            handle_worker_death(shared, index, events, rng, &err);
            fail_over(shared, index, job, &mut guard, err);
        }
        ReplyEnd::Preempted => {
            // Drain kill: mark the shard down without a backoff penalty
            // — the cluster is stopping, not sick.
            *events = None;
            let mut state = lock(&shared.state);
            if state.shards[index].up {
                state.generation += 1;
            }
            let slot = &mut state.shards[index];
            slot.up = false;
            slot.pid = None;
            slot.counters.kills += 1;
            drop(state);
            lock(&shared.counters).kills += 1;
            if let Some(ticket) = &job.ticket {
                if ticket
                    .complete(Err(PipelineError::Runtime(SimError::preempted_at("cluster shard"))))
                {
                    lock(&shared.counters).failed += 1;
                    lock(&shared.state).shards[index].counters.failed += 1;
                }
            }
        }
    }
}

/// Records a terminal state for a dispatched job and advances the
/// matching counters exactly once (the ticket's idempotent `complete`
/// is the dedup point).
fn conclude(
    shared: &ClusterShared,
    index: usize,
    job: &ClusterJob,
    outcome: Result<Arc<PipelineResult>, PipelineError>,
    served_cached: bool,
) {
    let ok = outcome.is_ok();
    // A successful exchange is the shard's bill of health either way:
    // a reported failure still means the process served its frame.
    {
        let mut state = lock(&shared.state);
        state.shards[index].consecutive_failures = 0;
    }
    let Some(ticket) = &job.ticket else { return };
    if !ticket.complete(outcome) {
        return;
    }
    let mut counters = lock(&shared.counters);
    if ok {
        counters.completed_ok += 1;
        if served_cached {
            counters.cache_hits += 1;
        }
    } else {
        counters.failed += 1;
    }
    drop(counters);
    let mut state = lock(&shared.state);
    let slot = &mut state.shards[index];
    if ok {
        slot.counters.completed_ok += 1;
        if served_cached {
            slot.counters.cache_hits += 1;
        }
    } else {
        slot.counters.failed += 1;
    }
}

/// Puts a job back on its own shard's queue (quarantine-race recompute).
fn requeue(shared: &ClusterShared, index: usize, job: ClusterJob, guard: &mut InFlight<'_>) {
    guard.ticket = None; // the ticket rides with the job, not the guard
    let mut state = lock(&shared.state);
    state.shards[index].queues[job.priority.index()].push_back(job);
    drop(state);
    shared.work_cv.notify_all();
}

/// Routes a job that lost its shard: to the ring successor while its
/// failover budget lasts, to a terminal error once it is spent, and to
/// a drain flush when the cluster is stopping.
fn fail_over(
    shared: &ClusterShared,
    index: usize,
    mut job: ClusterJob,
    guard: &mut InFlight<'_>,
    err: PipelineError,
) {
    let Some(ticket) = &job.ticket else { return }; // control pings die with their shard
    job.failovers += 1;
    let draining = lock(&shared.state).draining;
    if draining {
        if ticket.complete(Err(PipelineError::ServiceStopped)) {
            lock(&shared.counters).drain_flushed += 1;
        }
        return;
    }
    if job.failovers > shared.config.max_failovers {
        if ticket.complete(Err(err)) {
            lock(&shared.counters).failed += 1;
            lock(&shared.state).shards[index].counters.failed += 1;
        }
        return;
    }
    guard.ticket = None; // the ticket rides with the job
    let mut state = lock(&shared.state);
    let target = pick(&shared.ring, &state.shards, job.key, Some(index));
    state.shards[target].queues[job.priority.index()].push_back(job);
    drop(state);
    lock(&shared.counters).failovers += 1;
    shared.work_cv.notify_all();
}

/// Books a shard process death: tears down the handle, opens the
/// breaker arithmetic, schedules the respawn backoff, and fails queued
/// work over to live peers (or flushes it when draining).
fn handle_worker_death(
    shared: &ClusterShared,
    index: usize,
    events: &mut Option<Receiver<ReadEvent>>,
    rng: &mut SplitMix64,
    cause: &PipelineError,
) {
    if let Some(mut process) = shared.take_process(index) {
        process.kill_and_reap();
    }
    *events = None;
    let mut moved = 0u64;
    let mut flushed = Vec::new();
    {
        let mut state = lock(&shared.state);
        if state.shards[index].up {
            state.generation += 1;
        }
        let slot = &mut state.shards[index];
        slot.up = false;
        slot.pid = None;
        slot.counters.kills += 1;
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        let failures = slot.consecutive_failures;
        slot.backoff_until = Some(Instant::now() + backoff_for(failures, &shared.config, rng));
        let mut drained = Vec::new();
        for queue in &mut state.shards[index].queues {
            drained.extend(queue.drain(..));
        }
        let draining = state.draining;
        for job in drained {
            if job.ticket.is_none() {
                continue; // control pings die with their shard
            }
            if draining {
                flushed.push(job);
                continue;
            }
            let target = pick(&shared.ring, &state.shards, job.key, Some(index));
            if target != index {
                moved += 1;
            }
            state.shards[target].queues[job.priority.index()].push_back(job);
        }
    }
    eprintln!("[cluster] shard {index} down: {cause}");
    let mut flushed_count = 0u64;
    for job in flushed {
        if let Some(ticket) = job.ticket {
            if ticket.complete(Err(PipelineError::ServiceStopped)) {
                flushed_count += 1;
            }
        }
    }
    let mut counters = lock(&shared.counters);
    counters.kills += 1;
    counters.failovers += moved;
    counters.drain_flushed += flushed_count;
    drop(counters);
    shared.work_cv.notify_all();
}

/// The parent-side monitor for one dispatched frame: heartbeat silence,
/// wall-clock, and RSS kills on one side; reply frames on the other.
/// The process handle stays in its shared slot so `kill_shard` can hit
/// it mid-exchange — exactly the chaos case this tier exists for.
fn await_reply(
    shared: &ClusterShared,
    index: usize,
    events: &mut Option<Receiver<ReadEvent>>,
    pid: Option<u32>,
) -> ReplyEnd {
    let Some(receiver) = events else {
        return ReplyEnd::Fatal(PipelineError::WorkerProtocol {
            detail: "no reader channel for a dispatched job".to_string(),
        });
    };
    let started = Instant::now();
    let wall_deadline = started + shared.config.sandbox.wall_clock_limit;
    let mut last_beat = started;
    let mut heartbeats = 0u64;
    loop {
        if shared.drain_token.is_cancelled() {
            shared.kill_process(index);
            return ReplyEnd::Preempted;
        }
        let now = Instant::now();
        if now >= wall_deadline
            || now.duration_since(last_beat) >= shared.config.sandbox.heartbeat_timeout
        {
            shared.kill_process(index);
            return ReplyEnd::Fatal(PipelineError::WorkerHung {
                waited: now - started,
                heartbeats,
            });
        }
        if let (Some(limit), Some(pid)) = (shared.config.sandbox.rss_limit_bytes, pid) {
            if let Some(rss) = rss_bytes(pid) {
                if rss > limit {
                    shared.kill_process(index);
                    return ReplyEnd::Fatal(PipelineError::WorkerOverMemory {
                        rss_bytes: rss,
                        budget_bytes: limit,
                    });
                }
            }
        }
        match receiver.recv_timeout(shared.config.sandbox.poll_interval) {
            Ok(ReadEvent::Frame(frame)) => match frame.kind {
                FrameKind::Heartbeat => {
                    heartbeats += 1;
                    last_beat = Instant::now();
                }
                FrameKind::Outcome => match parse_reply(&frame.payload) {
                    Ok(reply) => return ReplyEnd::Reply(reply),
                    Err(err) => {
                        shared.kill_process(index);
                        return ReplyEnd::Fatal(err);
                    }
                },
                FrameKind::Job => {
                    shared.kill_process(index);
                    return ReplyEnd::Fatal(PipelineError::WorkerProtocol {
                        detail: "shard sent a job frame to its parent".to_string(),
                    });
                }
            },
            Ok(ReadEvent::Malformed(detail)) => {
                let status = shared.reap_process(index);
                return ReplyEnd::Fatal(match classify_exit(status, &detail) {
                    crashed @ PipelineError::WorkerCrashed { .. } => crashed,
                    _ => PipelineError::WorkerProtocol { detail },
                });
            }
            Ok(ReadEvent::Eof) => {
                let status = shared.reap_process(index);
                return ReplyEnd::Fatal(classify_exit(status, "stream ended before a reply frame"));
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                let status = shared.kill_process(index);
                return ReplyEnd::Fatal(classify_exit(status, "reader thread lost the stream"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Child side (the shard worker)
// ---------------------------------------------------------------------

/// A shard's resident serving state: the pipeline (with its memory
/// cache and optional store) survives across jobs, which is what makes
/// a shard warm at all.
struct ResidentPipeline {
    context: u64,
    store_path: Option<String>,
    buggy: Option<BuggyEngine>,
    pipeline: AnalysisPipeline,
    recovered: u64,
}

/// The cluster shard worker loop: read [`ShardJob`] frames from stdin,
/// serve them on a resident [`AnalysisPipeline`] (memory cache, durable
/// store, quarantine tombstones and all), write [`ShardReply`] frames
/// (and heartbeats, from a dedicated thread) to stdout. Exits 0 on
/// clean EOF, 3 on a malformed input stream. Never returns.
///
/// Reached through [`run_worker_if_requested`](crate::run_worker_if_requested)
/// when [`CLUSTER_SHARD_ENV`] is set — the same re-exec convention as
/// the sandbox tier's [`worker_main`](crate::worker_main).
pub fn shard_worker_main() -> ! {
    let stdout: Arc<Mutex<std::io::Stdout>> = Arc::new(Mutex::new(std::io::stdout()));
    let mut stdin = std::io::stdin().lock();
    let mut resident: Option<ResidentPipeline> = None;
    loop {
        let frame = match read_frame(&mut stdin) {
            Ok(Some(frame)) => frame,
            Ok(None) => std::process::exit(0),
            Err(detail) => {
                eprintln!("[cluster shard] malformed input: {detail}");
                std::process::exit(3);
            }
        };
        if frame.kind != FrameKind::Job {
            eprintln!("[cluster shard] unexpected frame kind (want job)");
            std::process::exit(3);
        }
        let job: ShardJob = match std::str::from_utf8(&frame.payload)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
        {
            Some(job) => job,
            None => {
                eprintln!("[cluster shard] job frame did not parse");
                std::process::exit(3);
            }
        };
        ensure_heartbeats(&stdout, Duration::from_millis(job.heartbeat_ms.max(1)));
        let fault = job.work.as_ref().and_then(WorkSpec::protocol_fault);
        let reply = serve_shard_job(&mut resident, job);
        let payload = match serde_json::to_string(&reply) {
            Ok(payload) => payload,
            Err(err) => {
                eprintln!("[cluster shard] reply serialization failed: {err}");
                std::process::exit(3);
            }
        };
        let mut out = lock(&stdout);
        // Hostile protocol faults are expressed through the transport
        // fault vocabulary (tear / garbage), byte-identical to the
        // historical hand-rolled corruption.
        match fault.and_then(|mode| {
            protocol_fault_bytes(
                mode,
                FrameKind::Outcome,
                payload.as_bytes(),
                b"XXXXthis is definitely not a shard frame",
            )
        }) {
            Some(bytes) => {
                let _ = out.write_all(&bytes);
                let _ = out.flush();
                std::process::exit(0);
            }
            None => {
                if write_frame(&mut *out, FrameKind::Outcome, payload.as_bytes()).is_err() {
                    // Parent is gone; nothing left to serve.
                    std::process::exit(0);
                }
            }
        }
    }
}

/// Serves one [`ShardJob`] on the resident pipeline, (re)building it
/// when the context or store path changed.
fn serve_shard_job(resident: &mut Option<ResidentPipeline>, job: ShardJob) -> ShardReply {
    let context = crate::context_fingerprint(&job.chip, &job.thresholds);
    let stale = resident.as_ref().is_none_or(|r| {
        r.context != context || r.store_path != job.store_path || r.buggy != job.buggy
    });
    if stale {
        let pipeline = match AnalysisPipeline::try_new(job.chip.clone()) {
            Ok(pipeline) => pipeline.with_thresholds(job.thresholds),
            Err(err) => {
                return ShardReply {
                    outcome: ShardResult::Err {
                        failure: WireFailure {
                            message: PipelineError::Chip(err).to_string(),
                            transient: false,
                        },
                    },
                    served_cached: false,
                    store_recovered: 0,
                }
            }
        };
        let pipeline = match &job.store_path {
            // A store the shard cannot open degrades to memory-only
            // serving, mirroring the resident service's policy.
            Some(path) => match pipeline.clone().with_store(path) {
                Ok(with_store) => with_store,
                Err(err) => {
                    eprintln!(
                        "[cluster shard] warning: store at {path} not attached ({err}); \
                         serving memory-only"
                    );
                    pipeline
                }
            },
            None => pipeline,
        };
        let pipeline = match job.buggy {
            Some(bug) => pipeline.with_buggy_engine(bug),
            None => pipeline,
        };
        let recovered = pipeline.store_stats().map_or(0, |stats| stats.recovered);
        *resident = Some(ResidentPipeline {
            context,
            store_path: job.store_path.clone(),
            buggy: job.buggy,
            pipeline,
            recovered,
        });
    }
    let resident = resident.as_mut().expect("resident pipeline was just ensured");
    for key in &job.quarantine {
        resident.pipeline.quarantine_key(*key);
    }
    let Some(work) = job.work else {
        return ShardReply {
            outcome: ShardResult::Control,
            served_cached: false,
            store_recovered: resident.recovered,
        };
    };
    let mut policy = RunPolicy::default();
    if let Some(ms) = job.deadline_ms {
        policy = policy.with_deadline(Duration::from_millis(ms));
    }
    if let Some(budget) = job.budget {
        policy = policy.with_budget(SimBudget {
            max_events: budget.max_events,
            max_cycles: budget.max_cycles,
        });
    }
    // Warm means memory *or* disk: a rewarmed shard answers repeat
    // traffic from its store, which counts as a disk hit, not a memory
    // hit.
    let hits_before = resident.pipeline.cache_stats().hits;
    let disk_before = resident.pipeline.store_stats().map_or(0, |stats| stats.hits);
    let op = work.instantiate();
    let outcome = resident.pipeline.run_supervised(op.as_ref(), &policy);
    let served_cached = resident.pipeline.cache_stats().hits > hits_before
        || resident.pipeline.store_stats().map_or(0, |stats| stats.hits) > disk_before;
    match outcome {
        Ok(result) => ShardReply {
            outcome: ShardResult::Ok { result: Box::new((*result).clone()) },
            served_cached,
            store_recovered: resident.recovered,
        },
        Err(err) => ShardReply {
            outcome: ShardResult::Err {
                failure: WireFailure { message: err.to_string(), transient: err.is_transient() },
            },
            served_cached,
            store_recovered: resident.recovered,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::OpSpec;

    #[test]
    fn ring_construction_is_deterministic() {
        let a = HashRing::new(4, DEFAULT_VIRTUAL_NODES);
        let b = HashRing::new(4, DEFAULT_VIRTUAL_NODES);
        assert_eq!(a, b, "two independently built rings must agree on every key");
        assert_eq!(a.shards(), 4);
        assert_eq!(a.virtual_nodes(), DEFAULT_VIRTUAL_NODES);
        assert_eq!(a.points.len(), 4 * DEFAULT_VIRTUAL_NODES);
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let ring = HashRing::new(5, DEFAULT_VIRTUAL_NODES);
        let mut rng = SplitMix64::new(0xDECAF);
        let mut remapped = 0usize;
        let dead = 2usize;
        let samples = 10_000;
        for _ in 0..samples {
            let key = rng.next_u64();
            let owner = ring.owner(key);
            let rerouted = ring.route(key, |shard| shard != dead).expect("peers are alive");
            if owner == dead {
                remapped += 1;
                assert_ne!(rerouted, dead, "a dead shard must never be routed to");
            } else {
                assert_eq!(rerouted, owner, "keys of live shards must not move");
            }
        }
        // The dead shard owned ≈ 1/5 of the keys; only those moved.
        assert!(remapped > 0, "the sample must exercise the dead shard");
        assert!(
            remapped <= samples * 2 / 5,
            "remapped {remapped} of {samples} keys — more than 2/N"
        );
    }

    #[test]
    fn ring_route_rejecting_everything_is_none() {
        let ring = HashRing::new(3, 8);
        assert_eq!(ring.route(42, |_| false), None);
        assert!(ring.route(42, |shard| shard == 1) == Some(1));
    }

    #[test]
    fn shard_frames_round_trip() {
        let job = ShardJob {
            chip: ChipSpec::inference(),
            thresholds: Thresholds::default(),
            work: Some(WorkSpec::op(OpSpec::matmul(16, 16, 16))),
            deadline_ms: Some(250),
            budget: Some(WireBudget { max_events: 10_000, max_cycles: 1e9 }),
            heartbeat_ms: 20,
            store_path: Some("/tmp/shard-0.astr".to_string()),
            quarantine: vec![1, 2, 3],
            buggy: Some(BuggyEngine::new(7)),
        };
        let json = serde_json::to_string(&job).unwrap();
        let back: ShardJob = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);

        let reply = ShardReply {
            outcome: ShardResult::Err {
                failure: WireFailure { message: "boom".to_string(), transient: true },
            },
            served_cached: true,
            store_recovered: 7,
        };
        let json = serde_json::to_string(&reply).unwrap();
        let back: ShardReply = serde_json::from_str(&json).unwrap();
        assert_eq!(reply, back);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let config = ClusterConfig {
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_millis(200),
            ..ClusterConfig::default()
        };
        let mut rng = SplitMix64::new(1);
        let first = backoff_for(1, &config, &mut rng);
        let mut rng = SplitMix64::new(1);
        let third = backoff_for(3, &config, &mut rng);
        let mut rng = SplitMix64::new(1);
        let huge = backoff_for(30, &config, &mut rng);
        assert!(first < third, "{first:?} vs {third:?}");
        assert!(third <= Duration::from_millis(60));
        assert!(huge <= config.respawn_backoff_max, "backoff must cap at the configured max");
        // Same seed, same attempt → same jittered delay (replayable).
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        assert_eq!(backoff_for(2, &config, &mut a), backoff_for(2, &config, &mut b));
    }

    #[test]
    fn cluster_counters_terminal_states_sum() {
        let counters = ClusterCounters {
            accepted: 10,
            completed_ok: 4,
            failed: 3,
            shed_deadline: 2,
            drain_flushed: 1,
            ..ClusterCounters::default()
        };
        assert_eq!(counters.terminal_states(), counters.accepted);
    }

    #[test]
    fn default_config_is_sane() {
        let config = ClusterConfig::default();
        assert!(config.shards >= 1);
        assert_eq!(config.virtual_nodes, DEFAULT_VIRTUAL_NODES);
        assert!(config.max_failovers >= 1);
        assert!(config.respawn_backoff < config.respawn_backoff_max);
    }
}
