//! Online divergence auditing: policy, sampling, and the audit ledger.
//!
//! The fast engine is validated offline (golden fingerprints,
//! differential proptests), but nothing in that suite guards a *served*
//! result against silent divergence at runtime — a miscompiled build, a
//! scratch-reuse bug the fuzzer never drew, a future surrogate tier
//! answering from a model instead of a simulation. The audit tier closes
//! that gap: under an [`AuditPolicy`], a sampled fraction of
//! `Fidelity::Simulated` results is shadow re-executed on the seed
//! oracle ([`ReferenceSimulator`]) and compared record-for-record by
//! [`crate::divergence`].
//!
//! This module owns the *bookkeeping*: the policy (seeded, deterministic
//! per-key sampling with per-priority-class overrides), the deferred
//! audit queue the service drains on scheduling slack, the divergence
//! window that demotes the pipeline, and the [`AuditStats`] counters
//! surfaced through `HealthSnapshot` and the instrumentation footer.
//! The audit *execution* — shadow run, comparison, quarantine, oracle
//! re-answer — lives on `AnalysisPipeline`, which owns the cache and
//! store the quarantine must purge.
//!
//! Audit outcomes never feed the retry/fallback breaker: that breaker
//! models *transient* failures (deadlines, budget trips, panics) where
//! retrying or degrading to the analytical model helps. A divergence is
//! a *correctness* defect in the fast engine; the correct reaction is
//! quarantine plus demotion to the oracle, never an analytical guess.
//!
//! [`ReferenceSimulator`]: ascend_sim::reference::ReferenceSimulator

use crate::service::Priority;
use crate::PipelineResult;
use ascend_faults::SplitMix64;
use ascend_isa::Kernel;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deferred audit jobs held per pipeline; beyond this, new samples are
/// dropped (and counted) rather than letting a saturated service grow
/// an unbounded shadow backlog.
pub(crate) const MAX_PENDING_AUDITS: usize = 64;

/// Sampling and demotion policy for the online audit tier.
///
/// Sampling is *deterministic per cache key*: a SplitMix64 draw seeded
/// from `(seed, key)` is compared against the class-resolved rate, so
/// the same key under the same policy is always (or never) sampled —
/// replays reproduce, and the canary's detection bound is exact rather
/// than probabilistic.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditPolicy {
    /// Base fraction of simulated results shadow re-executed (0 to 1).
    pub rate: f64,
    /// Seed of the per-key sampling draw.
    pub seed: u64,
    /// Per-priority-class rate overrides, indexed by
    /// [`Priority::index`]; `None` falls back to `rate`. Requests
    /// outside a service (bench binaries, direct pipeline use) always
    /// use the base rate.
    pub class_rates: [Option<f64>; Priority::COUNT],
    /// Divergences within [`window`](Self::window) audits that demote
    /// the pipeline to the reference engine for the rest of the run.
    pub demote_after: u32,
    /// Length of the sliding audit-outcome window the demotion breaker
    /// counts over.
    pub window: u32,
    /// Wall-clock bound on one shadow re-execution. The shadow runs
    /// under a [`CancelToken`](ascend_sim::CancelToken) with this
    /// timeout (plus the oracle's event/cycle budget), so an audit can
    /// never hang its worker; a preempted shadow counts as `aborted`,
    /// not as a divergence.
    pub shadow_deadline: Duration,
}

impl Default for AuditPolicy {
    fn default() -> Self {
        AuditPolicy {
            rate: 0.01,
            seed: 0xA0D1_7ED0_5EED_CAFE,
            class_rates: [None; Priority::COUNT],
            demote_after: 3,
            window: 64,
            shadow_deadline: Duration::from_secs(2),
        }
    }
}

impl AuditPolicy {
    /// Sets the base sampling rate (clamped to 0..=1).
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the sampling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the sampling rate for one priority class.
    #[must_use]
    pub fn with_class_rate(mut self, class: Priority, rate: f64) -> Self {
        self.class_rates[class.index()] = Some(rate.clamp(0.0, 1.0));
        self
    }

    /// Sets the demotion breaker: `demote_after` divergences within a
    /// sliding window of `window` audits demote the pipeline.
    #[must_use]
    pub fn with_demotion(mut self, demote_after: u32, window: u32) -> Self {
        self.demote_after = demote_after.max(1);
        self.window = window.max(self.demote_after);
        self
    }

    /// Sets the wall-clock bound on one shadow re-execution.
    #[must_use]
    pub fn with_shadow_deadline(mut self, deadline: Duration) -> Self {
        self.shadow_deadline = deadline;
        self
    }

    /// The sampling rate for a request class (`None` = outside a
    /// service).
    #[must_use]
    pub fn rate_for(&self, class: Option<usize>) -> f64 {
        class
            .and_then(|c| self.class_rates.get(c).copied().flatten())
            .unwrap_or(self.rate)
            .clamp(0.0, 1.0)
    }

    /// Whether the result for `key` is sampled for auditing, under the
    /// rate for `class`. Deterministic in `(seed, key, class rate)`.
    #[must_use]
    pub fn samples(&self, key: u64, class: Option<usize>) -> bool {
        let rate = self.rate_for(class);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        SplitMix64::new(self.seed ^ key).unit_f64() < rate
    }
}

/// Audit-tier counters, surfaced in `HealthSnapshot` and
/// `serve_health.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditStats {
    /// Shadow re-executions that ran to comparison.
    pub audits: u64,
    /// Audits whose comparison found a divergence.
    pub divergences: u64,
    /// Fingerprints quarantined (purged from memory and tombstoned on
    /// disk).
    pub quarantined: u64,
    /// Shadows preempted (deadline/budget) before comparison — not
    /// divergences, not passes.
    pub aborted: u64,
    /// Sampled results whose deferred audit was dropped (queue full or
    /// drained away) before it could run.
    pub dropped: u64,
    /// Deferred audits currently waiting for scheduling slack.
    pub pending: u64,
    /// Whether the divergence breaker has demoted the pipeline to the
    /// reference engine for the rest of the run.
    pub demoted: bool,
}

impl AuditStats {
    /// True once any audit activity (or demotion) has occurred.
    #[must_use]
    pub fn any_activity(&self) -> bool {
        self.audits > 0 || self.aborted > 0 || self.dropped > 0 || self.pending > 0 || self.demoted
    }
}

impl std::fmt::Display for AuditStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} audits, {} divergences, {} quarantined, {} aborted, {} dropped, {} pending{}",
            self.audits,
            self.divergences,
            self.quarantined,
            self.aborted,
            self.dropped,
            self.pending,
            if self.demoted { " [DEMOTED]" } else { "" },
        )
    }
}

/// A sampled result awaiting deferred shadow re-execution.
pub(crate) struct AuditJob {
    pub(crate) key: u64,
    pub(crate) kernel: Kernel,
    pub(crate) result: Arc<PipelineResult>,
}

/// Mutable audit state behind one lock (leaf lock: never held while
/// simulating, comparing, or touching cache/store locks).
#[derive(Default)]
struct AuditLedger {
    audits: u64,
    divergences: u64,
    quarantined: u64,
    aborted: u64,
    dropped: u64,
    /// Sliding window of recent audit outcomes (`true` = divergence).
    window: VecDeque<bool>,
    /// Keys already sampled this run — each fingerprint is audited at
    /// most once (re-executions after eviction skip the shadow).
    sampled: HashSet<u64>,
    /// Deferred jobs awaiting scheduling slack.
    queue: VecDeque<AuditJob>,
}

/// Shared audit state of one pipeline (and all its clones).
pub(crate) struct Auditor {
    policy: AuditPolicy,
    /// Deferred mode: sampled results are queued for slack-time audit
    /// (the service path). Inline mode audits synchronously before the
    /// result is returned (bench binaries, direct pipeline use).
    deferred: bool,
    demoted: AtomicBool,
    ledger: Mutex<AuditLedger>,
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("policy", &self.policy)
            .field("deferred", &self.deferred)
            .field("demoted", &self.is_demoted())
            .finish_non_exhaustive()
    }
}

impl Auditor {
    pub(crate) fn new(policy: AuditPolicy, deferred: bool) -> Self {
        Auditor {
            policy,
            deferred,
            demoted: AtomicBool::new(false),
            ledger: Mutex::new(AuditLedger::default()),
        }
    }

    pub(crate) fn policy(&self) -> &AuditPolicy {
        &self.policy
    }

    pub(crate) fn deferred(&self) -> bool {
        self.deferred
    }

    pub(crate) fn is_demoted(&self) -> bool {
        self.demoted.load(Ordering::Acquire)
    }

    /// Decides whether the freshly computed result for `key` should be
    /// shadow-audited, marking the key as sampled. A demoted pipeline
    /// never samples (every result already comes from the oracle).
    pub(crate) fn should_audit(&self, key: u64) -> bool {
        if self.is_demoted() || !self.policy.samples(key, current_class()) {
            return false;
        }
        crate::lock(&self.ledger).sampled.insert(key)
    }

    /// Queues a deferred audit; drops (and counts) when the backlog is
    /// full.
    pub(crate) fn enqueue(&self, job: AuditJob) {
        let mut ledger = crate::lock(&self.ledger);
        if ledger.queue.len() >= MAX_PENDING_AUDITS {
            ledger.dropped += 1;
        } else {
            ledger.queue.push_back(job);
        }
    }

    /// Takes the oldest deferred audit, if any.
    pub(crate) fn take_job(&self) -> Option<AuditJob> {
        crate::lock(&self.ledger).queue.pop_front()
    }

    pub(crate) fn pending(&self) -> usize {
        crate::lock(&self.ledger).queue.len()
    }

    /// Discards the deferred backlog (drain path), counting the jobs as
    /// dropped.
    pub(crate) fn drop_pending(&self) -> usize {
        let mut ledger = crate::lock(&self.ledger);
        let dropped = ledger.queue.len();
        ledger.dropped += dropped as u64;
        ledger.queue.clear();
        dropped
    }

    /// Records a completed comparison. On divergence, advances the
    /// quarantine counter and the demotion window; returns `true` when
    /// this outcome just tripped demotion.
    pub(crate) fn record_outcome(&self, divergence: bool) -> bool {
        let mut ledger = crate::lock(&self.ledger);
        ledger.audits += 1;
        if divergence {
            ledger.divergences += 1;
            ledger.quarantined += 1;
        }
        ledger.window.push_back(divergence);
        while ledger.window.len() > self.policy.window as usize {
            ledger.window.pop_front();
        }
        let in_window = ledger.window.iter().filter(|&&d| d).count() as u32;
        drop(ledger);
        if divergence
            && in_window >= self.policy.demote_after
            && !self.demoted.swap(true, Ordering::AcqRel)
        {
            return true;
        }
        false
    }

    /// Records a shadow preempted before comparison.
    pub(crate) fn record_aborted(&self) {
        crate::lock(&self.ledger).aborted += 1;
    }

    pub(crate) fn stats(&self) -> AuditStats {
        let ledger = crate::lock(&self.ledger);
        AuditStats {
            audits: ledger.audits,
            divergences: ledger.divergences,
            quarantined: ledger.quarantined,
            aborted: ledger.aborted,
            dropped: ledger.dropped,
            pending: ledger.queue.len() as u64,
            demoted: self.is_demoted(),
        }
    }

    /// Clears counters, the demotion latch, the sampled set, and the
    /// backlog (mirrors `AnalysisPipeline::reset`).
    pub(crate) fn reset(&self) {
        let mut ledger = crate::lock(&self.ledger);
        *ledger = AuditLedger::default();
        drop(ledger);
        self.demoted.store(false, Ordering::Release);
    }
}

thread_local! {
    /// Priority class of the request currently executing on this worker
    /// thread, set by the service around job execution so the sampler
    /// can resolve per-class rates without threading a parameter
    /// through the supervised call chain.
    static REQUEST_CLASS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The request class active on this thread, if any.
pub(crate) fn current_class() -> Option<usize> {
    REQUEST_CLASS.with(Cell::get)
}

/// RAII guard scoping a request class to one job execution (restored on
/// drop, including unwinds).
pub(crate) struct RequestClassGuard {
    prev: Option<usize>,
}

impl RequestClassGuard {
    pub(crate) fn set(class: usize) -> Self {
        let prev = REQUEST_CLASS.with(|slot| slot.replace(Some(class)));
        RequestClassGuard { prev }
    }
}

impl Drop for RequestClassGuard {
    fn drop(&mut self) {
        REQUEST_CLASS.with(|slot| slot.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_near_rate() {
        let policy = AuditPolicy::default().with_rate(0.25).with_seed(7);
        let hits: usize = (0..10_000).filter(|&k| policy.samples(k, None)).count();
        // A deterministic draw: the exact count is fixed for this seed,
        // and must sit near 25% of 10k.
        assert!((2_000..3_000).contains(&hits), "{hits} sampled of 10000");
        for k in 0..100 {
            assert_eq!(policy.samples(k, None), policy.samples(k, None));
        }
    }

    #[test]
    fn class_overrides_resolve_and_fall_back() {
        let policy =
            AuditPolicy::default().with_rate(1.0).with_class_rate(Priority::Interactive, 0.0);
        assert!(!policy.samples(42, Some(Priority::Interactive.index())));
        assert!(policy.samples(42, Some(Priority::Sweep.index())));
        assert!(policy.samples(42, None));
    }

    #[test]
    fn each_key_is_sampled_once() {
        let auditor = Auditor::new(AuditPolicy::default().with_rate(1.0), false);
        assert!(auditor.should_audit(9));
        assert!(!auditor.should_audit(9));
        assert!(auditor.should_audit(10));
    }

    #[test]
    fn demotion_trips_after_n_divergences_in_window() {
        let auditor = Auditor::new(AuditPolicy::default().with_demotion(2, 8), false);
        assert!(!auditor.record_outcome(true));
        assert!(!auditor.record_outcome(false));
        assert!(auditor.record_outcome(true));
        assert!(auditor.is_demoted());
        // Already demoted: no second trip, and sampling stops.
        assert!(!auditor.record_outcome(true));
        assert!(!auditor.should_audit(1));
    }

    #[test]
    fn old_divergences_fall_out_of_the_window() {
        let auditor = Auditor::new(AuditPolicy::default().with_demotion(2, 2), false);
        assert!(!auditor.record_outcome(true));
        assert!(!auditor.record_outcome(false));
        // The window is [false, true-from-now]: one divergence, no trip.
        assert!(!auditor.record_outcome(true));
        assert!(!auditor.is_demoted());
    }

    #[test]
    fn backlog_is_bounded_and_drains_drop() {
        let auditor = Auditor::new(AuditPolicy::default(), true);
        let pipeline = crate::AnalysisPipeline::new(ascend_arch::ChipSpec::training());
        let op = ascend_ops::AddRelu::new(1 << 10);
        let result = pipeline.run(&op).unwrap();
        let kernel = ascend_ops::Operator::build(&op, pipeline.chip()).unwrap();
        for i in 0..(MAX_PENDING_AUDITS + 3) {
            auditor.enqueue(AuditJob {
                key: i as u64,
                kernel: kernel.clone(),
                result: result.clone(),
            });
        }
        assert_eq!(auditor.pending(), MAX_PENDING_AUDITS);
        assert_eq!(auditor.stats().dropped, 3);
        assert_eq!(auditor.drop_pending(), MAX_PENDING_AUDITS);
        assert_eq!(auditor.pending(), 0);
        assert_eq!(auditor.stats().dropped, 3 + MAX_PENDING_AUDITS as u64);
    }

    #[test]
    fn request_class_guard_scopes_and_restores() {
        assert_eq!(current_class(), None);
        {
            let _outer = RequestClassGuard::set(1);
            assert_eq!(current_class(), Some(1));
            {
                let _inner = RequestClassGuard::set(0);
                assert_eq!(current_class(), Some(0));
            }
            assert_eq!(current_class(), Some(1));
        }
        assert_eq!(current_class(), None);
    }
}
