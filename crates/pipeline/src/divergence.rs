//! Record-for-record trace comparison, promoted from the golden suite.
//!
//! The golden differential suite proved the arena engine bit-identical
//! to the seed engine *offline*. The online audit tier re-runs the same
//! comparison at serve time: a sampled result's trace against a fresh
//! shadow execution on [`ReferenceSimulator`]. This module holds the
//! comparison itself — the fingerprint fold the committed golden file
//! was generated under (byte-for-byte the same fold; changing it
//! invalidates `tests/golden/engine_fingerprints.txt`) and a forensic
//! [`DivergenceReport`] identifying *where* two traces part ways: the
//! first divergent record, which field of it, and the per-queue busy
//! timeline deltas.
//!
//! Divergence here is `f64`-bit-exact, not tolerance-based: the two
//! engines are specified to be identical, so any difference — a single
//! ULP on one record's end time — is a defect, never noise.
//!
//! [`ReferenceSimulator`]: ascend_sim::reference::ReferenceSimulator

use crate::digest::Fnv64;
use ascend_arch::Component;
use ascend_sim::{InstrRecord, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Folds every observable field of a trace — record order, queues,
/// `f64` bit patterns of all three timestamps, stall attribution, and
/// the total — into one stable fingerprint.
///
/// This is the exact fold of the golden suite: `Fnv64::write_u64` over
/// record count, total-cycle bits, then per record index, queue (or
/// `u64::MAX` for the dispatcher), `available_at`/`start`/`end` bits,
/// and the stall cause. Two traces fingerprint equal iff they are
/// observationally identical.
#[must_use]
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(trace.records().len() as u64);
    h.write_u64(trace.total_cycles().to_bits());
    for r in trace.records() {
        h.write_u64(r.index as u64);
        h.write_u64(r.queue.map_or(u64::MAX, |q| q.index() as u64));
        h.write_u64(r.available_at.to_bits());
        h.write_u64(r.start.to_bits());
        h.write_u64(r.end.to_bits());
        h.write_u64(r.stall as u64);
    }
    h.finish()
}

/// The first record at which two traces disagree, and how.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordDivergence {
    /// Position in the trace's record vector — the event index at
    /// which the timelines part ways.
    pub event_index: usize,
    /// Which field of the record differs (`index`, `queue`,
    /// `available_at`, `start`, `end`, `stall`), or `record count` /
    /// `total_cycles` when the records themselves all match.
    pub field: String,
    /// The served value, rendered.
    pub served: String,
    /// The oracle value, rendered.
    pub oracle: String,
}

/// Busy-cycle totals for one component queue on both timelines.
///
/// Only queues whose totals differ appear in a report; the delta
/// localizes a divergence to the component whose timing model (or
/// scheduling) drifted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueDelta {
    /// The component queue (its `Debug` rendering, e.g. `Vector`).
    pub queue: String,
    /// Busy cycles on the served trace.
    pub served_busy: f64,
    /// Busy cycles on the oracle trace.
    pub oracle_busy: f64,
}

impl QueueDelta {
    /// Served minus oracle busy cycles.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.served_busy - self.oracle_busy
    }
}

/// Forensic description of a served trace diverging from its oracle
/// shadow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Kernel the traces belong to.
    pub kernel: String,
    /// Golden fingerprint of the served trace.
    pub served_fingerprint: u64,
    /// Golden fingerprint of the oracle trace.
    pub oracle_fingerprint: u64,
    /// Record counts on both sides.
    pub served_records: usize,
    /// Oracle record count.
    pub oracle_records: usize,
    /// Total cycles on the served trace.
    pub served_total_cycles: f64,
    /// Total cycles on the oracle trace.
    pub oracle_total_cycles: f64,
    /// The first record-level disagreement.
    pub first_divergence: RecordDivergence,
    /// Per-queue busy-cycle deltas, only for queues that differ.
    pub queue_deltas: Vec<QueueDelta>,
}

/// Compares a served trace against its oracle shadow run,
/// record-for-record and `f64`-bit-exact.
///
/// Returns `None` when the traces are observationally identical
/// (equal golden fingerprints), otherwise a [`DivergenceReport`]
/// pinpointing the first divergent record.
#[must_use]
pub fn compare(served: &Trace, oracle: &Trace) -> Option<DivergenceReport> {
    let served_fingerprint = trace_fingerprint(served);
    let oracle_fingerprint = trace_fingerprint(oracle);
    if served_fingerprint == oracle_fingerprint {
        return None;
    }
    let first_divergence = served
        .records()
        .iter()
        .zip(oracle.records())
        .enumerate()
        .find_map(|(i, (s, o))| record_divergence(i, s, o))
        .unwrap_or_else(|| structural_divergence(served, oracle));
    let queue_deltas = Component::ALL
        .into_iter()
        .filter_map(|component| {
            let served_busy = served.busy_cycles(component);
            let oracle_busy = oracle.busy_cycles(component);
            (served_busy.to_bits() != oracle_busy.to_bits()).then(|| QueueDelta {
                queue: format!("{component:?}"),
                served_busy,
                oracle_busy,
            })
        })
        .collect();
    Some(DivergenceReport {
        kernel: served.kernel_name().to_string(),
        served_fingerprint,
        oracle_fingerprint,
        served_records: served.records().len(),
        oracle_records: oracle.records().len(),
        served_total_cycles: served.total_cycles(),
        oracle_total_cycles: oracle.total_cycles(),
        first_divergence,
        queue_deltas,
    })
}

/// First differing field of one record pair, if any.
fn record_divergence(i: usize, s: &InstrRecord, o: &InstrRecord) -> Option<RecordDivergence> {
    let diverge = |field: &str, served: String, oracle: String| {
        Some(RecordDivergence { event_index: i, field: field.to_string(), served, oracle })
    };
    if s.index != o.index {
        return diverge("index", s.index.to_string(), o.index.to_string());
    }
    if s.queue != o.queue {
        return diverge("queue", format!("{:?}", s.queue), format!("{:?}", o.queue));
    }
    if s.available_at.to_bits() != o.available_at.to_bits() {
        return diverge("available_at", render_f64(s.available_at), render_f64(o.available_at));
    }
    if s.start.to_bits() != o.start.to_bits() {
        return diverge("start", render_f64(s.start), render_f64(o.start));
    }
    if s.end.to_bits() != o.end.to_bits() {
        return diverge("end", render_f64(s.end), render_f64(o.end));
    }
    if s.stall != o.stall {
        return diverge("stall", format!("{:?}", s.stall), format!("{:?}", o.stall));
    }
    None
}

/// Divergence when every paired record matches: the traces differ in
/// length or only in their total.
fn structural_divergence(served: &Trace, oracle: &Trace) -> RecordDivergence {
    if served.records().len() != oracle.records().len() {
        RecordDivergence {
            event_index: served.records().len().min(oracle.records().len()),
            field: "record count".to_string(),
            served: served.records().len().to_string(),
            oracle: oracle.records().len().to_string(),
        }
    } else {
        RecordDivergence {
            event_index: served.records().len(),
            field: "total_cycles".to_string(),
            served: render_f64(served.total_cycles()),
            oracle: render_f64(oracle.total_cycles()),
        }
    }
}

/// Renders an `f64` with its bit pattern, so two values that print the
/// same decimal still show their one-ULP difference.
fn render_f64(v: f64) -> String {
    format!("{v} (bits {:#018x})", v.to_bits())
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence on kernel '{}': served {:#018x} vs oracle {:#018x}",
            self.kernel, self.served_fingerprint, self.oracle_fingerprint
        )?;
        writeln!(
            f,
            "  first divergent record: event {} field {} — served {} vs oracle {}",
            self.first_divergence.event_index,
            self.first_divergence.field,
            self.first_divergence.served,
            self.first_divergence.oracle
        )?;
        writeln!(
            f,
            "  records {} vs {}, total cycles {} vs {}",
            self.served_records,
            self.oracle_records,
            self.served_total_cycles,
            self.oracle_total_cycles
        )?;
        for delta in &self.queue_deltas {
            writeln!(
                f,
                "  queue {}: busy {} vs {} (delta {:+})",
                delta.queue,
                delta.served_busy,
                delta.oracle_busy,
                delta.delta()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_sim::StallCause;

    fn record(index: usize, start: f64, end: f64) -> InstrRecord {
        InstrRecord {
            index,
            queue: Some(Component::Vector),
            available_at: start,
            start,
            end,
            stall: StallCause::None,
        }
    }

    fn trace(records: Vec<InstrRecord>) -> Trace {
        let total = records.iter().map(|r| r.end).fold(0.0, f64::max);
        Trace::from_parts("t", records, total)
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = trace(vec![record(0, 0.0, 4.0), record(1, 4.0, 9.0)]);
        let b = trace(vec![record(0, 0.0, 4.0), record(1, 4.0, 9.0)]);
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert!(compare(&a, &b).is_none());
    }

    #[test]
    fn one_ulp_on_one_end_is_a_divergence() {
        let a = trace(vec![record(0, 0.0, 4.0), record(1, 4.0, 9.0)]);
        let mut records = vec![record(0, 0.0, 4.0), record(1, 4.0, 9.0)];
        records[1].end = f64::from_bits(records[1].end.to_bits() + 1);
        let b = trace(records);
        let report = compare(&b, &a).expect("must diverge");
        assert_eq!(report.first_divergence.event_index, 1);
        assert_eq!(report.first_divergence.field, "end");
        assert_eq!(report.queue_deltas.len(), 1);
        assert_eq!(report.queue_deltas[0].queue, "Vector");
    }

    #[test]
    fn truncated_trace_reports_record_count() {
        let a = trace(vec![record(0, 0.0, 4.0), record(1, 4.0, 9.0)]);
        let b = trace(vec![record(0, 0.0, 4.0)]);
        let report = compare(&b, &a).expect("must diverge");
        assert_eq!(report.first_divergence.field, "record count");
        assert_eq!(report.first_divergence.event_index, 1);
    }

    #[test]
    fn total_only_divergence_is_reported() {
        let records = vec![record(0, 0.0, 4.0)];
        let a = Trace::from_parts("t", records.clone(), 4.0);
        let b = Trace::from_parts("t", records, 5.0);
        let report = compare(&b, &a).expect("must diverge");
        assert_eq!(report.first_divergence.field, "total_cycles");
        assert!(report.queue_deltas.is_empty());
    }

    #[test]
    fn report_renders_forensics() {
        let a = trace(vec![record(0, 0.0, 4.0)]);
        let b = trace(vec![record(0, 0.0, 5.0)]);
        let report = compare(&b, &a).unwrap();
        let text = report.to_string();
        assert!(text.contains("first divergent record"), "{text}");
        assert!(text.contains("queue Vector"), "{text}");
    }
}
