//! Fixed-size latency reservoirs and percentile summaries.
//!
//! Overload behaviour is invisible in means: a service melting down can
//! still report a healthy *average* latency while its tail explodes. The
//! pipeline therefore keeps a bounded [`LatencyReservoir`] per stage (and
//! the service one per priority class) and reports nearest-rank
//! p50/p95/p99 via [`LatencySummary`]. The reservoir uses Algorithm R
//! with a seeded [`SplitMix64`], so memory stays fixed no matter how long
//! the process lives and every sample seen has equal probability of being
//! represented.

use ascend_faults::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default number of samples a reservoir retains.
pub const DEFAULT_RESERVOIR_CAPACITY: usize = 512;

/// A fixed-size uniform sample of a latency stream (Algorithm R).
///
/// `record` is O(1); `summary` sorts the retained samples (bounded by the
/// capacity, not the stream length). Deterministic for a given seed and
/// sample sequence.
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    samples: Vec<f64>,
    seen: u64,
    capacity: usize,
    rng: SplitMix64,
}

impl Default for LatencyReservoir {
    fn default() -> Self {
        LatencyReservoir::new(DEFAULT_RESERVOIR_CAPACITY, 0x5EED_1A7E)
    }
}

impl LatencyReservoir {
    /// A reservoir retaining at most `capacity` samples (minimum 1),
    /// with replacement decisions drawn from `seed`.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        let capacity = capacity.max(1);
        LatencyReservoir {
            samples: Vec::with_capacity(capacity),
            seen: 0,
            capacity,
            rng: SplitMix64::new(seed),
        }
    }

    /// Records one latency observation (seconds).
    pub fn record(&mut self, secs: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(secs);
        } else {
            // Algorithm R: replace a random slot with probability
            // capacity/seen, keeping the retained set uniform over the
            // whole stream.
            let index = self.rng.below(self.seen);
            if (index as usize) < self.capacity {
                self.samples[index as usize] = secs;
            }
        }
    }

    /// Total observations recorded (not just those retained).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The percentile summary of the retained sample.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        LatencySummary {
            count: self.seen,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
            p99: nearest_rank(&sorted, 0.99),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn nearest_rank(sorted: &[f64], quantile: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (quantile * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Percentiles (seconds) of one latency stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Observations recorded into the reservoir over its lifetime.
    pub count: u64,
    /// Median latency in seconds.
    pub p50: f64,
    /// 95th-percentile latency in seconds.
    pub p95: f64,
    /// 99th-percentile latency in seconds.
    pub p99: f64,
    /// Largest retained sample in seconds.
    pub max: f64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}/{:.2}/{:.2}", self.p50 * 1e3, self.p95 * 1e3, self.p99 * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reservoir_summarizes_to_zero() {
        let summary = LatencyReservoir::default().summary();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p50, 0.0);
        assert_eq!(summary.p99, 0.0);
        assert_eq!(summary.max, 0.0);
    }

    #[test]
    fn under_capacity_percentiles_are_exact() {
        let mut r = LatencyReservoir::new(100, 1);
        for i in 1..=100u64 {
            r.record(i as f64);
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn over_capacity_memory_stays_bounded_and_sample_is_plausible() {
        let mut r = LatencyReservoir::new(64, 42);
        for i in 0..100_000u64 {
            r.record(i as f64 / 100_000.0);
        }
        let s = r.summary();
        assert_eq!(s.count, 100_000);
        // The retained set is a uniform sample of [0, 1): the median of
        // 64 uniform draws concentrates tightly around 0.5.
        assert!((0.25..0.75).contains(&s.p50), "p50 = {}", s.p50);
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95 && s.max >= s.p99);
    }

    #[test]
    fn same_seed_same_summary() {
        let mut a = LatencyReservoir::new(32, 7);
        let mut b = LatencyReservoir::new(32, 7);
        for i in 0..10_000u64 {
            a.record((i % 997) as f64);
            b.record((i % 997) as f64);
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn display_is_milliseconds() {
        let mut r = LatencyReservoir::new(8, 3);
        r.record(0.001);
        r.record(0.002);
        assert_eq!(r.summary().to_string(), "1.00/2.00/2.00");
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut r = LatencyReservoir::new(8, 3);
        r.record(0.25);
        let s = r.summary();
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p95, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.max, 0.25);
    }
}
