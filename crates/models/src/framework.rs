//! Programming-framework frontends (paper, Figure 14b).
//!
//! The Ascend inference chip converts models from TensorFlow, PyTorch,
//! Caffe, or MindSpore into its executable format; all frontends lower
//! onto the *same* operator library, so the bottleneck distribution is
//! essentially framework-independent. [`convert_for_framework`] models
//! the conversion: the operator set and counts are preserved, only the
//! lowering order (and therefore nothing the component analysis sees)
//! differs.

use crate::ModelWorkload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A deep-learning framework frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// MindSpore (the native frontend).
    MindSpore,
    /// TensorFlow.
    TensorFlow,
    /// PyTorch.
    PyTorch,
    /// Caffe.
    Caffe,
}

impl Framework {
    /// All supported frontends.
    pub const ALL: [Framework; 4] =
        [Framework::MindSpore, Framework::TensorFlow, Framework::PyTorch, Framework::Caffe];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Framework::MindSpore => "MindSpore",
            Framework::TensorFlow => "TensorFlow",
            Framework::PyTorch => "PyTorch",
            Framework::Caffe => "Caffe",
        }
    }

    fn lowering_offset(self) -> usize {
        match self {
            Framework::MindSpore => 0,
            Framework::TensorFlow => 1,
            Framework::PyTorch => 2,
            Framework::Caffe => 3,
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts a model for execution through `framework`'s frontend: the
/// operator stream is rotated by the frontend's lowering order, leaving
/// the operator set, shapes, and counts untouched.
#[must_use]
pub fn convert_for_framework(model: &ModelWorkload, framework: Framework) -> ModelWorkload {
    let mut ops: Vec<crate::OpInvocation> = model.ops().to_vec();
    if !ops.is_empty() {
        let offset = framework.lowering_offset() % ops.len();
        ops.rotate_left(offset);
    }
    ModelWorkload::new(
        format!("{} [{framework}]", model.name()),
        model.parameters_millions(),
        model.dataset(),
        model.npus(),
        model.phase(),
        model.overhead_fraction(),
        ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, ModelRunner, Phase};
    use ascend_arch::ChipSpec;

    #[test]
    fn conversion_preserves_the_operator_multiset() {
        let model = zoo::mobilenet_v3(Phase::Inference);
        for framework in Framework::ALL {
            let converted = convert_for_framework(&model, framework);
            assert_eq!(converted.total_invocations(), model.total_invocations());
            let mut original: Vec<String> =
                model.ops().iter().map(|o| o.operator().name()).collect();
            let mut rotated: Vec<String> =
                converted.ops().iter().map(|o| o.operator().name()).collect();
            original.sort();
            rotated.sort();
            assert_eq!(original, rotated, "{framework}");
        }
    }

    #[test]
    fn distributions_are_framework_independent() {
        // Figure 14b: the same operator library underneath means the
        // bottleneck distribution does not depend on the frontend.
        let chip = ChipSpec::inference();
        let runner = ModelRunner::new(chip);
        let model = zoo::mobilenet_v3(Phase::Inference);
        let reference = runner.analyze(&model).unwrap().distribution();
        for framework in [Framework::TensorFlow, Framework::PyTorch, Framework::Caffe] {
            let converted = convert_for_framework(&model, framework);
            let distribution = runner.analyze(&converted).unwrap().distribution();
            for (label, share) in reference.entries() {
                assert!(
                    (distribution.share(&label) - share).abs() < 1e-9,
                    "{framework}: {label} differs"
                );
            }
        }
    }
}
