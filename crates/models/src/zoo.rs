//! The model zoo of Table 2.
//!
//! Each constructor returns one *iteration* of the model as an operator
//! stream. Shapes are scaled so a single simulated AICore finishes in
//! milliseconds, while the relative operator mix matches the published
//! architectures; counts carry the size differences between models.
//!
//! Flag conventions encode the state of the production operator library
//! before the paper's optimization campaign: Cube GEMMs ship with
//! double-buffered staging (`pp`) because the library matured for years,
//! while the long tail of element-wise/conversion operators ships in its
//! naive form — exactly the tail the campaign then optimizes.

use crate::{ModelWorkload, OpInvocation, Phase};
use ascend_ops::{
    AddRelu, AvgPool, BatchMatMul, Cast, Conv2d, Depthwise, Dropout, Elementwise, EltwiseKind,
    FullyConnection, Gelu, LayerNorm, MatMul, MatMulAdd, OptFlags, Softmax, TransData,
};

fn inv(operator: impl ascend_ops::Operator + 'static, count: u64) -> OpInvocation {
    OpInvocation::new(Box::new(operator), count)
}

fn pp() -> OptFlags {
    OptFlags::new().pp(true)
}

/// All eleven training workloads of Table 2, in its row order.
#[must_use]
pub fn all_training() -> Vec<ModelWorkload> {
    vec![
        mobilenet_v3(Phase::Training),
        resnet50(Phase::Training),
        vit(),
        vgg16(Phase::Training),
        bert(),
        gpt2(Phase::Training),
        deepfm(),
        wide_and_deep(),
        dlrm(),
        llama2(),
        pangu_alpha(),
    ]
}

/// MobileNetV3 (5.4M parameters, ImageNet2012). The inference stream has
/// 155 computation operators, matching Section 6.2.2.
#[must_use]
pub fn mobilenet_v3(phase: Phase) -> ModelWorkload {
    const E: u64 = 1 << 17;
    // Most convolutions ship with hoisted weights (the library matured),
    // a few stragglers still reload them and sit at their MTE-GM bound.
    let mut ops = vec![
        inv(Conv2d::new(E, 288).with_flags(OptFlags::new().mrt(true)), 45),
        inv(Conv2d::new(E, 288), 5),
        inv(Depthwise::new(E), 17),
        inv(AddRelu::new(E), 20),
        inv(Elementwise::new(EltwiseKind::Mul, E), 32),
        inv(AvgPool::new(E / 8), 10),
        inv(Cast::new(E), 9),
        inv(TransData::new(E), 15),
        inv(FullyConnection::new(32, 256, 1024), 2),
    ];
    let (npus, overhead) = match phase {
        Phase::Training => {
            // Backward passes double the convolution work and add
            // gradient element-wise traffic and weight casts.
            ops.push(inv(Conv2d::new(E, 288).with_flags(OptFlags::new().mrt(true)), 40));
            ops.push(inv(Elementwise::new(EltwiseKind::Mul, E), 25));
            ops.push(inv(Cast::new(E), 12));
            (8, 0.35)
        }
        Phase::Inference => (1, 0.15),
    };
    ModelWorkload::new("MobileNetV3", 5.4, "ImageNet2012", npus, phase, overhead, ops)
}

/// ResNet50 (25.6M parameters, ImageNet2012).
#[must_use]
pub fn resnet50(phase: Phase) -> ModelWorkload {
    const E: u64 = 1 << 18;
    let mut ops = vec![
        inv(Conv2d::new(E, 576).with_flags(OptFlags::new().mrt(true)), 53),
        inv(AddRelu::new(E), 16),
        inv(Elementwise::new(EltwiseKind::Add, E), 16),
        inv(AvgPool::new(E / 8).with_flags(OptFlags::new().aip(true)), 1),
        inv(FullyConnection::new(32, 512, 1024), 1),
        inv(TransData::new(E), 8),
        inv(LayerNorm::new(E), 16), // batch-norm stands in as LayerNorm
    ];
    let (npus, overhead) = match phase {
        Phase::Training => {
            ops.push(inv(Conv2d::new(E, 576).with_flags(OptFlags::new().mrt(true)), 50));
            ops.push(inv(Elementwise::new(EltwiseKind::Mul, E), 30));
            ops.push(inv(Cast::new(E), 10));
            (8, 0.3)
        }
        Phase::Inference => (1, 0.15),
    };
    ModelWorkload::new("ResNet50", 25.6, "ImageNet2012", npus, phase, overhead, ops)
}

/// ViT-Base (86M parameters, ImageNet2012) training.
#[must_use]
pub fn vit() -> ModelWorkload {
    const E: u64 = 1 << 18;
    ModelWorkload::new(
        "ViT",
        86.0,
        "ImageNet2012",
        8,
        Phase::Training,
        0.25,
        vec![
            inv(MatMul::new(512, 512, 512).with_flags(pp()), 8),
            inv(BatchMatMul::new(4, 256, 256, 256).with_flags(pp()), 8),
            inv(Softmax::new(E), 24),
            inv(Elementwise::new(EltwiseKind::Mul, E), 24),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 12),
            inv(Gelu::new(E), 12),
            inv(Elementwise::new(EltwiseKind::Add, E), 12),
            inv(Dropout::new(E), 8),
            inv(TransData::new(E), 12),
            inv(Cast::new(E), 8),
        ],
    )
}

/// VGG16 (138.4M parameters, ImageNet2012).
#[must_use]
pub fn vgg16(phase: Phase) -> ModelWorkload {
    const E: u64 = 1 << 18;
    let mut ops = vec![
        inv(Conv2d::new(E, 1152).with_flags(OptFlags::new().mrt(true)), 13),
        inv(AddRelu::new(E), 15),
        inv(FullyConnection::new(32, 512, 1024), 3),
        inv(MatMul::new(512, 512, 512).with_flags(pp()), 3),
        inv(AvgPool::new(E / 8), 5),
    ];
    let (npus, overhead) = match phase {
        Phase::Training => {
            ops.push(inv(Conv2d::new(E, 1152).with_flags(OptFlags::new().mrt(true)), 13));
            ops.push(inv(Elementwise::new(EltwiseKind::Mul, E), 20));
            (8, 0.3)
        }
        Phase::Inference => (1, 0.15),
    };
    ModelWorkload::new("VGG16", 138.4, "ImageNet2012", npus, phase, overhead, ops)
}

/// BERT-Base (110M parameters, WikiText2) training.
#[must_use]
pub fn bert() -> ModelWorkload {
    const E: u64 = 1 << 18;
    ModelWorkload::new(
        "Bert",
        110.0,
        "WikiText2",
        8,
        Phase::Training,
        0.25,
        vec![
            inv(MatMul::new(512, 512, 512).with_flags(pp()), 12),
            inv(BatchMatMul::new(4, 256, 256, 256).with_flags(pp()), 12),
            inv(Softmax::new(E), 24),
            inv(Elementwise::new(EltwiseKind::Mul, E), 25),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 20),
            inv(Gelu::new(E), 12),
            inv(Dropout::new(E), 12),
            inv(Elementwise::new(EltwiseKind::Add, E), 12),
            inv(TransData::new(E), 10),
            inv(Cast::new(E), 8),
        ],
    )
}

/// GPT-2 (355M parameters, WikiText2).
///
/// The training stream carries the gradient-era traffic (dropout masks,
/// FP32→FP16 weight casts, backward element-wise ops); the inference
/// stream is the quantized deployment — no dropout, INT8 GEMMs, and far
/// less data movement, which on the weaker inference chip shifts the
/// pressure from the MTEs toward the compute units (Figure 14c).
#[must_use]
pub fn gpt2(phase: Phase) -> ModelWorkload {
    const E: u64 = 1 << 18;
    let (ops, npus, overhead) = match phase {
        Phase::Training => (
            vec![
                inv(MatMulAdd::new(512, 512, 512), 14),
                inv(BatchMatMul::new(4, 256, 256, 256).with_flags(pp()), 16),
                inv(Softmax::new(E), 30),
                inv(Elementwise::new(EltwiseKind::Mul, E), 33),
                inv(Elementwise::new(EltwiseKind::RealDiv, E), 24),
                inv(Gelu::new(E), 16),
                inv(Dropout::new(E), 14),
                inv(TransData::new(E), 12),
                inv(Cast::new(E), 10),
            ],
            8,
            0.25,
        ),
        Phase::Inference => (
            vec![
                inv(MatMulAdd::new(512, 512, 512).with_flags(OptFlags::new().lc(true)), 14),
                inv(BatchMatMul::new(4, 256, 256, 256).with_flags(pp().lc(true)), 12),
                inv(Softmax::new(E), 30),
                inv(Elementwise::new(EltwiseKind::Mul, E), 20),
                inv(Gelu::new(E), 16),
                inv(TransData::new(E), 8),
            ],
            1,
            0.15,
        ),
    };
    ModelWorkload::new("GPT2", 355.0, "WikiText2", npus, phase, overhead, ops)
}

/// DeepFM (16.5M parameters, Criteo) training.
#[must_use]
pub fn deepfm() -> ModelWorkload {
    const E: u64 = 1 << 17;
    ModelWorkload::new(
        "DeepFM",
        16.5,
        "Criteo",
        8,
        Phase::Training,
        0.45,
        vec![
            inv(FullyConnection::new(32, 256, 1024), 6),
            inv(Elementwise::new(EltwiseKind::Mul, E), 40),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 16),
            inv(Elementwise::new(EltwiseKind::AddN(8), E), 4),
            inv(Cast::new(E), 10),
            inv(TransData::new(E), 8),
        ],
    )
}

/// Wide & Deep (75.84M parameters, Criteo) training.
#[must_use]
pub fn wide_and_deep() -> ModelWorkload {
    const E: u64 = 1 << 17;
    ModelWorkload::new(
        "Wide and Deep",
        75.84,
        "Criteo",
        8,
        Phase::Training,
        0.45,
        vec![
            inv(FullyConnection::new(32, 512, 1024), 8),
            inv(MatMul::new(256, 256, 256), 4),
            inv(Elementwise::new(EltwiseKind::Mul, E), 40),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 20),
            inv(Cast::new(E), 12),
            inv(TransData::new(E), 10),
        ],
    )
}

/// DLRM (540M parameters, Criteo) training.
#[must_use]
pub fn dlrm() -> ModelWorkload {
    const E: u64 = 1 << 18;
    ModelWorkload::new(
        "DLRM",
        540.0,
        "Criteo",
        8,
        Phase::Training,
        0.4,
        vec![
            inv(FullyConnection::new(32, 512, 1024), 10),
            inv(BatchMatMul::new(4, 128, 128, 128).with_flags(pp()), 10),
            inv(Elementwise::new(EltwiseKind::Mul, E), 44),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 20),
            inv(Elementwise::new(EltwiseKind::AddN(4), E), 6),
            inv(Cast::new(E), 12),
            inv(TransData::new(E), 10),
        ],
    )
}

/// Llama 2 7B (WikiText2) training.
#[must_use]
pub fn llama2() -> ModelWorkload {
    const E: u64 = 1 << 19;
    ModelWorkload::new(
        "Llama 2",
        7_000.0,
        "WikiText2",
        8,
        Phase::Training,
        0.2,
        vec![
            inv(MatMul::new(1024, 512, 1024).with_flags(pp()), 24),
            inv(BatchMatMul::new(4, 512, 256, 512).with_flags(pp()), 16),
            inv(Dropout::new(E), 16),
            inv(Softmax::new(E), 16),
            inv(Gelu::new(E), 12), // SiLU costs like GeLU
            inv(Elementwise::new(EltwiseKind::Mul, E), 16).fusable(E),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 16).fusable(E), // RMSNorm tail
            inv(Cast::new(E), 8),
            inv(TransData::new(E), 8),
        ],
    )
}

/// PanGu-α 100B (1.1 TB Chinese corpus, 128 NPUs) training — the paper's
/// flagship end-to-end case (Section 6.2.1).
#[must_use]
pub fn pangu_alpha() -> ModelWorkload {
    const E: u64 = 1 << 19;
    ModelWorkload::new(
        "PanGu-alpha",
        100_000.0,
        "1.1TB Chinese Dataset",
        128,
        Phase::Training,
        0.262, // (98.01 - 72.31) / 98.01 in the paper's measurement
        vec![
            // Matrix multiplication operators (MTE-GM bound).
            inv(MatMulAdd::new(512, 512, 512).with_flags(pp()), 12),
            inv(BatchMatMul::new(4, 256, 256, 256).with_flags(pp()), 16),
            // Activation operators.
            inv(Gelu::new(E), 17),
            inv(Dropout::new(E), 14),
            // Element-wise operators (the fusable LayerNorm chain) and
            // the rest of the insufficient-parallelism tail.
            inv(Elementwise::new(EltwiseKind::Mul, E), 36).fusable(E),
            inv(Elementwise::new(EltwiseKind::RealDiv, E), 36).fusable(E),
            inv(Softmax::new(E), 36),
            // Format conversion operators.
            inv(TransData::new(E), 2),
            inv(Cast::new(E), 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_metadata_matches_the_paper() {
        let models = all_training();
        assert_eq!(models.len(), 11);
        let by_name = |name: &str| {
            models.iter().find(|m| m.name() == name).unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(by_name("MobileNetV3").parameters_millions(), 5.4);
        assert_eq!(by_name("ResNet50").parameters_millions(), 25.6);
        assert_eq!(by_name("ViT").parameters_millions(), 86.0);
        assert_eq!(by_name("VGG16").parameters_millions(), 138.4);
        assert_eq!(by_name("Bert").parameters_millions(), 110.0);
        assert_eq!(by_name("GPT2").parameters_millions(), 355.0);
        assert_eq!(by_name("DeepFM").parameters_millions(), 16.5);
        assert_eq!(by_name("Wide and Deep").parameters_millions(), 75.84);
        assert_eq!(by_name("DLRM").parameters_millions(), 540.0);
        assert_eq!(by_name("Llama 2").parameters_millions(), 7_000.0);
        assert_eq!(by_name("PanGu-alpha").parameters_millions(), 100_000.0);
        assert_eq!(by_name("PanGu-alpha").npus(), 128);
        for m in &models {
            if m.name() != "PanGu-alpha" {
                assert_eq!(m.npus(), 8, "{} uses 8 NPUs in Table 2", m.name());
            }
        }
    }

    #[test]
    fn mobilenet_inference_has_155_operators() {
        let m = mobilenet_v3(Phase::Inference);
        assert_eq!(m.total_invocations(), 155, "Section 6.2.2 counts 155 operators");
    }

    #[test]
    fn every_stream_is_nonempty_and_buildable() {
        let chip = ascend_arch::ChipSpec::training();
        for model in all_training() {
            assert!(!model.ops().is_empty(), "{}", model.name());
            for invocation in model.ops() {
                let kernel = invocation.operator().build(&chip).unwrap();
                ascend_isa::validate(&kernel, &chip).unwrap();
            }
        }
    }

    #[test]
    fn llms_have_fusable_chains() {
        for model in [llama2(), pangu_alpha()] {
            let fusable = model.ops().iter().filter(|o| o.fusable_elements().is_some()).count();
            assert!(fusable >= 2, "{} must carry a fusable chain", model.name());
        }
    }
}
