#![warn(missing_docs)]

//! Workload models (paper, Table 2): per-iteration operator streams for
//! the eleven evaluated networks, plus the analysis/optimization runner
//! behind the end-to-end experiments of Section 6.
//!
//! Shapes are scaled-down but proportioned like the originals; operator
//! *counts* per iteration carry the model-size differences. Per the
//! paper's scope, communication and I/O appear only as a fixed
//! per-iteration overhead used when computing *overall* speedups
//! (Figure 15).
//!
//! # Examples
//!
//! ```
//! use ascend_arch::ChipSpec;
//! use ascend_models::{zoo, ModelRunner};
//!
//! let chip = ChipSpec::inference();
//! let model = zoo::mobilenet_v3(ascend_models::Phase::Inference);
//! let report = ModelRunner::new(chip).analyze(&model)?;
//! assert!(report.total_cycles > 0.0);
//! println!("{}", report.distribution().summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod framework;
mod runner;
pub mod synthetic;
mod workload;
pub mod zoo;

pub use framework::{convert_for_framework, Framework};
pub use runner::{BottleneckDistribution, ModelOptimization, ModelReport, ModelRunner, OpReport};
pub use workload::{ModelWorkload, OpInvocation, Phase};
