//! Model-level analysis and optimization (paper, Section 6).

use crate::{ModelWorkload, OpInvocation, Phase};
use ascend_arch::ChipSpec;
use ascend_ops::LayerNorm;
use ascend_optimize::{OptimizationReport, Optimizer};
use ascend_pipeline::{
    AnalysisPipeline, AnalysisService, Fidelity, PipelineError, PipelineResult, Request, RunPolicy,
    Ticket,
};
use ascend_profile::Profile;
use ascend_roofline::{Bottleneck, RooflineAnalysis};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Analysis result of one operator in a model stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpReport {
    /// Kernel name (includes applied flags).
    pub name: String,
    /// Invocations per iteration.
    pub count: u64,
    /// Cycles per invocation.
    pub cycles_per_call: f64,
    /// `count × cycles_per_call`.
    pub total_cycles: f64,
    /// The diagnosed bottleneck.
    pub bottleneck: Bottleneck,
    /// Peak component utilization.
    pub peak_utilization: f64,
    /// Whether the cycles were simulated or analytically estimated
    /// (degraded under a supervision policy).
    #[serde(default)]
    pub fidelity: Fidelity,
}

/// The distribution of bottleneck causes over a model's computation time
/// (Figures 13a and 14).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BottleneckDistribution {
    shares: BTreeMap<String, f64>,
}

impl BottleneckDistribution {
    /// The share (0..1) of the label (`"CB"`, `"MB"`, `"IP"`, `"IM"`,
    /// `"IC"`).
    #[must_use]
    pub fn share(&self, label: &str) -> f64 {
        self.shares.get(label).copied().unwrap_or(0.0)
    }

    /// All label→share pairs, descending by share.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, f64)> {
        let mut entries: Vec<(String, f64)> =
            self.shares.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        entries
    }

    /// One-line rendering, e.g. `"IP 61.5% | MB 34.0% | CB 4.5%"`.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, (label, share)) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{label} {:.1}%", share * 100.0);
        }
        out
    }
}

/// Full analysis of one model iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Training or inference.
    pub phase: Phase,
    /// Per-operator results.
    pub op_reports: Vec<OpReport>,
    /// Total computation cycles per iteration.
    pub total_cycles: f64,
    /// Non-computation fraction of the iteration (from the workload).
    pub overhead_fraction: f64,
}

impl ModelReport {
    /// Time-weighted bottleneck-cause distribution.
    #[must_use]
    pub fn distribution(&self) -> BottleneckDistribution {
        let mut shares: BTreeMap<String, f64> = BTreeMap::new();
        if self.total_cycles <= 0.0 {
            return BottleneckDistribution { shares };
        }
        for op in &self.op_reports {
            *shares.entry(op.bottleneck.label().to_owned()).or_default() +=
                op.total_cycles / self.total_cycles;
        }
        BottleneckDistribution { shares }
    }

    /// Invocation-count-weighted distribution.
    #[must_use]
    pub fn distribution_by_count(&self) -> BottleneckDistribution {
        let mut shares: BTreeMap<String, f64> = BTreeMap::new();
        let total: u64 = self.op_reports.iter().map(|o| o.count).sum();
        if total == 0 {
            return BottleneckDistribution { shares };
        }
        for op in &self.op_reports {
            *shares.entry(op.bottleneck.label().to_owned()).or_default() +=
                op.count as f64 / total as f64;
        }
        BottleneckDistribution { shares }
    }

    /// Computation time in seconds on `chip`.
    #[must_use]
    pub fn computation_seconds(&self, chip: &ChipSpec) -> f64 {
        chip.cycles_to_secs(self.total_cycles)
    }

    /// Full iteration cycles including the fixed non-computation share.
    #[must_use]
    pub fn iteration_cycles(&self) -> f64 {
        self.total_cycles / (1.0 - self.overhead_fraction)
    }

    /// The iteration's fixed non-computation cycles.
    #[must_use]
    pub fn overhead_cycles(&self) -> f64 {
        self.iteration_cycles() - self.total_cycles
    }

    /// Number of operators whose result was analytically estimated
    /// rather than simulated (degraded coverage).
    #[must_use]
    pub fn degraded_ops(&self) -> usize {
        self.op_reports.iter().filter(|op| op.fidelity.is_degraded()).count()
    }

    /// Multi-line per-operator table. Degraded (analytically estimated)
    /// operators are marked `~` and counted in the header so figure
    /// captions can report coverage honestly.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let degraded = self.degraded_ops();
        let coverage = if degraded > 0 {
            format!(" [{degraded}/{} ops analytically estimated]", self.op_reports.len())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{} ({}): {:.0} computation cycles/iteration — {}{}",
            self.model,
            self.phase,
            self.total_cycles,
            self.distribution().summary(),
            coverage
        );
        for op in &self.op_reports {
            let _ = writeln!(
                out,
                "  {:<36} x{:<5} {:>12.0} cy{} {:>5.1}%  {}",
                op.name,
                op.count,
                op.total_cycles,
                if op.fidelity.is_degraded() { "~" } else { " " },
                op.peak_utilization * 100.0,
                op.bottleneck
            );
        }
        out
    }
}

/// Before/after record of a whole-model optimization pass.
#[derive(Debug)]
pub struct ModelOptimization {
    /// Analysis before optimization.
    pub before: ModelReport,
    /// Analysis after graph fusion + per-operator optimization.
    pub after: ModelReport,
    /// Per-operator optimization walkthroughs.
    pub op_optimizations: Vec<OptimizationReport>,
}

impl ModelOptimization {
    /// Computation-time speedup (Figure 15, "computation").
    #[must_use]
    pub fn computation_speedup(&self) -> f64 {
        if self.after.total_cycles > 0.0 {
            self.before.total_cycles / self.after.total_cycles
        } else {
            1.0
        }
    }

    /// Overall iteration speedup including the fixed overhead share
    /// (Figure 15, "overall"). Always ≤ the computation speedup.
    #[must_use]
    pub fn overall_speedup(&self) -> f64 {
        let overhead = self.before.overhead_cycles();
        let before = self.before.total_cycles + overhead;
        let after = self.after.total_cycles + overhead;
        if after > 0.0 {
            before / after
        } else {
            1.0
        }
    }
}

/// Runs model workloads through the simulator, the roofline analysis, and
/// the optimization loop.
///
/// Every measurement routes through one [`AnalysisPipeline`]: operator
/// invocations that repeat across the stream (or across `analyze`,
/// `aggregate_analysis`, and `optimize` calls) are answered from its
/// result cache, and independent invocations of a stream are simulated on
/// parallel workers with input-ordered results.
#[derive(Debug, Clone)]
pub struct ModelRunner {
    pipeline: AnalysisPipeline,
    policy: RunPolicy,
}

impl ModelRunner {
    /// A runner for `chip` with the default thresholds.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        Self::from_pipeline(AnalysisPipeline::new(chip))
    }

    /// A runner measuring through an existing `pipeline` (sharing its
    /// cache and instrumentation).
    #[must_use]
    pub fn from_pipeline(pipeline: AnalysisPipeline) -> Self {
        ModelRunner { pipeline, policy: RunPolicy::default() }
    }

    /// Supervises every measurement under `policy` (deadline, retries,
    /// breaker, analytical fallback). The default is a passthrough.
    #[must_use]
    pub fn with_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The supervision policy in force.
    #[must_use]
    pub fn policy(&self) -> &RunPolicy {
        &self.policy
    }

    /// The chip in use.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        self.pipeline.chip()
    }

    /// The measurement pipeline (for cache statistics and stage timings).
    #[must_use]
    pub fn pipeline(&self) -> &AnalysisPipeline {
        &self.pipeline
    }

    /// Analyzes one iteration of `model`: every operator is simulated once
    /// and weighted by its invocation count. Distinct operators run on
    /// parallel pipeline workers; repeated ones are cache hits.
    ///
    /// # Errors
    ///
    /// Propagates the first (by model order) per-operator pipeline error.
    pub fn analyze(&self, model: &ModelWorkload) -> Result<ModelReport, PipelineError> {
        let ops = model.ops().iter().map(OpInvocation::operator);
        let results = self
            .pipeline
            .analyze_stream_supervised(ops, &self.policy)
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_report(model, &results))
    }

    /// [`analyze`](ModelRunner::analyze), but routed through a resident
    /// [`AnalysisService`] instead of this runner's own batch workers:
    /// every invocation is submitted as a sweep-class request and the
    /// report is assembled from the tickets. Backpressure is handled
    /// closed-loop — an [`Overloaded`](PipelineError::Overloaded)
    /// rejection sleeps out its `retry_after_hint` and resubmits, so a
    /// model analysis rides along live traffic without amplifying it.
    ///
    /// The service's pipeline is the measurement authority here; this
    /// runner's own pipeline and policy are not consulted.
    ///
    /// # Errors
    ///
    /// Propagates the first (by model order) ticket error, and
    /// [`PipelineError::ServiceStopped`] when the service drains before
    /// every invocation was admitted.
    pub fn analyze_via_service(
        &self,
        model: &ModelWorkload,
        service: &AnalysisService,
    ) -> Result<ModelReport, PipelineError> {
        let mut tickets: Vec<Ticket> = Vec::with_capacity(model.ops().len());
        for invocation in model.ops() {
            let op = invocation.operator();
            loop {
                // Operators are shape+flags value types; re-boxing via
                // with_flags_dyn is the trait-object clone idiom.
                let boxed = op.with_flags_dyn(op.flags());
                match service.submit(Request::sweep(boxed)) {
                    Ok(ticket) => {
                        tickets.push(ticket);
                        break;
                    }
                    Err(PipelineError::Overloaded { retry_after_hint, .. }) => {
                        std::thread::sleep(retry_after_hint);
                    }
                    Err(err) => return Err(err),
                }
            }
        }
        let results = tickets.iter().map(Ticket::wait).collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_report(model, &results))
    }

    /// Builds the whole-model aggregate analysis: every operator's profile
    /// is accumulated (weighted by invocation count) into one profile, and
    /// the component-based roofline runs on the aggregate — answering
    /// "which component limits this model's iteration as a whole".
    ///
    /// # Errors
    ///
    /// Propagates the first (by model order) per-operator pipeline error.
    pub fn aggregate_analysis(
        &self,
        model: &ModelWorkload,
    ) -> Result<RooflineAnalysis, PipelineError> {
        let ops = model.ops().iter().map(OpInvocation::operator);
        let results = self
            .pipeline
            .analyze_stream_supervised(ops, &self.policy)
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let mut aggregate = Profile::empty(model.name().to_owned());
        for (invocation, result) in model.ops().iter().zip(&results) {
            aggregate.accumulate_scaled(&result.profile, invocation.count());
        }
        Ok(self.pipeline.analyze_profile(&aggregate))
    }

    /// Optimizes `model` the way Section 6.2 does: first the graph-level
    /// rewrite (fusing element-wise chains into LayerNorm), then the
    /// per-operator roofline-guided loop. The optimizer shares this
    /// runner's pipeline, so its trial measurements land in (and draw
    /// from) the same cache.
    ///
    /// # Errors
    ///
    /// Propagates the first (by model order) per-operator pipeline error.
    pub fn optimize(&self, model: &ModelWorkload) -> Result<ModelOptimization, PipelineError> {
        let before = self.analyze(model)?;
        let fused = fuse_elementwise_chains(model);
        let optimizer = Optimizer::from_pipeline(self.pipeline.clone());
        let mut optimized_ops = Vec::with_capacity(fused.ops().len());
        let mut op_optimizations = Vec::new();
        for invocation in fused.ops() {
            let report = optimizer.run(invocation.operator())?;
            let best = invocation.operator().with_flags_dyn(report.final_flags());
            let mut new_invocation = OpInvocation::new(best, invocation.count());
            if let Some(elements) = invocation.fusable_elements() {
                new_invocation = new_invocation.fusable(elements);
            }
            optimized_ops.push(new_invocation);
            op_optimizations.push(report);
        }
        let after = self.analyze(&fused.with_ops(optimized_ops))?;
        Ok(ModelOptimization { before, after, op_optimizations })
    }
}

/// Assembles a [`ModelReport`] from one pipeline result per invocation,
/// weighting each by its invocation count — shared by the batch and
/// service analysis paths.
fn assemble_report(model: &ModelWorkload, results: &[Arc<PipelineResult>]) -> ModelReport {
    let mut op_reports = Vec::with_capacity(model.ops().len());
    let mut total = 0.0;
    for (invocation, result) in model.ops().iter().zip(results) {
        let cycles = result.cycles();
        let total_cycles = cycles * invocation.count() as f64;
        total += total_cycles;
        op_reports.push(OpReport {
            name: result.kernel_name.clone(),
            count: invocation.count(),
            cycles_per_call: cycles,
            total_cycles,
            bottleneck: result.analysis.bottleneck(),
            peak_utilization: result.analysis.peak_utilization(),
            fidelity: result.fidelity,
        });
    }
    ModelReport {
        model: model.name().to_owned(),
        phase: model.phase(),
        op_reports,
        total_cycles: total,
        overhead_fraction: model.overhead_fraction(),
    }
}

/// Replaces each run of ≥ 2 consecutive fusable element-wise invocations
/// (with matching counts) by a single LayerNorm over the chain's element
/// count — the PanGu-α fusion of Section 6.2.1.
#[must_use]
pub(crate) fn fuse_elementwise_chains(model: &ModelWorkload) -> ModelWorkload {
    let mut ops: Vec<OpInvocation> = Vec::with_capacity(model.ops().len());
    let mut chain: Vec<&OpInvocation> = Vec::new();
    let flush = |chain: &mut Vec<&OpInvocation>, ops: &mut Vec<OpInvocation>| {
        if chain.len() >= 2 {
            let elements = chain.iter().filter_map(|inv| inv.fusable_elements()).max().unwrap_or(0);
            let count = chain.iter().map(|inv| inv.count()).min().unwrap_or(0);
            ops.push(OpInvocation::new(Box::new(LayerNorm::new(elements)), count));
        } else {
            for inv in chain.iter() {
                ops.push((*inv).clone());
            }
        }
        chain.clear();
    };
    for invocation in model.ops() {
        let same_count = chain.first().is_none_or(|first| first.count() == invocation.count());
        if invocation.fusable_elements().is_some() && same_count {
            chain.push(invocation);
        } else {
            flush(&mut chain, &mut ops);
            if invocation.fusable_elements().is_some() {
                chain.push(invocation);
            } else {
                ops.push(invocation.clone());
            }
        }
    }
    flush(&mut chain, &mut ops);
    model.with_ops(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::{AddRelu, Elementwise, EltwiseKind, Gelu};

    fn toy_model() -> ModelWorkload {
        const E: u64 = 1 << 16;
        ModelWorkload::new(
            "Toy",
            1.0,
            "synthetic",
            1,
            Phase::Training,
            0.2,
            vec![
                OpInvocation::new(Box::new(AddRelu::new(E)), 4),
                OpInvocation::new(Box::new(Elementwise::new(EltwiseKind::Mul, E)), 3).fusable(E),
                OpInvocation::new(Box::new(Elementwise::new(EltwiseKind::Add, E)), 3).fusable(E),
                OpInvocation::new(Box::new(Elementwise::new(EltwiseKind::RealDiv, E)), 3)
                    .fusable(E),
                OpInvocation::new(Box::new(Gelu::new(E)), 2),
            ],
        )
    }

    #[test]
    fn analyze_weights_by_count() {
        let runner = ModelRunner::new(ChipSpec::training());
        let report = runner.analyze(&toy_model()).unwrap();
        assert_eq!(report.op_reports.len(), 5);
        for op in &report.op_reports {
            assert!((op.total_cycles - op.cycles_per_call * op.count as f64).abs() < 1e-6);
        }
        let sum: f64 = report.op_reports.iter().map(|o| o.total_cycles).sum();
        assert!((sum - report.total_cycles).abs() < 1e-6);
    }

    #[test]
    fn service_analysis_matches_the_batch_path() {
        let runner = ModelRunner::new(ChipSpec::training());
        let batch = runner.analyze(&toy_model()).unwrap();
        let service = AnalysisService::start(
            AnalysisPipeline::new(ChipSpec::training()),
            ascend_pipeline::ServiceConfig::default(),
        );
        let via = runner.analyze_via_service(&toy_model(), &service).unwrap();
        let report = service.drain(std::time::Duration::from_secs(10));
        assert!(report.quiesced);
        assert_eq!(via.op_reports.len(), batch.op_reports.len());
        assert!(
            (via.total_cycles - batch.total_cycles).abs() < 1e-9,
            "the service path is the same simulator: {} vs {}",
            via.total_cycles,
            batch.total_cycles
        );
    }

    #[test]
    fn distribution_shares_sum_to_one() {
        let runner = ModelRunner::new(ChipSpec::training());
        let report = runner.analyze(&toy_model()).unwrap();
        let d = report.distribution();
        let total: f64 = d.entries().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "{}", d.summary());
        let by_count: f64 = report.distribution_by_count().entries().iter().map(|(_, s)| s).sum();
        assert!((by_count - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fusion_replaces_the_chain() {
        let fused = fuse_elementwise_chains(&toy_model());
        assert_eq!(fused.ops().len(), 3, "{:?}", fused.ops());
        assert!(fused.ops()[1].operator().name().starts_with("layernorm"));
        assert_eq!(fused.ops()[1].count(), 3);
    }

    #[test]
    fn fusion_leaves_single_fusables_alone() {
        const E: u64 = 1 << 14;
        let model = ModelWorkload::new(
            "Single",
            1.0,
            "synthetic",
            1,
            Phase::Inference,
            0.1,
            vec![
                OpInvocation::new(Box::new(Elementwise::new(EltwiseKind::Mul, E)), 2).fusable(E),
                OpInvocation::new(Box::new(Gelu::new(E)), 1),
            ],
        );
        let fused = fuse_elementwise_chains(&model);
        assert_eq!(fused.ops().len(), 2);
        assert!(fused.ops()[0].operator().name().starts_with("mul"));
    }

    #[test]
    fn optimize_improves_computation_and_overall_is_smaller() {
        let runner = ModelRunner::new(ChipSpec::training());
        let result = runner.optimize(&toy_model()).unwrap();
        let comp = result.computation_speedup();
        let overall = result.overall_speedup();
        assert!(comp > 1.1, "computation speedup {comp:.2}");
        assert!(overall > 1.0);
        assert!(
            overall < comp,
            "fixed overhead must dampen the overall speedup: {overall:.2} vs {comp:.2}"
        );
    }

    #[test]
    fn aggregate_analysis_covers_the_models_components() {
        let runner = ModelRunner::new(ChipSpec::training());
        let analysis = runner.aggregate_analysis(&toy_model()).unwrap();
        // The toy model exercises Vector and both GM engines.
        assert!(analysis.metrics_of(ascend_arch::Component::Vector).is_some());
        assert!(analysis.metrics_of(ascend_arch::Component::MteGm).is_some());
        assert!(analysis.metrics_of(ascend_arch::Component::MteUb).is_some());
        // Aggregate cycles equal the per-op weighted sum.
        let report = runner.analyze(&toy_model()).unwrap();
        assert!((analysis.total_cycles - report.total_cycles).abs() < 1e-6);
    }

    #[test]
    fn degraded_coverage_is_reported_honestly() {
        // A one-event budget trips on every operator; with fallback on,
        // the whole model analyzes anyway, tagged as estimated.
        let policy = RunPolicy::default()
            .with_budget(ascend_sim::SimBudget { max_events: 1, max_cycles: 1.0 })
            .with_fallback(true);
        let runner = ModelRunner::new(ChipSpec::training()).with_policy(policy);
        let report = runner.analyze(&toy_model()).unwrap();
        assert_eq!(report.degraded_ops(), report.op_reports.len());
        assert!(report.op_reports.iter().all(|op| op.fidelity.is_degraded()));
        assert!(report.total_cycles > 0.0, "estimates still carry time");
        assert!(report.summary().contains("analytically estimated"), "{}", report.summary());

        // The default passthrough policy keeps full fidelity.
        let simulated = ModelRunner::new(ChipSpec::training()).analyze(&toy_model()).unwrap();
        assert_eq!(simulated.degraded_ops(), 0);
        assert!(!simulated.summary().contains("analytically estimated"));
    }

    #[test]
    fn overhead_accounting_is_consistent() {
        let runner = ModelRunner::new(ChipSpec::training());
        let report = runner.analyze(&toy_model()).unwrap();
        let iteration = report.iteration_cycles();
        assert!(iteration > report.total_cycles);
        assert!(
            (report.overhead_cycles() / iteration - 0.2).abs() < 1e-9,
            "overhead share must equal the workload's fraction"
        );
    }
}
