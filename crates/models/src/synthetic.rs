//! Seeded synthetic workload generation.
//!
//! The paper's production traces are proprietary; this generator produces
//! random-but-reproducible operator streams with controllable scale, used
//! for robustness testing and for scaling studies beyond the eleven
//! hand-built Table 2 models.

use crate::{ModelWorkload, OpInvocation, Phase};
use ascend_ops::{
    AddRelu, AvgPool, Conv2d, Depthwise, Dropout, Elementwise, EltwiseKind, FullyConnection, Gelu,
    LayerNorm, MatMul, Operator, Softmax, TransData,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// RNG seed (same seed → same workload).
    pub seed: u64,
    /// Number of distinct operator invocations in the stream.
    pub op_slots: usize,
    /// Element-count scale (each operator gets `1 << scale_log2` ± jitter
    /// elements).
    pub scale_log2: u32,
    /// Fraction of the iteration outside computation.
    pub overhead_fraction: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig { seed: 7, op_slots: 12, scale_log2: 17, overhead_fraction: 0.25 }
    }
}

/// Generates a reproducible random workload.
///
/// # Examples
///
/// ```
/// use ascend_models::synthetic::{random_workload, SyntheticConfig};
/// let a = random_workload(&SyntheticConfig::default());
/// let b = random_workload(&SyntheticConfig::default());
/// assert_eq!(a.total_invocations(), b.total_invocations());
/// ```
#[must_use]
pub fn random_workload(config: &SyntheticConfig) -> ModelWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ops: Vec<OpInvocation> = Vec::with_capacity(config.op_slots);
    for _ in 0..config.op_slots {
        let jitter = rng.gen_range(0..2u32);
        let elements: u64 = 1 << (config.scale_log2 + jitter);
        let count = rng.gen_range(1..24u64);
        let operator: Box<dyn Operator> = match rng.gen_range(0..12u32) {
            0 => Box::new(AddRelu::new(elements)),
            1 => Box::new(AvgPool::new(elements / 8)),
            2 => Box::new(Conv2d::new(elements / 2, 288)),
            3 => Box::new(Depthwise::new(elements)),
            4 => Box::new(Dropout::new(elements)),
            5 => Box::new(Elementwise::new(EltwiseKind::Mul, elements)),
            6 => Box::new(Elementwise::new(EltwiseKind::Add, elements)),
            7 => Box::new(FullyConnection::new(32, 256, 1024)),
            8 => Box::new(Gelu::new(elements)),
            9 => Box::new(LayerNorm::new(elements)),
            10 => Box::new(MatMul::new(256, 256, 256)),
            _ => {
                if rng.gen_bool(0.5) {
                    Box::new(Softmax::new(elements))
                } else {
                    Box::new(TransData::new(elements))
                }
            }
        };
        ops.push(OpInvocation::new(operator, count));
    }
    ModelWorkload::new(
        format!("synthetic-{}", config.seed),
        0.0,
        "synthetic",
        1,
        Phase::Training,
        config.overhead_fraction,
        ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelRunner;
    use ascend_arch::ChipSpec;

    #[test]
    fn generation_is_deterministic() {
        let config = SyntheticConfig { seed: 42, ..SyntheticConfig::default() };
        let a = random_workload(&config);
        let b = random_workload(&config);
        let names = |m: &ModelWorkload| -> Vec<String> {
            m.ops().iter().map(|o| o.operator().name()).collect()
        };
        assert_eq!(names(&a), names(&b));
        let counts =
            |m: &ModelWorkload| -> Vec<u64> { m.ops().iter().map(|o| o.count()).collect() };
        assert_eq!(counts(&a), counts(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_workload(&SyntheticConfig { seed: 1, ..SyntheticConfig::default() });
        let b = random_workload(&SyntheticConfig { seed: 2, ..SyntheticConfig::default() });
        let names = |m: &ModelWorkload| -> Vec<String> {
            m.ops().iter().map(|o| o.operator().name()).collect()
        };
        assert_ne!((names(&a), a.total_invocations()), (names(&b), b.total_invocations()));
    }

    #[test]
    fn every_generated_workload_analyzes_cleanly() {
        let runner = ModelRunner::new(ChipSpec::training());
        for seed in 0..6 {
            let model = random_workload(&SyntheticConfig {
                seed,
                op_slots: 8,
                scale_log2: 15,
                overhead_fraction: 0.2,
            });
            let report = runner.analyze(&model).unwrap();
            assert!(report.total_cycles > 0.0, "seed {seed}");
            let total: f64 = report.distribution().entries().iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn optimization_never_regresses_synthetic_models() {
        let runner = ModelRunner::new(ChipSpec::training());
        let model = random_workload(&SyntheticConfig {
            seed: 99,
            op_slots: 6,
            scale_log2: 15,
            overhead_fraction: 0.2,
        });
        let result = runner.optimize(&model).unwrap();
        assert!(result.computation_speedup() >= 1.0);
    }
}
