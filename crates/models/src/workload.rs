//! Workload representation: operator invocations and model streams.

use ascend_ops::Operator;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Training vs. inference deployment (Table 2 vs. the inference studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Training on the training chip.
    Training,
    /// Inference on the inference chip.
    Inference,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Training => f.write_str("training"),
            Phase::Inference => f.write_str("inference"),
        }
    }
}

/// One operator instance invoked `count` times per iteration.
pub struct OpInvocation {
    operator: Box<dyn Operator>,
    count: u64,
    fusable_elements: Option<u64>,
}

impl OpInvocation {
    /// An operator invoked `count` times per iteration.
    #[must_use]
    pub fn new(operator: Box<dyn Operator>, count: u64) -> Self {
        OpInvocation { operator, count, fusable_elements: None }
    }

    /// Marks this invocation as part of a fusable element-wise chain over
    /// `elements` values (consecutive fusable invocations are replaced by
    /// one LayerNorm of that size — the PanGu-α optimization).
    #[must_use]
    pub fn fusable(mut self, elements: u64) -> Self {
        self.fusable_elements = Some(elements);
        self
    }

    /// The operator.
    #[must_use]
    pub fn operator(&self) -> &dyn Operator {
        self.operator.as_ref()
    }

    /// Invocations per iteration.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether this invocation participates in chain fusion, and over how
    /// many elements.
    #[must_use]
    pub fn fusable_elements(&self) -> Option<u64> {
        self.fusable_elements
    }
}

impl Clone for OpInvocation {
    fn clone(&self) -> Self {
        OpInvocation {
            operator: self.operator.with_flags_dyn(self.operator.flags()),
            count: self.count,
            fusable_elements: self.fusable_elements,
        }
    }
}

impl fmt::Debug for OpInvocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpInvocation")
            .field("operator", &self.operator.name())
            .field("count", &self.count)
            .field("fusable_elements", &self.fusable_elements)
            .finish()
    }
}

/// A model workload: name, metadata from Table 2, and its per-iteration
/// operator stream.
#[derive(Debug, Clone)]
pub struct ModelWorkload {
    name: String,
    parameters_millions: f64,
    dataset: &'static str,
    npus: u32,
    phase: Phase,
    /// Fraction of an iteration spent outside operator computation
    /// (communication, I/O, preprocessing) — used for overall speedups.
    overhead_fraction: f64,
    ops: Vec<OpInvocation>,
}

impl ModelWorkload {
    /// Assembles a workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        parameters_millions: f64,
        dataset: &'static str,
        npus: u32,
        phase: Phase,
        overhead_fraction: f64,
        ops: Vec<OpInvocation>,
    ) -> Self {
        ModelWorkload {
            name: name.into(),
            parameters_millions,
            dataset,
            npus,
            phase,
            overhead_fraction: overhead_fraction.clamp(0.0, 0.95),
            ops,
        }
    }

    /// Model name, e.g. `"MobileNetV3"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter count in millions (Table 2).
    #[must_use]
    pub fn parameters_millions(&self) -> f64 {
        self.parameters_millions
    }

    /// Dataset name (Table 2).
    #[must_use]
    pub fn dataset(&self) -> &'static str {
        self.dataset
    }

    /// NPUs used in the paper's deployment (Table 2).
    #[must_use]
    pub fn npus(&self) -> u32 {
        self.npus
    }

    /// Training or inference.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Non-computation fraction of the iteration.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_fraction
    }

    /// The operator stream.
    #[must_use]
    pub fn ops(&self) -> &[OpInvocation] {
        &self.ops
    }

    /// Total operator invocations per iteration.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.ops.iter().map(OpInvocation::count).sum()
    }

    /// Returns a copy with a different operator stream (used by the
    /// graph-level optimizer).
    #[must_use]
    pub fn with_ops(&self, ops: Vec<OpInvocation>) -> Self {
        ModelWorkload { ops, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::{AddRelu, OptFlags};

    #[test]
    fn invocation_clone_preserves_flags() {
        let inv = OpInvocation::new(
            Box::new(AddRelu::new(1024).with_flags(OptFlags::new().rsd(true))),
            7,
        )
        .fusable(1024);
        let copy = inv.clone();
        assert_eq!(copy.count(), 7);
        assert_eq!(copy.fusable_elements(), Some(1024));
        assert!(copy.operator().flags().has_rsd());
        assert_eq!(copy.operator().name(), inv.operator().name());
    }

    #[test]
    fn workload_accessors() {
        let model = ModelWorkload::new(
            "Toy",
            1.0,
            "None",
            8,
            Phase::Training,
            0.25,
            vec![OpInvocation::new(Box::new(AddRelu::new(256)), 3)],
        );
        assert_eq!(model.total_invocations(), 3);
        assert_eq!(model.phase(), Phase::Training);
        assert!((model.overhead_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overhead_fraction_is_clamped() {
        let model = ModelWorkload::new("T", 1.0, "d", 1, Phase::Inference, 2.0, vec![]);
        assert!(model.overhead_fraction() <= 0.95);
    }
}
