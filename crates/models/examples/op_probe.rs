use ascend_arch::ChipSpec;
use ascend_models::{zoo, ModelRunner, Phase};

fn main() {
    let runner = ModelRunner::new(ChipSpec::training());
    for model in
        [zoo::pangu_alpha(), zoo::mobilenet_v3(Phase::Training), zoo::resnet50(Phase::Training)]
    {
        let r = runner.analyze(&model).unwrap();
        println!("=== {} total {:.0}", model.name(), r.total_cycles);
        for op in &r.op_reports {
            println!(
                "  {:<40} x{:<4} {:>10.0}/call {:>6.1}% share  {}",
                op.name,
                op.count,
                op.cycles_per_call,
                100.0 * op.total_cycles / r.total_cycles,
                op.bottleneck
            );
        }
    }
}
