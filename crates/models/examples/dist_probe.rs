use ascend_arch::ChipSpec;
use ascend_models::{zoo, ModelRunner, Phase};

fn main() {
    let runner = ModelRunner::new(ChipSpec::training());
    for model in zoo::all_training() {
        let r = runner.analyze(&model).unwrap();
        println!("{:<16} {}", model.name(), r.distribution().summary());
    }
    println!("--- PanGu optimize ---");
    let opt = runner.optimize(&zoo::pangu_alpha()).unwrap();
    println!("before: {}", opt.before.distribution().summary());
    println!("after : {}", opt.after.distribution().summary());
    println!("comp speedup {:.2}, overall {:.2}", opt.computation_speedup(), opt.overall_speedup());
    println!("--- M3 inference ---");
    let irunner = ModelRunner::new(ChipSpec::inference());
    let opt = irunner.optimize(&zoo::mobilenet_v3(Phase::Inference)).unwrap();
    println!("before: {}", opt.before.distribution_by_count().summary());
    println!("after : {}", opt.after.distribution_by_count().summary());
    println!("comp speedup {:.2}, overall {:.2}", opt.computation_speedup(), opt.overall_speedup());
}
