//! A deterministic "silently wrong engine" fault mode for the audit tier.
//!
//! Every other fault in this crate perturbs the *modelled hardware* (the
//! chip, the kernel, the disk); `BuggyEngine` perturbs the *simulator's
//! answers*. It models the failure class the online divergence auditor
//! exists to catch: an engine that completes normally and returns a
//! plausible, self-consistent, but wrong trace — a miscompiled build, a
//! scratch-reuse bug, a drifted surrogate. The pipeline applies it as a
//! chaos-only seam (`AnalysisPipeline::with_buggy_engine`) *after* the
//! real simulation, so validation, deadlock detection, and supervision
//! all behave normally; only the served timings lie.
//!
//! Determinism is the whole point: whether a result is afflicted is a
//! seeded draw on its cache key, and each afflicted record's duration
//! skew is a seeded draw on `(key, instruction index)` — so a chaos test
//! at a known seed can predict exactly which results diverge and assert
//! the auditor catches them.

use crate::rng::SplitMix64;

/// Deterministic duration-perturbation model for served traces.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BuggyEngine {
    /// Seed of every draw.
    pub seed: u64,
    /// Fraction of results (by cache key) that are perturbed at all.
    pub rate: f64,
    /// Maximum relative duration skew of a perturbed record: factors are
    /// drawn from `[1.0, 1.0 + magnitude]` (and at least one ULP away
    /// from 1.0). Small magnitudes model exactly the silent drift that
    /// is invisible without a bit-exact audit.
    pub magnitude: f64,
}

impl BuggyEngine {
    /// A buggy engine that perturbs *every* result's durations by up to
    /// 0.1%.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BuggyEngine { seed, rate: 1.0, magnitude: 1e-3 }
    }

    /// Sets the fraction of results afflicted.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum relative duration skew.
    #[must_use]
    pub fn with_magnitude(mut self, magnitude: f64) -> Self {
        self.magnitude = magnitude.max(0.0);
        self
    }

    /// Whether the result cached under `key` is perturbed at all.
    /// Deterministic in `(seed, key)`.
    #[must_use]
    pub fn afflicts(&self, key: u64) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        SplitMix64::new(self.seed ^ key).chance(self.rate)
    }

    /// Multiplicative duration factor for instruction `index` of an
    /// afflicted result. About a quarter of an afflicted result's
    /// records are skewed — always at least the record drawn first, so
    /// an afflicted result is never accidentally clean. Returns exactly
    /// `1.0` for untouched records.
    #[must_use]
    pub fn duration_factor(&self, key: u64, index: usize) -> f64 {
        let mut rng = SplitMix64::new(self.seed ^ key.rotate_left(17) ^ (index as u64) << 1);
        if index > 0 && !rng.chance(0.25) {
            return 1.0;
        }
        let skew = rng.unit_f64() * self.magnitude;
        // A zero draw would make the perturbation a no-op; nudge by one
        // ULP so "afflicted" always means "observably wrong".
        (1.0 + skew).max(f64::from_bits(1.0f64.to_bits() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affliction_and_factors_are_deterministic() {
        let bug = BuggyEngine::new(77).with_rate(0.5);
        for key in 0..64 {
            assert_eq!(bug.afflicts(key), bug.afflicts(key));
            for index in 0..16 {
                assert_eq!(
                    bug.duration_factor(key, index).to_bits(),
                    bug.duration_factor(key, index).to_bits()
                );
            }
        }
    }

    #[test]
    fn rate_bounds_are_respected() {
        let all = BuggyEngine::new(1);
        let none = BuggyEngine::new(1).with_rate(0.0);
        for key in 0..128 {
            assert!(all.afflicts(key));
            assert!(!none.afflicts(key));
        }
    }

    #[test]
    fn afflicted_results_always_skew_the_first_record() {
        let bug = BuggyEngine::new(3);
        for key in 0..128 {
            let factor = bug.duration_factor(key, 0);
            assert!(factor > 1.0, "record 0 of key {key} must be skewed, got {factor}");
            assert!(factor <= 1.0 + bug.magnitude + 1e-12);
        }
    }

    #[test]
    fn most_records_are_untouched() {
        let bug = BuggyEngine::new(9);
        let skewed = (1..1000).filter(|&i| bug.duration_factor(42, i) != 1.0).count();
        assert!((150..350).contains(&skewed), "{skewed} of 999 skewed");
    }
}
