#![warn(missing_docs)]

//! Fault injection for the simulator, and the adversarial kernel
//! generator behind the validator↔engine differential fuzzer.
//!
//! The paper's methodology (Sections 2.1 and 3.1) trusts the simulator's
//! metric surface completely: every roofline classification downstream is
//! derived from the cycles the engine reports. That trust is only earned
//! if the rarely-travelled paths — degraded hardware, broken
//! synchronization, truncated kernels — are reachable, deterministic, and
//! tested. This crate makes them so:
//!
//! * [`FaultPlan`] is a **seeded, declarative fault model**. Timing faults
//!   (degraded bandwidth, perturbed instruction latencies) change *when*
//!   things happen but never *whether* a valid kernel completes. Sync
//!   faults (dropped or duplicated `set_flag`s, truncated kernels) corrupt
//!   the synchronization structure itself, making the engine's deadlock
//!   and watchdog paths reachable on purpose. The simulator accepts a plan
//!   via `Simulator::simulate_with_faults`.
//!
//! * [`generator::generate`] draws arbitrary kernels — compute, transfer,
//!   and sync instructions, valid and invalid alike — from a seed. The
//!   differential property suite (`tests/differential.rs` at the
//!   workspace root) feeds them to both the static validator and the
//!   engine and asserts the **soundness contract**:
//!
//!   1. every kernel `validate()` accepts simulates to completion, with
//!      and without timing faults;
//!   2. every kernel the engine deadlocks on was rejected by `validate()`.
//!
//! Everything is deterministic: the same seed always produces the same
//! mutated kernel, the same degraded chip, and the same latency factors,
//! so any fuzzer failure reproduces from its printed seed.

mod buggy;
mod chaos;
mod disk;
mod harness;
mod hostile;
mod killplan;
mod loadgen;
mod plan;
mod rng;
mod wire;

pub mod generator;

pub use buggy::BuggyEngine;
pub use chaos::{ddmin, ChaosConfig, ChaosFault, ChaosSchedule};
pub use disk::{corrupt_file, DiskFault, DiskFile, FaultyFile};
pub use harness::{corrupt_journal, JournalFault, PanicSwitch};
pub use hostile::{
    grow_resident, heartbeats_muted, set_heartbeats_muted, sleep_forever, spin_forever,
    HostileMode, HostileOp,
};
pub use killplan::{KillEvent, KillPlan};
pub use loadgen::{Arrival, Burst, FaultedOperator, LoadProfile, PanicOperator};
pub use plan::{BandwidthFault, FaultPlan};
pub use rng::SplitMix64;
pub use wire::{
    FaultyTransport, WireAction, WireDirection, WireFault, WireFaultEvent, WireFaultPlan,
    WireShaper,
};
