//! Process- and storage-level fault injection for the supervision layer.
//!
//! [`FaultPlan`](crate::FaultPlan) corrupts what the *simulator* sees;
//! this module corrupts what the *supervisor* sees: a [`PanicSwitch`]
//! makes an operator die mid-batch after a chosen number of successes
//! (standing in for a `kill -9` in tests of journal resume), and
//! [`corrupt_journal`] applies the storage faults a real crash leaves
//! behind — torn tails, lost records, duplicated records — so journal
//! recovery is tested against the failures it claims to survive.

use crate::disk::{corrupt_file, DiskFault};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A countdown that lets `n` calls pass and panics on every later one —
/// the deterministic stand-in for a process killed mid-batch.
///
/// Clones share the countdown, so a batch's operators can all hold the
/// same switch: exactly `n` of them (in execution order) complete, the
/// next ones panic, and [`disarm`](PanicSwitch::disarm) turns the
/// survivor back into a no-op for the resumed run.
///
/// # Examples
///
/// ```
/// use ascend_faults::PanicSwitch;
///
/// let switch = PanicSwitch::after(2);
/// switch.tick(); // first call passes
/// switch.tick(); // second call passes
/// assert!(std::panic::catch_unwind(|| switch.tick()).is_err());
/// switch.disarm();
/// switch.tick(); // disarmed: passes again
/// ```
#[derive(Debug, Clone)]
pub struct PanicSwitch {
    /// Remaining free passes; `u64::MAX` means disarmed.
    remaining: Arc<AtomicU64>,
}

impl Default for PanicSwitch {
    /// Disarmed — a default that silently always fired would be a trap.
    fn default() -> Self {
        PanicSwitch::disarmed()
    }
}

impl PanicSwitch {
    /// A switch whose first `n` [`tick`](PanicSwitch::tick)s pass.
    #[must_use]
    pub fn after(n: u64) -> Self {
        PanicSwitch { remaining: Arc::new(AtomicU64::new(n)) }
    }

    /// A switch that never fires.
    #[must_use]
    pub fn disarmed() -> Self {
        PanicSwitch { remaining: Arc::new(AtomicU64::new(u64::MAX)) }
    }

    /// Consumes one pass, panicking once the passes are spent.
    ///
    /// # Panics
    ///
    /// After the configured number of passes — that is the point.
    pub fn tick(&self) {
        let mut current = self.remaining.load(Ordering::Acquire);
        loop {
            if current == u64::MAX {
                return; // disarmed
            }
            if current == 0 {
                panic!("injected failure: panic switch fired");
            }
            match self.remaining.compare_exchange_weak(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Turns every later [`tick`](PanicSwitch::tick) into a no-op
    /// (visible through every clone).
    pub fn disarm(&self) {
        self.remaining.store(u64::MAX, Ordering::Release);
    }

    /// Remaining free passes (`None` when disarmed).
    #[must_use]
    pub fn remaining(&self) -> Option<u64> {
        match self.remaining.load(Ordering::Acquire) {
            u64::MAX => None,
            n => Some(n),
        }
    }
}

/// Storage faults a crash can leave in a JSON-lines journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// Chops `n` bytes off the end of the file — a torn final write
    /// (record cut mid-line, usually losing its trailing newline).
    TruncateTailBytes(u64),
    /// Removes the last `n` complete records (whole lines).
    DropLastRecords(usize),
    /// Appends a byte-identical copy of the last complete record — the
    /// duplicate an append-retry-after-crash produces.
    DuplicateLastRecord,
}

/// Applies `fault` to the journal file at `path`.
///
/// A thin journal-flavoured facade over the shared [`corrupt_file`]
/// injector: every `JournalFault` maps onto the [`DiskFault`] with the
/// same byte-level effect, so the journal's recovery tests and the
/// result store's exercise one implementation of "what crashes do".
///
/// # Errors
///
/// Propagates I/O failures; faulting an empty or missing journal is an
/// error for the truncate/duplicate faults (there is nothing to corrupt).
pub fn corrupt_journal(path: &Path, fault: JournalFault) -> std::io::Result<()> {
    let disk_fault = match fault {
        JournalFault::TruncateTailBytes(n) => DiskFault::TruncateTailBytes(n),
        JournalFault::DropLastRecords(n) => DiskFault::DropTailLines(n),
        JournalFault::DuplicateLastRecord => DiskFault::DuplicateTailLine,
    };
    corrupt_file(path, disk_fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_counts_down_then_fires() {
        let switch = PanicSwitch::after(2);
        let clone = switch.clone();
        switch.tick();
        clone.tick();
        assert_eq!(switch.remaining(), Some(0));
        let fired = std::panic::catch_unwind(|| switch.tick());
        assert!(fired.is_err(), "the third tick must panic");
        clone.disarm();
        switch.tick();
        assert_eq!(switch.remaining(), None);
    }

    #[test]
    fn disarmed_switch_never_fires() {
        let switch = PanicSwitch::disarmed();
        for _ in 0..1000 {
            switch.tick();
        }
        assert_eq!(switch.remaining(), None);
    }

    fn write_lines(dir: &Path, lines: &[&str]) -> std::path::PathBuf {
        let path = dir.join("journal.jsonl");
        let mut contents = String::new();
        for line in lines {
            contents.push_str(line);
            contents.push('\n');
        }
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ascend-faults-harness-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn truncate_tail_tears_the_last_record() {
        let dir = tempdir("truncate");
        let path = write_lines(&dir, &["{\"a\":1}", "{\"b\":2}"]);
        corrupt_journal(&path, JournalFault::TruncateTailBytes(3)).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"a\":1}\n{\"b\":"); // torn, no trailing newline
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_last_records_stays_record_aligned() {
        let dir = tempdir("drop");
        let path = write_lines(&dir, &["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        corrupt_journal(&path, JournalFault::DropLastRecords(2)).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"a\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_appends_the_last_record_again() {
        let dir = tempdir("duplicate");
        let path = write_lines(&dir, &["{\"a\":1}", "{\"b\":2}"]);
        corrupt_journal(&path, JournalFault::DuplicateLastRecord).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"a\":1}\n{\"b\":2}\n{\"b\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
