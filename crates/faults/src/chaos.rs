//! One-seed, cross-tier chaos scheduling with replay and minimization.
//!
//! Every fault injector in this crate is individually seeded — kills
//! ([`KillPlan`]), at-rest disk corruption ([`DiskFault`]), wire faults
//! ([`WireFaultPlan`](crate::WireFaultPlan)), load ([`LoadProfile`]) and
//! silent result skew ([`BuggyEngine`]). [`ChaosSchedule`] composes them:
//! **one** SplitMix64 seed expands deterministically into a coordinated
//! timeline across every tier at once, so a chaos run is reproducible from
//! a single printed number.
//!
//! When a run violates an invariant, [`ddmin`] delta-debugs the fault list
//! down to a minimal reproducing subsequence; [`ChaosSchedule::subset`]
//! replays exactly those events (load is never minimized away — it is the
//! workload, not a fault).

use std::fmt;
use std::time::Duration;

use crate::killplan::KillEvent;
use crate::rng::SplitMix64;
use crate::wire::{WireFaultEvent, WireFaultPlan};
use crate::{BuggyEngine, DiskFault, KillPlan, LoadProfile};

/// Tunables for expanding a [`ChaosSchedule`] from one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Cluster width the schedule targets.
    pub shards: usize,
    /// Length of the chaos window (load, kills and disk faults all land
    /// inside it).
    pub duration: Duration,
    /// Mean job arrival rate of the generated load.
    pub mean_rate_hz: f64,
    /// Approximate number of shard kills over the window.
    pub kills: usize,
    /// Number of wire-fault events drawn.
    pub wire_events: usize,
    /// Number of at-rest disk faults drawn (each lands on a shard's store
    /// segment right after that shard is killed — a crash plus a sick
    /// medium).
    pub disk_events: usize,
    /// Probability the schedule includes a [`BuggyEngine`] skew event.
    /// Defaults to zero: the cluster tier has no online auditor, so a
    /// buggy engine is a *guaranteed* bit-identity violation — it is the
    /// canary, not background noise.
    pub buggy_chance: f64,
    /// Stall length drawn for [`WireFault::Stall`](crate::WireFault::Stall)
    /// events; pick it above the supervisor's heartbeat timeout.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// Defaults sized for a short CI-friendly window.
    #[must_use]
    pub fn new(shards: usize, duration: Duration) -> Self {
        ChaosConfig {
            shards: shards.max(1),
            duration,
            mean_rate_hz: 250.0,
            kills: 3,
            wire_events: 4,
            disk_events: 2,
            buggy_chance: 0.0,
            stall_ms: 600,
        }
    }
}

/// One event in a chaos schedule's fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosFault {
    /// `kill -9` a shard's worker process at `at`.
    Kill {
        /// Offset from the start of the run.
        at: Duration,
        /// Target shard.
        shard: usize,
    },
    /// Kill a shard at `at` and corrupt its store segment at rest before
    /// it respawns — a crash landing on a sick medium.
    Disk {
        /// Offset from the start of the run.
        at: Duration,
        /// Target shard.
        shard: usize,
        /// At-rest corruption applied to the shard's segment file.
        fault: DiskFault,
    },
    /// A byte-level wire fault (see [`WireFaultEvent`]).
    Wire(WireFaultEvent),
    /// Arm a silently-wrong engine on every shard for the whole run.
    Buggy {
        /// Seed of the skew draws.
        seed: u64,
        /// Maximum relative duration skew.
        magnitude: f64,
    },
}

impl fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosFault::Kill { at, shard } => {
                write!(f, "kill shard={shard} at={}ms", at.as_millis())
            }
            ChaosFault::Disk { at, shard, fault } => {
                write!(f, "disk shard={shard} at={}ms {fault:?}", at.as_millis())
            }
            ChaosFault::Wire(event) => write!(f, "{event}"),
            ChaosFault::Buggy { seed, magnitude } => {
                write!(f, "buggy-engine seed={seed:#018x} magnitude={magnitude}")
            }
        }
    }
}

/// A deterministic cross-tier chaos timeline expanded from one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The seed everything derives from.
    pub seed: u64,
    /// The workload driven alongside the faults (never minimized away).
    pub load: LoadProfile,
    /// The fault timeline; indices into this list are what replay's
    /// `--keep` and [`ddmin`] operate on.
    pub faults: Vec<ChaosFault>,
}

impl ChaosSchedule {
    /// Expands `seed` into a full schedule under `config`. Same seed and
    /// config, same schedule — byte for byte.
    #[must_use]
    pub fn expand(seed: u64, config: &ChaosConfig) -> Self {
        let load = LoadProfile::new(
            seed ^ 0x4C4F_4144_u64, // "LOAD"
            config.mean_rate_hz,
            config.duration,
        )
        .with_burst(config.duration / 4, config.duration / 8, 4.0);

        let mut faults = Vec::new();
        if config.kills > 0 {
            let interval =
                config.duration.div_f64(config.kills as f64).max(Duration::from_millis(1));
            let plan = KillPlan::new(seed ^ 0x4B49_4C4C, config.shards, interval, config.duration);
            for kill in plan.schedule() {
                faults.push(ChaosFault::Kill { at: kill.at, shard: kill.shard });
            }
        }
        let mut rng = SplitMix64::new(seed ^ 0x4449_534B); // "DISK"
        for _ in 0..config.disk_events {
            faults.push(ChaosFault::Disk {
                at: config.duration.mul_f64(rng.unit_f64()),
                shard: rng.below(config.shards as u64) as usize,
                fault: random_disk_fault(&mut rng),
            });
        }
        for event in
            WireFaultPlan::expand(seed, config.shards, config.wire_events, config.stall_ms).events
        {
            faults.push(ChaosFault::Wire(event));
        }
        let mut rng = SplitMix64::new(seed ^ 0x4255_4747); // "BUGG"
        if config.buggy_chance > 0.0 && rng.chance(config.buggy_chance) {
            faults.push(ChaosFault::Buggy { seed: rng.next_u64(), magnitude: 1e-3 });
        }
        ChaosSchedule { seed, load, faults }
    }

    /// Appends a fault (used to arm the canary defect).
    #[must_use]
    pub fn with_fault(mut self, fault: ChaosFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The schedule restricted to the fault indices in `keep` (load is
    /// retained in full). Out-of-range indices are ignored; order follows
    /// the original timeline, not `keep`.
    #[must_use]
    pub fn subset(&self, keep: &[usize]) -> ChaosSchedule {
        let faults = self
            .faults
            .iter()
            .enumerate()
            .filter(|(index, _)| keep.contains(index))
            .map(|(_, fault)| *fault)
            .collect();
        ChaosSchedule { seed: self.seed, load: self.load.clone(), faults }
    }

    /// The kill events, in timeline order.
    #[must_use]
    pub fn kills(&self) -> Vec<KillEvent> {
        self.faults
            .iter()
            .filter_map(|fault| match fault {
                ChaosFault::Kill { at, shard } => Some(KillEvent { at: *at, shard: *shard }),
                _ => None,
            })
            .collect()
    }

    /// The kill-then-corrupt disk events.
    #[must_use]
    pub fn disk_faults(&self) -> Vec<(Duration, usize, DiskFault)> {
        self.faults
            .iter()
            .filter_map(|fault| match fault {
                ChaosFault::Disk { at, shard, fault } => Some((*at, *shard, *fault)),
                _ => None,
            })
            .collect()
    }

    /// The wire-fault plan covering the kept wire events, if any.
    #[must_use]
    pub fn wire_plan(&self) -> Option<WireFaultPlan> {
        let events: Vec<WireFaultEvent> = self
            .faults
            .iter()
            .filter_map(|fault| match fault {
                ChaosFault::Wire(event) => Some(*event),
                _ => None,
            })
            .collect();
        if events.is_empty() {
            None
        } else {
            Some(WireFaultPlan::from_events(self.seed, events))
        }
    }

    /// The armed buggy engine, if the schedule carries one.
    #[must_use]
    pub fn buggy(&self) -> Option<BuggyEngine> {
        self.faults.iter().find_map(|fault| match fault {
            ChaosFault::Buggy { seed, magnitude } => {
                Some(BuggyEngine::new(*seed).with_magnitude(*magnitude))
            }
            _ => None,
        })
    }
}

fn random_disk_fault(rng: &mut SplitMix64) -> DiskFault {
    match rng.below(5) {
        0 => DiskFault::TruncateTailBytes(1 + rng.below(200)),
        1 => DiskFault::DropTailLines(1 + rng.below(2) as usize),
        2 => DiskFault::DuplicateTailLine,
        3 => DiskFault::FlipBits { offset: rng.below(2048), mask: 1u8 << rng.below(8) },
        _ => DiskFault::AppendGarbage { len: 16 + rng.below(112) as usize, seed: rng.next_u64() },
    }
}

/// Delta-debugs a failing index set `0..n` down to a minimal failing
/// subset. `fails(keep)` must return true when replaying only the events
/// at `keep` still reproduces the violation; the full set is assumed
/// failing. The result is 1-minimal with respect to the probes performed
/// (for flaky, timing-dependent failures it is a best effort: a probe that
/// happens not to reproduce keeps its events).
pub fn ddmin(n: usize, mut fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let mut current: Vec<usize> = (0..n).collect();
    if current.len() < 2 {
        return current;
    }
    let mut granularity = 2usize;
    loop {
        let chunk_len = current.len().div_ceil(granularity);
        let chunks: Vec<Vec<usize>> = current.chunks(chunk_len).map(<[usize]>::to_vec).collect();
        let mut reduced = false;
        for chunk in &chunks {
            if chunk.len() < current.len() && fails(chunk) {
                current = chunk.clone();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if !reduced && chunks.len() > 2 {
            for skip in 0..chunks.len() {
                let complement: Vec<usize> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(index, _)| *index != skip)
                    .flat_map(|(_, chunk)| chunk.iter().copied())
                    .collect();
                if complement.len() < current.len() && fails(&complement) {
                    current = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            if current.len() < 2 {
                return current;
            }
            continue;
        }
        if granularity >= current.len() {
            return current;
        }
        granularity = (granularity * 2).min(current.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let config = ChaosConfig::new(2, Duration::from_millis(400));
        let a = ChaosSchedule::expand(0xBEEF, &config);
        let b = ChaosSchedule::expand(0xBEEF, &config);
        assert_eq!(a, b);
        let c = ChaosSchedule::expand(0xBEF0, &config);
        assert_ne!(a, c);
        assert_eq!(a.disk_faults().len(), config.disk_events);
        assert_eq!(a.wire_plan().map_or(0, |plan| plan.events.len()), config.wire_events);
        assert!(a.buggy().is_none(), "buggy_chance defaults to zero");
    }

    #[test]
    fn subset_keeps_timeline_order_and_load() {
        let config = ChaosConfig::new(2, Duration::from_millis(400));
        let full = ChaosSchedule::expand(7, &config);
        assert!(full.faults.len() >= 3, "need a few events to subset");
        let keep = [2usize, 0];
        let sub = full.subset(&keep);
        assert_eq!(sub.faults.len(), 2);
        assert_eq!(sub.faults[0], full.faults[0], "timeline order, not keep order");
        assert_eq!(sub.faults[1], full.faults[2]);
        assert_eq!(sub.load, full.load, "load is never minimized away");
        assert_eq!(full.subset(&[]).faults.len(), 0);
    }

    #[test]
    fn canary_fault_is_visible_through_accessors() {
        let config = ChaosConfig::new(1, Duration::from_millis(100));
        let schedule = ChaosSchedule::expand(1, &config)
            .with_fault(ChaosFault::Buggy { seed: 99, magnitude: 1e-3 });
        let bug = schedule.buggy().expect("canary armed");
        assert_eq!(bug.seed, 99);
        assert_eq!(bug.rate, 1.0);
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let mut probes = 0;
        let minimal = ddmin(16, |keep| {
            probes += 1;
            keep.contains(&11)
        });
        assert_eq!(minimal, vec![11]);
        assert!(probes < 64, "ddmin should converge quickly, used {probes}");
    }

    #[test]
    fn ddmin_finds_an_interacting_pair() {
        let minimal = ddmin(12, |keep| keep.contains(&3) && keep.contains(&9));
        assert_eq!(minimal, vec![3, 9]);
    }

    #[test]
    fn ddmin_handles_degenerate_sizes() {
        assert_eq!(ddmin(0, |_| true), Vec::<usize>::new());
        assert_eq!(ddmin(1, |_| true), vec![0]);
    }

    #[test]
    fn fault_display_is_printable() {
        let config = ChaosConfig::new(2, Duration::from_millis(300));
        let schedule = ChaosSchedule::expand(5, &config);
        for fault in &schedule.faults {
            assert!(!fault.to_string().is_empty());
        }
    }
}
