//! Seeded adversarial kernel generation for the differential fuzzer.
//!
//! [`generate`] draws a kernel — compute, transfer, and synchronization
//! instructions — from a seed. Generation is deliberately *not* limited to
//! valid kernels: flags may be awaited without producers, synchronization
//! may form cross-queue cycles, regions may overrun their buffers, and
//! precisions may be unsupported. The differential property suite feeds
//! every generated kernel to both the static validator and the engine and
//! checks that their verdicts agree (see the crate docs for the contract).

use crate::rng::SplitMix64;
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{Kernel, KernelBuilder, Region};

/// The MTE-schedulable transfer paths a kernel may legally name.
const MTE_PATHS: [TransferPath; 9] = [
    TransferPath::GmToL1,
    TransferPath::GmToL0A,
    TransferPath::GmToL0B,
    TransferPath::GmToUb,
    TransferPath::L1ToL0A,
    TransferPath::L1ToL0B,
    TransferPath::L1ToUb,
    TransferPath::UbToGm,
    TransferPath::UbToL1,
];

/// Flags are drawn from a small pool so sets and waits collide often.
const FLAG_POOL: u32 = 4;

/// Regions are laid out on a few fixed slots per buffer so overlapping
/// (spatially dependent) instructions are common.
const SLOTS: u64 = 4;

/// Generates a kernel of up to `max_len` instructions from `seed`.
///
/// The same `(seed, max_len)` always yields the same kernel. Roughly half
/// of the generated kernels pass [`ascend_isa::validate`] against the
/// built-in training chip; the other half exercise every rejection path —
/// unmatched waits, self-synchronization, sync cycles, oversized regions,
/// and unsupported precisions.
#[must_use]
pub fn generate(seed: u64, max_len: usize) -> Kernel {
    let chip = ChipSpec::training();
    let mut rng = SplitMix64::new(seed);
    let len = 1 + rng.below(max_len.max(2) as u64 - 1) as usize;
    let mut b = KernelBuilder::new(format!("fuzz#{seed}"));
    for _ in 0..FLAG_POOL {
        // Materialize the flag pool so ids are stable regardless of use.
        let _ = b.new_flag();
    }
    // Sets and waits seen so far, per flag, plus the queues that set each
    // flag (used to bias toward valid, self-sync-free kernels).
    let mut sets = [0usize; FLAG_POOL as usize];
    let mut waits = [0usize; FLAG_POOL as usize];
    let mut set_queues: [Vec<Component>; FLAG_POOL as usize] = Default::default();

    while b.len() < len {
        match rng.below(100) {
            // ---------------------------------------------- transfers
            0..=34 => {
                let path = MTE_PATHS[rng.below(MTE_PATHS.len() as u64) as usize];
                let (src, dst) = transfer_regions(&mut rng, &chip, path);
                // `transfer_regions` derives both regions from the path,
                // so this cannot fail; if a future path/region mismatch
                // slips in, skipping the instruction keeps the fuzz run
                // alive (debug builds still flag the generator bug).
                let added = b.transfer(path, src, dst);
                debug_assert!(added.is_ok(), "generated transfer matches its path: {added:?}");
            }
            // ------------------------------------------------ compute
            35..=54 => {
                let unit = [ComputeUnit::Scalar, ComputeUnit::Vector, ComputeUnit::Cube]
                    [rng.below(3) as usize];
                // Mostly a supported precision; sometimes a fully random
                // one so UnsupportedPrecision stays reachable.
                let precision = if rng.chance(0.9) {
                    unit.precisions()[rng.below(unit.precisions().len() as u64) as usize]
                } else {
                    [
                        Precision::Int8,
                        Precision::Fp16,
                        Precision::Int32,
                        Precision::Fp32,
                        Precision::Fp64,
                    ][rng.below(5) as usize]
                };
                let ops = 1 + rng.below(4096);
                let reads = vec![slot_region(&mut rng, &chip, Buffer::Ub)];
                let writes = vec![slot_region(&mut rng, &chip, Buffer::Ub)];
                b.compute(unit, precision, ops, reads, writes);
            }
            // ----------------------------------------------- set_flag
            55..=74 => {
                let flag = rng.below(u64::from(FLAG_POOL)) as usize;
                let queue = Component::ALL[rng.below(6) as usize];
                b.set_flag(queue, ascend_isa::FlagId::new(flag as u32));
                sets[flag] += 1;
                set_queues[flag].push(queue);
            }
            // ---------------------------------------------- wait_flag
            75..=91 => {
                let flag;
                let queue;
                if rng.chance(0.7) {
                    // Biased: wait on a flag with spare sets, from a queue
                    // that never set it — keeps the kernel valid.
                    let Some(candidate) = (0..FLAG_POOL as usize).find(|&f| sets[f] > waits[f])
                    else {
                        continue;
                    };
                    let free: Vec<Component> = Component::ALL
                        .into_iter()
                        .filter(|q| !set_queues[candidate].contains(q))
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    flag = candidate;
                    queue = free[rng.below(free.len() as u64) as usize];
                } else {
                    // Unbiased: may produce unmatched waits, self-sync,
                    // or cross-queue cycles.
                    flag = rng.below(u64::from(FLAG_POOL)) as usize;
                    queue = Component::ALL[rng.below(6) as usize];
                }
                b.wait_flag(queue, ascend_isa::FlagId::new(flag as u32));
                waits[flag] += 1;
            }
            // ------------------------------------------------ barrier
            _ => {
                b.barrier_all();
            }
        }
    }
    b.build()
}

/// A region on one of the buffer's fixed slots; rarely deliberately
/// overruns the buffer so `RegionOutOfBounds` stays reachable.
fn slot_region(rng: &mut SplitMix64, chip: &ChipSpec, buffer: Buffer) -> Region {
    let capacity = chip.capacity(buffer).unwrap_or(1 << 20).min(1 << 30);
    let slot_len = (capacity / SLOTS).max(64);
    let offset = rng.below(SLOTS) * slot_len;
    let len = slot_len.min(64 + rng.below(slot_len));
    if rng.chance(0.03) {
        // Overrun: one-past-capacity end offset.
        Region::new(buffer, capacity.saturating_sub(len / 2), len.max(2))
    } else {
        Region::new(buffer, offset, len)
    }
}

/// Matching source/destination regions for `path` (equal lengths, correct
/// endpoint buffers — the builder enforces both).
fn transfer_regions(rng: &mut SplitMix64, chip: &ChipSpec, path: TransferPath) -> (Region, Region) {
    let src = slot_region(rng, chip, path.src());
    let dst_proto = slot_region(rng, chip, path.dst());
    let len = src.len().min(dst_proto.len());
    let src = Region::new(path.src(), src.offset(), len);
    let dst = Region::new(path.dst(), dst_proto.offset(), len);
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::validate;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            assert_eq!(generate(seed, 24), generate(seed, 24));
        }
    }

    #[test]
    fn generated_kernels_are_never_empty_and_bounded() {
        for seed in 0..64 {
            let kernel = generate(seed, 24);
            assert!(!kernel.is_empty());
            assert!(kernel.len() <= 24, "kernel of {} instructions", kernel.len());
        }
    }

    #[test]
    fn generator_covers_both_validator_verdicts() {
        let chip = ChipSpec::training();
        let mut accepted = 0;
        let mut rejected = 0;
        for seed in 0..256 {
            match validate(&generate(seed, 24), &chip) {
                Ok(()) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        assert!(accepted > 30, "too few valid kernels: {accepted}/256");
        assert!(rejected > 30, "too few invalid kernels: {rejected}/256");
    }

    #[test]
    fn generator_emits_every_instruction_class() {
        use ascend_isa::Instruction;
        let mut seen = [false; 5];
        for seed in 0..128 {
            for instr in generate(seed, 24).iter() {
                let class = match instr {
                    Instruction::Compute(_) => 0,
                    Instruction::Transfer(_) => 1,
                    Instruction::SetFlag { .. } => 2,
                    Instruction::WaitFlag { .. } => 3,
                    Instruction::Barrier => 4,
                };
                seen[class] = true;
            }
        }
        assert_eq!(seen, [true; 5], "missing instruction class: {seen:?}");
    }
}
