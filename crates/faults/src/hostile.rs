//! Hostile work items: operators that defeat *cooperative* supervision.
//!
//! Everything `PanicSwitch` and `FaultPlan` inject is survivable
//! in-process — a panic unwinds into `catch_unwind`, a deadlock trips the
//! watchdog. This module generates the failures that are **not**: a build
//! stage that hot-loops without ever polling a `CancelToken`, a process
//! `abort()`, a runaway allocation. They exist to exercise the sandboxed
//! execution tier, where the only effective defense is a supervising
//! *parent process* with a kill switch.
//!
//! A [`HostileOp`] misbehaves inside [`Operator::build`], i.e. before the
//! simulator (and its budget/cancel machinery) is ever reached. The
//! [`HostileMode::GarbageStdout`] and [`HostileMode::TruncateFrame`]
//! modes build a harmless kernel — they are protocol faults, carried out
//! by the sandbox *worker harness* when it writes the result frame, not
//! by the operator itself.

use ascend_arch::ChipSpec;
use ascend_isa::{IsaError, Kernel};
use ascend_ops::{AddRelu, Operator, OptFlags};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Whether a worker's heartbeat thread has been silenced by
/// [`HostileMode::Mute`] (process-global, set once, never cleared in a
/// worker's lifetime).
static HEARTBEATS_MUTED: AtomicBool = AtomicBool::new(false);

/// Returns whether heartbeats have been muted in this process.
#[must_use]
pub fn heartbeats_muted() -> bool {
    HEARTBEATS_MUTED.load(Ordering::Acquire)
}

/// Sets the process-global heartbeat mute flag (tests may clear it).
pub fn set_heartbeats_muted(muted: bool) {
    HEARTBEATS_MUTED.store(muted, Ordering::Release);
}

/// How a [`HostileOp`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostileMode {
    /// Hot-loop forever in `build`, never polling any token — only a
    /// wall-clock kill from outside the process ends it.
    Spin,
    /// `std::process::abort()` mid-build: dies by SIGABRT with no unwind,
    /// no journal flush, no goodbye frame.
    Abort,
    /// Allocate and *touch* memory until roughly `megabytes` MiB are
    /// resident, then hold them and sleep — trips an RSS budget, not a
    /// deadline.
    Grow {
        /// Target resident-set growth in MiB.
        megabytes: u64,
    },
    /// Silence the worker's heartbeat thread (via the process-global
    /// [`heartbeats_muted`] flag), then sleep — the process stays alive
    /// but looks dead to the heartbeat monitor.
    Mute,
    /// Build normally; the sandbox worker harness then writes garbage
    /// bytes where the result frame belongs.
    GarbageStdout,
    /// Build normally; the sandbox worker harness then truncates the
    /// result frame mid-payload and exits cleanly.
    TruncateFrame,
}

/// Hot-loops forever; only an external kill ends it.
pub fn spin_forever() -> ! {
    let mut x = 0u64;
    loop {
        x = std::hint::black_box(x.wrapping_add(1));
    }
}

/// Allocates and touches pages until about `megabytes` MiB are resident,
/// pausing briefly between chunks so an RSS sampler can watch the climb,
/// then holds the memory and sleeps forever.
pub fn grow_resident(megabytes: u64) -> ! {
    const CHUNK: usize = 4 * 1024 * 1024;
    let target = usize::try_from(megabytes).unwrap_or(usize::MAX).saturating_mul(1024 * 1024);
    let mut hoard: Vec<Vec<u8>> = Vec::new();
    let mut total = 0usize;
    while total < target {
        let mut block = vec![0u8; CHUNK];
        // Touch one byte per page so the allocation is actually resident,
        // not just reserved address space.
        for page in block.chunks_mut(4096) {
            page[0] = 1;
        }
        hoard.push(block);
        total += CHUNK;
        // Pause every few chunks — often enough for an RSS sampler to
        // watch the climb, rarely enough that timer granularity (sleeps
        // round up to the scheduler tick) cannot stall the growth below
        // any practical budget.
        if total.is_multiple_of(4 * CHUNK) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    loop {
        std::hint::black_box(&hoard);
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Sleeps forever (the process is alive, just useless).
pub fn sleep_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// An [`Operator`] whose `build` carries out a [`HostileMode`].
///
/// In-process it is a landmine: `Spin`/`Mute` never return, `Abort`
/// takes the process down, `Grow` wedges after exhausting its budget.
/// Under the sandboxed tier each of those is contained in a disposable
/// child and surfaces as a typed worker failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostileOp {
    mode: HostileMode,
}

impl HostileOp {
    /// A hostile operator with the given mode.
    #[must_use]
    pub fn new(mode: HostileMode) -> Self {
        HostileOp { mode }
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> HostileMode {
        self.mode
    }
}

impl Operator for HostileOp {
    fn name(&self) -> String {
        format!("hostile_{:?}", self.mode).to_lowercase()
    }

    fn flags(&self) -> OptFlags {
        OptFlags::new()
    }

    fn with_flags_dyn(&self, _flags: OptFlags) -> Box<dyn Operator> {
        Box::new(*self)
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        match self.mode {
            HostileMode::Spin => spin_forever(),
            HostileMode::Abort => std::process::abort(),
            HostileMode::Grow { megabytes } => grow_resident(megabytes),
            HostileMode::Mute => {
                set_heartbeats_muted(true);
                sleep_forever()
            }
            // Protocol faults corrupt the *frame*, not the work: build a
            // small real kernel so the worker has a result to mangle.
            HostileMode::GarbageStdout | HostileMode::TruncateFrame => {
                AddRelu::new(1024).build(chip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_modes_build_harmless_kernels() {
        let chip = ChipSpec::inference();
        for mode in [HostileMode::GarbageStdout, HostileMode::TruncateFrame] {
            let op = HostileOp::new(mode);
            assert!(op.build(&chip).is_ok(), "{mode:?} must build in-process");
            assert!(op.name().starts_with("hostile_"));
        }
    }

    #[test]
    fn modes_serialize_round_trip() {
        let modes = [
            HostileMode::Spin,
            HostileMode::Abort,
            HostileMode::Grow { megabytes: 64 },
            HostileMode::Mute,
            HostileMode::GarbageStdout,
            HostileMode::TruncateFrame,
        ];
        for mode in modes {
            let json = serde_json::to_string(&mode).unwrap();
            let back: HostileMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back, "{json}");
        }
    }

    #[test]
    fn mute_flag_round_trips() {
        assert!(!heartbeats_muted());
        set_heartbeats_muted(true);
        assert!(heartbeats_muted());
        set_heartbeats_muted(false);
        assert!(!heartbeats_muted());
    }
}
