//! The declarative, seeded fault model.

use crate::rng::SplitMix64;
use ascend_arch::{ChipSpec, MteEngine};
use ascend_isa::{Instruction, Kernel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bandwidth degradation of one MTE engine.
///
/// A `scale` of `0.5` halves the engine's bandwidth; `0.0` models a dead
/// link — the degraded spec then fails [`ChipSpec::validate`] and the
/// simulator reports the failure instead of dividing by zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthFault {
    /// The engine whose paths are degraded.
    pub engine: MteEngine,
    /// Multiplier applied to the engine's bandwidth (non-negative).
    pub scale: f64,
}

/// A deterministic fault-injection plan the simulator accepts.
///
/// Faults fall into two classes with very different contracts:
///
/// * **Timing faults** — [`degrade_bandwidth`](FaultPlan::degrade_bandwidth)
///   with a positive scale and [`with_latency_jitter`](FaultPlan::with_latency_jitter)
///   — change instruction durations but never the synchronization
///   structure. A kernel that passes validation completes under any
///   timing-only plan (the differential fuzzer enforces exactly this).
/// * **Sync faults** — [`drop_set_flags`](FaultPlan::drop_set_flags),
///   [`duplicate_set_flags`](FaultPlan::duplicate_set_flags), and
///   [`truncate_to`](FaultPlan::truncate_to) — rewrite the kernel itself,
///   making runtime deadlock (and its forensics) reachable on purpose.
///
/// Every choice the plan makes (which `set_flag` to drop, each
/// instruction's latency factor) is derived from the seed, so a failing
/// scenario replays bit-identically from `FaultPlan::new(seed)`.
///
/// # Examples
///
/// ```
/// use ascend_arch::MteEngine;
/// use ascend_faults::FaultPlan;
///
/// let plan = FaultPlan::new(7)
///     .degrade_bandwidth(MteEngine::Gm, 0.25)
///     .with_latency_jitter(0.2);
/// assert!(plan.is_timing_only());
///
/// let hostile = FaultPlan::new(7).drop_set_flags(1);
/// assert!(!hostile.is_timing_only());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    bandwidth: Vec<BandwidthFault>,
    latency_jitter: f64,
    drop_set_flags: usize,
    duplicate_set_flags: usize,
    truncate_to: Option<usize>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            bandwidth: Vec::new(),
            latency_jitter: 0.0,
            drop_set_flags: 0,
            duplicate_set_flags: 0,
            truncate_to: None,
        }
    }

    /// The seed all of the plan's random choices derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a bandwidth degradation of `engine` by `scale` (timing fault;
    /// `0.0` models a dead link, which surfaces as an invalid-spec error).
    ///
    /// # Panics
    ///
    /// Panics when `scale` is negative or not finite.
    #[must_use]
    pub fn degrade_bandwidth(mut self, engine: MteEngine, scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "bandwidth scale must be finite and >= 0");
        self.bandwidth.push(BandwidthFault { engine, scale });
        self
    }

    /// Perturbs every instruction's duration by a seeded multiplicative
    /// factor in `[1/(1+spread), 1+spread)` (timing fault).
    ///
    /// # Panics
    ///
    /// Panics when `spread` is negative or not finite.
    #[must_use]
    pub fn with_latency_jitter(mut self, spread: f64) -> Self {
        assert!(spread.is_finite() && spread >= 0.0, "latency jitter must be finite and >= 0");
        self.latency_jitter = spread;
        self
    }

    /// Drops `count` seeded-chosen `set_flag` instructions (sync fault):
    /// their waiters starve, so the kernel can genuinely deadlock.
    #[must_use]
    pub fn drop_set_flags(mut self, count: usize) -> Self {
        self.drop_set_flags = count;
        self
    }

    /// Duplicates `count` seeded-chosen `set_flag` instructions (sync
    /// fault): flags over-fire, exercising the counting semantics.
    #[must_use]
    pub fn duplicate_set_flags(mut self, count: usize) -> Self {
        self.duplicate_set_flags = count;
        self
    }

    /// Truncates the kernel to its first `len` instructions (sync fault):
    /// producers vanish mid-pipeline.
    #[must_use]
    pub fn truncate_to(mut self, len: usize) -> Self {
        self.truncate_to = Some(len);
        self
    }

    /// Whether the plan only perturbs timing. Timing-only plans must never
    /// hang a kernel that passes validation — the differential fuzzer's
    /// core liveness property.
    #[must_use]
    pub fn is_timing_only(&self) -> bool {
        self.drop_set_flags == 0 && self.duplicate_set_flags == 0 && self.truncate_to.is_none()
    }

    /// Whether [`FaultPlan::apply_to_kernel`] would change any kernel.
    #[must_use]
    pub fn mutates_kernel(&self) -> bool {
        !self.is_timing_only()
    }

    /// The degraded chip spec. The result may be invalid (dead links);
    /// the simulator runs [`ChipSpec::validate`] on it and reports
    /// [`ascend_arch::ArchError::InvalidSpec`] rather than computing with
    /// zeroed bandwidth.
    #[must_use]
    pub fn apply_to_chip(&self, chip: &ChipSpec) -> ChipSpec {
        let mut degraded = chip.clone();
        for fault in &self.bandwidth {
            degraded.scale_bandwidth_unchecked(fault.engine, fault.scale);
        }
        degraded
    }

    /// The mutated kernel: truncation first, then seeded `set_flag` drops,
    /// then seeded duplications. The result intentionally may fail static
    /// validation — that is how the engine's deadlock forensics become
    /// reachable.
    #[must_use]
    pub fn apply_to_kernel(&self, kernel: &Kernel) -> Kernel {
        if !self.mutates_kernel() {
            return kernel.clone();
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut instructions: Vec<Instruction> = kernel.instructions().to_vec();
        if let Some(len) = self.truncate_to {
            instructions.truncate(len);
        }
        for _ in 0..self.drop_set_flags {
            let sets: Vec<usize> = set_flag_positions(&instructions);
            if sets.is_empty() {
                break;
            }
            let victim = sets[rng.below(sets.len() as u64) as usize];
            instructions.remove(victim);
        }
        for _ in 0..self.duplicate_set_flags {
            let sets: Vec<usize> = set_flag_positions(&instructions);
            if sets.is_empty() {
                break;
            }
            let chosen = sets[rng.below(sets.len() as u64) as usize];
            let copy = instructions[chosen].clone();
            instructions.insert(chosen + 1, copy);
        }
        kernel
            .renamed(format!("{}+faults#{}", kernel.name(), self.seed))
            .with_instructions(instructions)
    }

    /// The seeded duration multiplier for instruction `index` (always
    /// positive; `1.0` when jitter is off).
    #[must_use]
    pub fn latency_factor(&self, index: usize) -> f64 {
        if self.latency_jitter == 0.0 {
            return 1.0;
        }
        let mut rng =
            SplitMix64::new(self.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (1.0 + self.latency_jitter).powf(2.0 * rng.unit_f64() - 1.0)
    }
}

fn set_flag_positions(instructions: &[Instruction]) -> Vec<usize> {
    instructions
        .iter()
        .enumerate()
        .filter(|(_, instr)| matches!(instr, Instruction::SetFlag { .. }))
        .map(|(i, _)| i)
        .collect()
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan #{}", self.seed)?;
        for fault in &self.bandwidth {
            write!(f, " bandwidth({}x{:.2})", fault.engine, fault.scale)?;
        }
        if self.latency_jitter > 0.0 {
            write!(f, " jitter({:.2})", self.latency_jitter)?;
        }
        if self.drop_set_flags > 0 {
            write!(f, " drop-sets({})", self.drop_set_flags)?;
        }
        if self.duplicate_set_flags > 0 {
            write!(f, " dup-sets({})", self.duplicate_set_flags)?;
        }
        if let Some(len) = self.truncate_to {
            write!(f, " truncate({len})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};

    fn sample_kernel() -> Kernel {
        let gm = Region::new(Buffer::Gm, 0, 1024);
        let ub = Region::new(Buffer::Ub, 0, 1024);
        let mut b = KernelBuilder::new("sample");
        let loaded = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.set_flag(Component::MteGm, loaded);
        b.wait_flag(Component::Vector, loaded);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 512, vec![ub], vec![ub]);
        b.build()
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new(1);
        let kernel = sample_kernel();
        assert_eq!(plan.apply_to_kernel(&kernel), kernel);
        let chip = ChipSpec::training();
        assert_eq!(plan.apply_to_chip(&chip), chip);
        assert_eq!(plan.latency_factor(3), 1.0);
        assert!(plan.is_timing_only());
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let kernel = sample_kernel();
        let a = FaultPlan::new(99).drop_set_flags(1).apply_to_kernel(&kernel);
        let b = FaultPlan::new(99).drop_set_flags(1).apply_to_kernel(&kernel);
        assert_eq!(a, b);
    }

    #[test]
    fn dropping_removes_a_set_flag() {
        let kernel = sample_kernel();
        let mutated = FaultPlan::new(5).drop_set_flags(1).apply_to_kernel(&kernel);
        assert_eq!(mutated.len(), kernel.len() - 1);
        let sets =
            |k: &Kernel| k.iter().filter(|i| matches!(i, Instruction::SetFlag { .. })).count();
        assert_eq!(sets(&mutated), sets(&kernel) - 1);
    }

    #[test]
    fn duplicating_adds_a_set_flag() {
        let kernel = sample_kernel();
        let mutated = FaultPlan::new(5).duplicate_set_flags(2).apply_to_kernel(&kernel);
        let sets =
            |k: &Kernel| k.iter().filter(|i| matches!(i, Instruction::SetFlag { .. })).count();
        // The sample has one set_flag; each round re-picks from the grown list.
        assert_eq!(sets(&mutated), sets(&kernel) + 2);
    }

    #[test]
    fn truncation_shortens_the_kernel() {
        let kernel = sample_kernel();
        let mutated = FaultPlan::new(5).truncate_to(2).apply_to_kernel(&kernel);
        assert_eq!(mutated.len(), 2);
        assert_eq!(mutated.instructions(), &kernel.instructions()[..2]);
    }

    #[test]
    fn bandwidth_degradation_targets_one_engine() {
        let chip = ChipSpec::training();
        let degraded = FaultPlan::new(1).degrade_bandwidth(MteEngine::Gm, 0.5).apply_to_chip(&chip);
        let before = chip.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle;
        let after = degraded.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle;
        assert_eq!(after, 0.5 * before);
        assert_eq!(
            chip.transfer(TransferPath::UbToGm).unwrap().bytes_per_cycle,
            degraded.transfer(TransferPath::UbToGm).unwrap().bytes_per_cycle,
        );
        assert_eq!(degraded.validate(), Ok(()));
    }

    #[test]
    fn dead_link_fails_spec_validation() {
        let degraded = FaultPlan::new(1)
            .degrade_bandwidth(MteEngine::Ub, 0.0)
            .apply_to_chip(&ChipSpec::training());
        assert!(degraded.validate().is_err());
    }

    #[test]
    fn latency_factors_are_positive_bounded_and_deterministic() {
        let plan = FaultPlan::new(11).with_latency_jitter(0.5);
        for index in 0..256 {
            let f = plan.latency_factor(index);
            assert!(f > 0.0 && f.is_finite());
            assert!((1.0 / 1.5..1.5 + 1e-12).contains(&f), "factor {f} out of range");
            assert_eq!(f, plan.latency_factor(index));
        }
        // Different indices must not all share one factor.
        let distinct: std::collections::HashSet<u64> =
            (0..16).map(|i| plan.latency_factor(i).to_bits()).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn display_names_active_faults() {
        let plan = FaultPlan::new(3)
            .degrade_bandwidth(MteEngine::Gm, 0.25)
            .with_latency_jitter(0.1)
            .drop_set_flags(2)
            .truncate_to(10);
        let text = plan.to_string();
        assert!(text.contains("fault plan #3"), "{text}");
        assert!(text.contains("bandwidth"), "{text}");
        assert!(text.contains("jitter"), "{text}");
        assert!(text.contains("drop-sets(2)"), "{text}");
        assert!(text.contains("truncate(10)"), "{text}");
    }
}
