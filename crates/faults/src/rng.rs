//! The crate's deterministic random source.

/// SplitMix64: a tiny, fast, deterministic generator. Every random choice
/// in this crate flows through it, so a fault plan or generated kernel is
/// fully determined by its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
