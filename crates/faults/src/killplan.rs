//! Seeded shard-kill scheduling for cluster chaos runs.
//!
//! A cluster's failure modes live in *when* members die relative to the
//! load they carry: a kill during a burst exercises failover under
//! pressure, a kill while idle exercises detection between jobs, and
//! back-to-back kills of the same shard exercise the respawn backoff.
//! [`KillPlan`] turns a seed into a deterministic Poisson-spaced
//! schedule of `(time, target shard)` kills — the chaos twin of
//! [`LoadProfile`](crate::LoadProfile) — so every chaos run replays
//! exactly from its printed seed.

use crate::SplitMix64;
use std::time::Duration;

/// One scheduled shard kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvent {
    /// Offset from the start of the run at which to deliver the kill.
    pub at: Duration,
    /// The shard index to `kill -9`.
    pub shard: usize,
}

/// A seeded schedule of shard kills: exponential gaps at a mean
/// interval, each kill targeting a uniformly drawn shard. The schedule
/// is a pure function of the plan — same seed, same kills, byte for
/// byte.
///
/// # Examples
///
/// ```
/// use ascend_faults::KillPlan;
/// use std::time::Duration;
///
/// let plan = KillPlan::new(42, 4, Duration::from_millis(400), Duration::from_secs(2));
/// let a = plan.schedule();
/// assert_eq!(a, plan.schedule(), "the schedule is deterministic");
/// assert!(a.iter().all(|kill| kill.shard < 4 && kill.at < plan.duration));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    /// Seed of the gap and target draws.
    pub seed: u64,
    /// Number of shards kills are drawn over (targets are `0..shards`).
    pub shards: usize,
    /// Mean gap between kills.
    pub mean_interval: Duration,
    /// Length of the generated schedule.
    pub duration: Duration,
}

impl KillPlan {
    /// A plan killing one of `shards` every `mean_interval` on average
    /// for `duration`.
    #[must_use]
    pub fn new(seed: u64, shards: usize, mean_interval: Duration, duration: Duration) -> Self {
        assert!(shards >= 1, "a kill plan needs at least one shard to target");
        assert!(!mean_interval.is_zero(), "the mean kill interval must be non-zero");
        KillPlan { seed, shards, mean_interval, duration }
    }

    /// Generates the kill schedule: exponential inter-kill gaps at the
    /// mean interval, uniformly drawn targets, in ascending order,
    /// ending before [`duration`](KillPlan::duration). The first kill
    /// also arrives after an exponential gap, so a short horizon can
    /// legitimately schedule none.
    #[must_use]
    pub fn schedule(&self) -> Vec<KillEvent> {
        let mut rng = SplitMix64::new(self.seed);
        let mut kills = Vec::new();
        let mut now = 0.0f64;
        let horizon = self.duration.as_secs_f64();
        let mean = self.mean_interval.as_secs_f64();
        loop {
            // Inverse-transform sample of Exp(1/mean); 1-u keeps ln away
            // from zero.
            let gap = -(1.0 - rng.unit_f64()).ln() * mean;
            now += gap;
            if now >= horizon {
                return kills;
            }
            kills.push(KillEvent {
                at: Duration::from_secs_f64(now),
                shard: rng.below(self.shards as u64) as usize,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let plan = KillPlan::new(7, 4, Duration::from_millis(50), Duration::from_secs(1));
        let a = plan.schedule();
        assert_eq!(a, plan.schedule());
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "kills must be ascending");
        }
        assert!(a.iter().all(|kill| kill.at < plan.duration));
        assert!(a.iter().all(|kill| kill.shard < plan.shards));
    }

    #[test]
    fn mean_interval_is_roughly_respected() {
        let plan = KillPlan::new(11, 8, Duration::from_millis(10), Duration::from_secs(2));
        let n = plan.schedule().len() as f64;
        // 200 expected kills; Poisson sd is ~14, so ±30% is generous.
        assert!((140.0..260.0).contains(&n), "expected ~200 kills, got {n}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = KillPlan::new(1, 4, Duration::from_millis(20), Duration::from_secs(1)).schedule();
        let b = KillPlan::new(2, 4, Duration::from_millis(20), Duration::from_secs(1)).schedule();
        assert_ne!(a, b, "distinct seeds must yield distinct schedules");
    }

    #[test]
    fn all_shards_are_eventually_targeted() {
        let plan = KillPlan::new(13, 3, Duration::from_millis(5), Duration::from_secs(2));
        let kills = plan.schedule();
        for shard in 0..plan.shards {
            assert!(
                kills.iter().any(|kill| kill.shard == shard),
                "shard {shard} never targeted in {} kills",
                kills.len()
            );
        }
    }

    #[test]
    fn single_shard_plans_target_it() {
        let plan = KillPlan::new(17, 1, Duration::from_millis(10), Duration::from_millis(500));
        assert!(plan.schedule().iter().all(|kill| kill.shard == 0));
    }
}
