//! Disk-fault injection: a file handle that fails like real storage.
//!
//! The journal and the result store both claim to survive what disks and
//! crashes actually do — torn writes, `ENOSPC` mid-record, fsync
//! refusal, bit rot, duplicated appends. Those claims are only worth
//! anything if the failures are *reachable in tests*, deterministically.
//! This module makes them so, in two complementary shapes:
//!
//! * [`FaultyFile`] is a **live** injector: a `Read + Write + Seek`
//!   handle over a real file that starts refusing service at a chosen
//!   point — writes fail with `ENOSPC` after a byte budget (tearing the
//!   in-flight record exactly as a full disk would), every `write` call
//!   can be bounded to a few bytes (exposing callers that assume one
//!   `write` is atomic), and `sync_data` can be made to fail (a dying
//!   device, an NFS mount). Storage layers accept it through the
//!   [`DiskFile`] seam.
//! * [`corrupt_file`] applies **at-rest** faults to a closed file — the
//!   states a crash or sick medium leaves behind: torn tails, dropped or
//!   duplicated trailing lines, flipped bits, appended garbage.
//!
//! Everything is deterministic: no randomness except where a seed is
//! passed in explicitly ([`DiskFault::AppendGarbage`]).

use crate::rng::SplitMix64;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The storage seam: everything a single-file storage layer (journal,
/// result store) needs from its backing file, as a trait so tests can
/// substitute a [`FaultyFile`] for a real [`File`].
pub trait DiskFile: Read + Write + Seek + Send {
    /// Flushes file data to the device (`fsync` minus metadata).
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure (or the injected one).
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates (or extends) the file to `len` bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

impl DiskFile for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
}

/// A real file wrapped in deterministic failure injection. Build with
/// [`create`](FaultyFile::create)/[`open`](FaultyFile::open), then chain
/// the fault knobs; with no knobs set it behaves exactly like the
/// underlying [`File`].
///
/// # Examples
///
/// ```no_run
/// use ascend_faults::{DiskFile, FaultyFile};
/// use std::io::Write;
///
/// // A "disk" with room for 64 bytes: the 65th write byte fails with
/// // an ENOSPC-class error, leaving a torn prefix behind — exactly the
/// // state crash recovery must cope with.
/// let mut file = FaultyFile::create("scratch.bin").unwrap().fail_writes_after(64);
/// let err = file.write_all(&[0u8; 100]).unwrap_err();
/// assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
/// ```
#[derive(Debug)]
pub struct FaultyFile {
    inner: File,
    /// Bytes successfully written through this handle so far.
    written: u64,
    /// Writes fail (`StorageFull`) once `written` reaches this budget.
    write_budget: Option<u64>,
    /// Each `write` call transfers at most this many bytes.
    short_write_limit: Option<usize>,
    /// `sync_data` fails.
    refuse_fsync: bool,
}

impl FaultyFile {
    /// Creates (truncating) a faultable file at `path`, opened
    /// read+write.
    ///
    /// # Errors
    ///
    /// Propagates the (real) creation failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FaultyFile> {
        let inner =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FaultyFile::wrap(inner))
    }

    /// Opens an existing file at `path`, read+write, faultable.
    ///
    /// # Errors
    ///
    /// Propagates the (real) open failure.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FaultyFile> {
        let inner = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(FaultyFile::wrap(inner))
    }

    /// Wraps an already-open handle.
    #[must_use]
    pub fn wrap(inner: File) -> FaultyFile {
        FaultyFile {
            inner,
            written: 0,
            write_budget: None,
            short_write_limit: None,
            refuse_fsync: false,
        }
    }

    /// Writes succeed for the first `bytes` bytes through this handle,
    /// then fail with [`io::ErrorKind::StorageFull`] — the `ENOSPC`
    /// model. A `write_all` spanning the boundary lands a torn prefix.
    #[must_use]
    pub fn fail_writes_after(mut self, bytes: u64) -> FaultyFile {
        self.write_budget = Some(bytes);
        self
    }

    /// Caps every `write` call at `max` bytes (minimum 1): callers that
    /// treat one `write` as atomic tear their records even without an
    /// error.
    #[must_use]
    pub fn short_writes(mut self, max: usize) -> FaultyFile {
        self.short_write_limit = Some(max.max(1));
        self
    }

    /// Makes `sync_data` fail with an I/O error while writes keep
    /// succeeding — data reaches the page cache but durability is
    /// refused.
    #[must_use]
    pub fn refuse_fsync(mut self) -> FaultyFile {
        self.refuse_fsync = true;
        self
    }

    /// Bytes successfully written through this handle so far.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.written
    }
}

impl Read for FaultyFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut allowed = buf.len();
        if let Some(budget) = self.write_budget {
            let remaining = budget.saturating_sub(self.written);
            if remaining == 0 && !buf.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected failure: disk full (write budget exhausted)",
                ));
            }
            allowed = allowed.min(usize::try_from(remaining).unwrap_or(usize::MAX));
        }
        if let Some(limit) = self.short_write_limit {
            allowed = allowed.min(limit);
        }
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultyFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl DiskFile for FaultyFile {
    fn sync_data(&mut self) -> io::Result<()> {
        if self.refuse_fsync {
            return Err(io::Error::other("injected failure: fsync refused by device"));
        }
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
}

/// An at-rest corruption of a closed file — the states a crash, an
/// append-retry, or a sick medium leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Chops `n` bytes off the end — the torn final write of a process
    /// killed mid-append.
    TruncateTailBytes(u64),
    /// Removes the last `n` newline-terminated lines (for line-oriented
    /// formats like the journal), keeping the file record-aligned.
    DropTailLines(usize),
    /// Appends a byte-identical copy of the last complete line — the
    /// duplicate an append-retry-after-crash produces.
    DuplicateTailLine,
    /// XORs the byte at `offset` with `mask` — bit rot in place. `mask`
    /// must be nonzero to change anything.
    FlipBits {
        /// Byte offset of the corruption.
        offset: u64,
        /// XOR mask applied to that byte.
        mask: u8,
    },
    /// Appends `len` bytes of seeded garbage — a wild write landing past
    /// the end of the real data.
    AppendGarbage {
        /// Number of garbage bytes.
        len: usize,
        /// Seed of the garbage stream (SplitMix64).
        seed: u64,
    },
}

/// Applies `fault` to the file at `path`.
///
/// # Errors
///
/// Propagates I/O failures; faults that need existing content to corrupt
/// ([`DiskFault::DuplicateTailLine`] on an empty file,
/// [`DiskFault::FlipBits`] past the end) report `InvalidInput`.
pub fn corrupt_file(path: &Path, fault: DiskFault) -> io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    match fault {
        DiskFault::TruncateTailBytes(n) => {
            let len = file.seek(SeekFrom::End(0))?;
            file.set_len(len.saturating_sub(n))?;
        }
        DiskFault::DropTailLines(n) => {
            let mut contents = String::new();
            file.read_to_string(&mut contents)?;
            // A "record" is a newline-terminated line; keep the first
            // `complete - n` of them so the file stays record-aligned.
            let boundaries: Vec<usize> = contents.match_indices('\n').map(|(i, _)| i + 1).collect();
            let keep_records = boundaries.len().saturating_sub(n);
            let keep_bytes = if keep_records == 0 { 0 } else { boundaries[keep_records - 1] };
            file.set_len(keep_bytes as u64)?;
        }
        DiskFault::DuplicateTailLine => {
            let mut contents = String::new();
            file.read_to_string(&mut contents)?;
            let trimmed = contents.trim_end_matches('\n');
            let last = trimmed.rfind('\n').map_or(trimmed, |i| &trimmed[i + 1..]);
            if last.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "file has no complete line to duplicate",
                ));
            }
            let mut line = last.to_owned();
            line.push('\n');
            file.seek(SeekFrom::End(0))?;
            file.write_all(line.as_bytes())?;
        }
        DiskFault::FlipBits { offset, mask } => {
            let len = file.seek(SeekFrom::End(0))?;
            if offset >= len {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("flip offset {offset} is past the end ({len} bytes)"),
                ));
            }
            let mut byte = [0u8; 1];
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut byte)?;
            byte[0] ^= mask;
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&byte)?;
        }
        DiskFault::AppendGarbage { len, seed } => {
            let mut rng = SplitMix64::new(seed);
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            file.seek(SeekFrom::End(0))?;
            file.write_all(&bytes)?;
        }
    }
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ascend-faults-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.bin"))
    }

    #[test]
    fn unfaulted_file_behaves_like_a_file() {
        let path = tempfile("clean");
        let mut file = FaultyFile::create(&path).unwrap();
        file.write_all(b"hello").unwrap();
        DiskFile::sync_data(&mut file).unwrap();
        file.seek(SeekFrom::Start(0)).unwrap();
        let mut back = String::new();
        file.read_to_string(&mut back).unwrap();
        assert_eq!(back, "hello");
        assert_eq!(file.bytes_written(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_budget_tears_the_spanning_write() {
        let path = tempfile("enospc");
        let mut file = FaultyFile::create(&path).unwrap().fail_writes_after(8);
        let err = file.write_all(b"0123456789abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The torn prefix reached the file: exactly the budget.
        assert_eq!(std::fs::read(&path).unwrap(), b"01234567");
        // Every later write fails immediately.
        assert!(file.write_all(b"x").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_writes_bound_each_call_without_erroring() {
        let path = tempfile("short");
        let mut file = FaultyFile::create(&path).unwrap().short_writes(3);
        assert_eq!(file.write(b"abcdefgh").unwrap(), 3);
        // write_all loops and still lands everything.
        file.write_all(b"ijk").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abcijk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_refusal_fails_sync_but_not_writes() {
        let path = tempfile("fsync");
        let mut file = FaultyFile::create(&path).unwrap().refuse_fsync();
        file.write_all(b"data").unwrap();
        assert!(DiskFile::sync_data(&mut file).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn at_rest_faults_corrupt_as_described() {
        let path = tempfile("atrest");
        std::fs::write(&path, "aaaa\nbbbb\ncccc\n").unwrap();
        corrupt_file(&path, DiskFault::TruncateTailBytes(3)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "aaaa\nbbbb\ncc");
        std::fs::write(&path, "aaaa\nbbbb\ncccc\n").unwrap();
        corrupt_file(&path, DiskFault::DropTailLines(2)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "aaaa\n");
        std::fs::write(&path, "aaaa\nbbbb\n").unwrap();
        corrupt_file(&path, DiskFault::DuplicateTailLine).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "aaaa\nbbbb\nbbbb\n");
        corrupt_file(&path, DiskFault::FlipBits { offset: 0, mask: 0x01 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], b'a' ^ 0x01);
        let before = std::fs::read(&path).unwrap().len();
        corrupt_file(&path, DiskFault::AppendGarbage { len: 7, seed: 42 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), before + 7);
        // Determinism: the same seed appends the same garbage.
        let a = std::fs::read(&path).unwrap();
        corrupt_file(&path, DiskFault::AppendGarbage { len: 7, seed: 42 }).unwrap();
        let b = std::fs::read(&path).unwrap();
        assert_eq!(a[a.len() - 7..], b[b.len() - 7..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flip_past_end_is_invalid_input() {
        let path = tempfile("flip-oob");
        std::fs::write(&path, "ab").unwrap();
        let err = corrupt_file(&path, DiskFault::FlipBits { offset: 10, mask: 0xFF }).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }
}
