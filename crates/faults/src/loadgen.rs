//! Seeded open-loop load generation and chaos operator wrappers.
//!
//! A service's failure modes live in its *arrival process*, not in any
//! single request: queues only grow when arrivals outpace service, and
//! sheds only happen under bursts. [`LoadProfile`] turns a seed into a
//! deterministic Poisson arrival schedule (optionally with periodic
//! bursts), so soak tests can replay the exact same overload pattern on
//! every run. The operator wrappers compose the crate's existing fault
//! surface with that traffic: [`FaultedOperator`] routes a
//! [`FaultPlan`](crate::FaultPlan)'s kernel mutations through an
//! operator's build stage, and [`PanicOperator`] arms a
//! [`PanicSwitch`](crate::PanicSwitch) behind one, so a stream of
//! requests can carry a controlled fraction of poison.

use crate::{FaultPlan, PanicSwitch, SplitMix64};
use ascend_arch::ChipSpec;
use ascend_isa::{IsaError, Kernel};
use ascend_ops::{Operator, OptFlags};
use std::time::Duration;

/// A periodic burst riding on top of the mean arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Distance between burst starts.
    pub period: Duration,
    /// How long each burst lasts (clamped to the period).
    pub length: Duration,
    /// Rate multiplier while inside a burst (≥ 1 for an overload spike).
    pub multiplier: f64,
}

/// One scheduled request of a generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Offset from the start of the run at which to submit.
    pub at: Duration,
    /// Whether this request is interactive-class (vs. sweep-class).
    pub interactive: bool,
    /// A deterministic per-arrival random draw, for the caller to derive
    /// operator shapes or fault decisions without re-seeding.
    pub draw: u64,
}

/// A seeded open-loop arrival process: Poisson arrivals at a mean rate,
/// optionally spiked by a periodic [`Burst`]. The schedule is a pure
/// function of the profile — same seed, same arrivals, byte for byte.
///
/// # Examples
///
/// ```
/// use ascend_faults::LoadProfile;
/// use std::time::Duration;
///
/// let profile = LoadProfile::new(42, 200.0, Duration::from_millis(500));
/// let a = profile.schedule();
/// let b = profile.schedule();
/// assert_eq!(a, b, "the schedule is deterministic");
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Seed of the inter-arrival and classification draws.
    pub seed: u64,
    /// Mean arrival rate outside bursts, in requests per second.
    pub mean_rate_hz: f64,
    /// Optional periodic overload spike.
    pub burst: Option<Burst>,
    /// Fraction of arrivals classified interactive (the rest are sweep).
    pub interactive_fraction: f64,
    /// Length of the generated schedule.
    pub duration: Duration,
}

impl LoadProfile {
    /// A burst-free profile at `mean_rate_hz` for `duration`.
    #[must_use]
    pub fn new(seed: u64, mean_rate_hz: f64, duration: Duration) -> Self {
        assert!(
            mean_rate_hz.is_finite() && mean_rate_hz > 0.0,
            "mean rate must be finite and positive"
        );
        LoadProfile { seed, mean_rate_hz, burst: None, interactive_fraction: 0.5, duration }
    }

    /// Adds a periodic burst: every `period`, the rate is multiplied by
    /// `multiplier` for `length`.
    #[must_use]
    pub fn with_burst(mut self, period: Duration, length: Duration, multiplier: f64) -> Self {
        assert!(multiplier.is_finite() && multiplier > 0.0, "multiplier must be positive");
        assert!(!period.is_zero(), "burst period must be non-zero");
        self.burst = Some(Burst { period, length: length.min(period), multiplier });
        self
    }

    /// Sets the interactive fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_interactive_fraction(mut self, fraction: f64) -> Self {
        self.interactive_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The instantaneous arrival rate at offset `at`.
    #[must_use]
    pub fn rate_at(&self, at: Duration) -> f64 {
        match &self.burst {
            Some(burst) => {
                let phase = at.as_secs_f64() % burst.period.as_secs_f64();
                if phase < burst.length.as_secs_f64() {
                    self.mean_rate_hz * burst.multiplier
                } else {
                    self.mean_rate_hz
                }
            }
            None => self.mean_rate_hz,
        }
    }

    /// Generates the arrival schedule: exponential inter-arrival times
    /// at the (possibly burst-inflated) instantaneous rate, in
    /// ascending order, ending before
    /// [`duration`](LoadProfile::duration).
    #[must_use]
    pub fn schedule(&self) -> Vec<Arrival> {
        let mut rng = SplitMix64::new(self.seed);
        let mut arrivals = Vec::new();
        let mut now = 0.0f64;
        let horizon = self.duration.as_secs_f64();
        loop {
            let rate = self.rate_at(Duration::from_secs_f64(now));
            // Inverse-transform sample of Exp(rate); 1-u keeps ln away
            // from zero.
            let gap = -(1.0 - rng.unit_f64()).ln() / rate;
            now += gap;
            if now >= horizon {
                return arrivals;
            }
            arrivals.push(Arrival {
                at: Duration::from_secs_f64(now),
                interactive: rng.chance(self.interactive_fraction),
                draw: rng.next_u64(),
            });
        }
    }
}

/// An operator whose generated kernel is corrupted by a
/// [`FaultPlan`](crate::FaultPlan)'s **kernel mutations** (dropped or
/// duplicated `set_flag`s, truncation) before it reaches the validator.
///
/// Timing faults (bandwidth, latency jitter) live in the simulator, not
/// the kernel, so they do not compose through this wrapper — a plan that
/// is timing-only leaves the kernel untouched. The wrapper's debug
/// rendering includes the plan, so its cache identity is distinct from
/// the clean operator's: a corrupted run can never poison the clean
/// entry.
#[derive(Debug)]
pub struct FaultedOperator {
    inner: Box<dyn Operator>,
    plan: FaultPlan,
}

impl FaultedOperator {
    /// Wraps `inner` so every build passes through `plan`'s kernel
    /// mutations.
    #[must_use]
    pub fn new(inner: Box<dyn Operator>, plan: FaultPlan) -> Self {
        FaultedOperator { inner, plan }
    }
}

impl Operator for FaultedOperator {
    fn name(&self) -> String {
        format!("{}+faults", self.inner.name())
    }

    fn flags(&self) -> OptFlags {
        self.inner.flags()
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(FaultedOperator {
            inner: self.inner.with_flags_dyn(flags),
            plan: self.plan.clone(),
        })
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let kernel = self.inner.build(chip)?;
        Ok(self.plan.apply_to_kernel(&kernel))
    }
}

/// An operator that panics in its build stage once a shared
/// [`PanicSwitch`](crate::PanicSwitch) runs out of passes — the
/// deterministic way to inject a worker panic into a stream of service
/// requests.
#[derive(Debug)]
pub struct PanicOperator {
    inner: Box<dyn Operator>,
    switch: PanicSwitch,
}

impl PanicOperator {
    /// Wraps `inner`; each build ticks `switch` first (clones of the
    /// switch share the countdown).
    #[must_use]
    pub fn new(inner: Box<dyn Operator>, switch: PanicSwitch) -> Self {
        PanicOperator { inner, switch }
    }
}

impl Operator for PanicOperator {
    fn name(&self) -> String {
        format!("{}+panic", self.inner.name())
    }

    fn flags(&self) -> OptFlags {
        self.inner.flags()
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(PanicOperator {
            inner: self.inner.with_flags_dyn(flags),
            switch: self.switch.clone(),
        })
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        self.switch.tick();
        self.inner.build(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::AddRelu;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let profile = LoadProfile::new(7, 500.0, Duration::from_millis(200))
            .with_burst(Duration::from_millis(50), Duration::from_millis(10), 4.0)
            .with_interactive_fraction(0.25);
        let a = profile.schedule();
        assert_eq!(a, profile.schedule());
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be ascending");
        }
        assert!(a.iter().all(|arr| arr.at < profile.duration));
    }

    #[test]
    fn mean_rate_is_roughly_respected() {
        let profile = LoadProfile::new(11, 1000.0, Duration::from_secs(2));
        let n = profile.schedule().len() as f64;
        // 2000 expected arrivals; Poisson sd is ~45, so ±20% is generous.
        assert!((1600.0..2400.0).contains(&n), "expected ~2000 arrivals, got {n}");
    }

    #[test]
    fn bursts_raise_the_local_rate() {
        let base = LoadProfile::new(13, 200.0, Duration::from_secs(1));
        let bursty =
            base.clone().with_burst(Duration::from_millis(100), Duration::from_millis(50), 8.0);
        assert!(bursty.schedule().len() > 2 * base.schedule().len());
        assert!(bursty.rate_at(Duration::from_millis(10)) > base.rate_at(Duration::ZERO));
        assert_eq!(bursty.rate_at(Duration::from_millis(60)), 200.0, "outside the burst window");
    }

    #[test]
    fn interactive_fraction_is_honored() {
        let all =
            LoadProfile::new(17, 500.0, Duration::from_secs(1)).with_interactive_fraction(1.0);
        assert!(all.schedule().iter().all(|a| a.interactive));
        let none =
            LoadProfile::new(17, 500.0, Duration::from_secs(1)).with_interactive_fraction(0.0);
        assert!(none.schedule().iter().all(|a| !a.interactive));
    }

    #[test]
    fn faulted_operator_mutates_the_kernel_distinctly() {
        let chip = ChipSpec::training();
        let clean = AddRelu::new(1 << 14);
        let clean_len = clean.build(&chip).unwrap().len();
        let faulted =
            FaultedOperator::new(Box::new(AddRelu::new(1 << 14)), FaultPlan::new(3).truncate_to(2));
        assert_eq!(faulted.build(&chip).unwrap().len(), 2, "truncation must reach the kernel");
        assert_ne!(clean_len, 2);
        assert_ne!(
            faulted.fingerprint(),
            clean.fingerprint(),
            "a faulted operator must have its own cache identity"
        );
        assert!(faulted.name().ends_with("+faults"));
    }

    #[test]
    fn timing_only_plan_leaves_the_kernel_untouched() {
        let chip = ChipSpec::training();
        let clean_len = AddRelu::new(1 << 14).build(&chip).unwrap().len();
        let wrapped = FaultedOperator::new(
            Box::new(AddRelu::new(1 << 14)),
            FaultPlan::new(5).with_latency_jitter(0.5),
        );
        assert_eq!(wrapped.build(&chip).unwrap().len(), clean_len);
    }

    #[test]
    fn panic_operator_fires_on_schedule() {
        let chip = ChipSpec::training();
        let op = PanicOperator::new(Box::new(AddRelu::new(1 << 12)), PanicSwitch::after(2));
        assert!(op.build(&chip).is_ok());
        assert!(op.build(&chip).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op.build(&chip)));
        assert!(caught.is_err(), "the third build must panic");
    }
}
