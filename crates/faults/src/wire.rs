//! Seeded byte-level fault injection for the framed worker wire protocol.
//!
//! The pipeline crate frames every parent↔worker exchange (jobs, outcomes,
//! heartbeats) as self-delimiting byte images. This module supplies a
//! transport-agnostic fault vocabulary that operates on **whole frame
//! images** — it deliberately knows nothing about the frame layout beyond
//! "the caller hands me one frame at a time". That keeps the dependency
//! arrow pointing the right way: the pipeline depends on this crate, never
//! the reverse.
//!
//! A [`WireFaultPlan`] expands one SplitMix64 seed into a deterministic set
//! of [`WireFaultEvent`]s. A [`FaultyTransport`] turns the plan into a pair
//! of shared [`WireShaper`]s (one per direction) for a single shard. The
//! shapers are intended to be held by the *supervisor* and shared across
//! worker respawns so each scheduled event fires at most once globally —
//! a torn stream kills one connection, not every future respawn.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::rng::SplitMix64;

/// Which side of the pipe a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WireDirection {
    /// Parent → worker (job frames written to the child's stdin).
    ToWorker,
    /// Worker → parent (outcome/heartbeat frames read from the child's stdout).
    FromWorker,
}

impl fmt::Display for WireDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDirection::ToWorker => write!(f, "to-worker"),
            WireDirection::FromWorker => write!(f, "from-worker"),
        }
    }
}

/// One byte-level fault applied to a single frame image in flight.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireFault {
    /// Ship only the first `keep` bytes of the frame, then cut the stream
    /// (the receiver observes a short write / EOF mid-frame).
    Tear {
        /// Number of leading bytes that still make it onto the wire.
        keep: u32,
    },
    /// Flip a single bit somewhere in the frame image (header, payload, or
    /// digest — the offset is reduced modulo the frame length).
    BitFlip {
        /// Absolute bit index; reduced modulo `len * 8` at apply time.
        bit: u64,
    },
    /// Ship the frame twice back to back.
    Duplicate,
    /// Hold the frame and ship it after the next frame (a reorder); if no
    /// later frame arrives the held frame is lost with the connection.
    Reorder,
    /// Sleep before shipping the frame — long stalls trip the receiver's
    /// heartbeat/wall-clock supervision.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Prepend `len` bytes of seeded garbage (never a valid frame magic)
    /// ahead of the intact frame.
    Garbage {
        /// Number of garbage bytes interleaved ahead of the frame.
        len: u32,
    },
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFault::Tear { keep } => write!(f, "tear(keep={keep})"),
            WireFault::BitFlip { bit } => write!(f, "bit-flip(bit={bit})"),
            WireFault::Duplicate => write!(f, "duplicate"),
            WireFault::Reorder => write!(f, "reorder"),
            WireFault::Stall { millis } => write!(f, "stall({millis}ms)"),
            WireFault::Garbage { len } => write!(f, "garbage({len}B)"),
        }
    }
}

/// A fault scheduled against the `nth` countable frame crossing one shard's
/// pipe in one direction.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireFaultEvent {
    /// Shard (or sandbox worker slot) the fault targets.
    pub shard: usize,
    /// Pipe direction the fault applies to.
    pub direction: WireDirection,
    /// Zero-based index of the countable frame the fault fires on.
    /// Heartbeat frames never advance the count — their cadence is
    /// timing-dependent and would break seed-replay determinism.
    pub nth: u64,
    /// The byte-level fault to apply.
    pub fault: WireFault,
}

impl fmt::Display for WireFaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire shard={} {} frame#{} {}", self.shard, self.direction, self.nth, self.fault)
    }
}

/// A deterministic, seed-derived collection of wire faults.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireFaultPlan {
    /// Seed the plan (and its shapers' garbage bytes) derive from.
    pub seed: u64,
    /// The scheduled fault events.
    pub events: Vec<WireFaultEvent>,
}

impl WireFaultPlan {
    /// Builds a plan from an explicit event list (used by replay and by
    /// [`ChaosSchedule`](crate::ChaosSchedule) subsets).
    pub fn from_events(seed: u64, events: Vec<WireFaultEvent>) -> Self {
        WireFaultPlan { seed, events }
    }

    /// Expands `count` random fault events across `shards` shards and both
    /// directions from one seed. Stalls draw up to `stall_ms` milliseconds;
    /// pick that above the receiver's heartbeat timeout to guarantee the
    /// stall is observable as `WorkerHung`.
    pub fn expand(seed: u64, shards: usize, count: usize, stall_ms: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5749_5245_5741_5645); // "WIREWAVE"
        let events = (0..count).map(|_| random_event(&mut rng, shards, stall_ms)).collect();
        WireFaultPlan { seed, events }
    }

    /// Returns the shaper for one shard/direction pair, seeded so its
    /// garbage bytes are reproducible. Events targeting other shards or the
    /// other direction are ignored by the shaper.
    pub fn shaper(&self, shard: usize, direction: WireDirection) -> WireShaper {
        let dir_salt = match direction {
            WireDirection::ToWorker => 0x544F_u64,
            WireDirection::FromWorker => 0x4652_u64,
        };
        let faults = self
            .events
            .iter()
            .filter(|event| event.shard == shard && event.direction == direction)
            .map(|event| (event.nth, event.fault))
            .collect();
        WireShaper {
            faults,
            sent: 0,
            held: None,
            rng: SplitMix64::new(self.seed ^ dir_salt ^ (shard as u64).wrapping_mul(0x9E37)),
        }
    }
}

/// Draws one random [`WireFaultEvent`] from the generator stream.
fn random_event(rng: &mut SplitMix64, shards: usize, stall_ms: u64) -> WireFaultEvent {
    let shard = rng.below(shards.max(1) as u64) as usize;
    let direction =
        if rng.chance(0.5) { WireDirection::ToWorker } else { WireDirection::FromWorker };
    // Early frames so faults actually fire inside short chaos windows.
    let nth = rng.below(4);
    let fault = match rng.below(6) {
        0 => WireFault::Tear { keep: rng.below(64) as u32 },
        1 => WireFault::BitFlip { bit: rng.below(4096) },
        2 => WireFault::Duplicate,
        3 => WireFault::Reorder,
        4 => WireFault::Stall { millis: stall_ms.max(1) },
        _ => WireFault::Garbage { len: 8 + rng.below(56) as u32 },
    };
    WireFaultEvent { shard, direction, nth, fault }
}

/// What a transport must do with one shaped frame: optionally sleep, write
/// the chunks in order, and optionally cut the connection afterwards.
///
/// `cut` applies to the **connection**, never to the shaper — a respawned
/// worker gets a fresh, healthy stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAction {
    /// Sleep this long before writing anything (performed by the caller,
    /// outside any lock).
    pub stall: Option<Duration>,
    /// Byte chunks to ship, in order.
    pub chunks: Vec<Vec<u8>>,
    /// Close the stream after shipping the chunks.
    pub cut: bool,
}

impl WireAction {
    fn pass(frame: Vec<u8>) -> Self {
        WireAction { stall: None, chunks: vec![frame], cut: false }
    }
}

/// Stateful per-direction frame shaper. Feed it whole frame images via
/// [`shape`](WireShaper::shape); it applies any fault scheduled for that
/// frame index and returns the bytes to put on the wire.
#[derive(Debug)]
pub struct WireShaper {
    faults: Vec<(u64, WireFault)>,
    sent: u64,
    held: Option<Vec<u8>>,
    rng: SplitMix64,
}

impl WireShaper {
    /// A shaper with exactly one fault armed for the first countable frame.
    /// Used by the hostile-mode facade and tests.
    pub fn single(fault: WireFault) -> Self {
        WireShaper {
            faults: vec![(0, fault)],
            sent: 0,
            held: None,
            rng: SplitMix64::new(0x0511_6C3F_AC3D_0001),
        }
    }

    /// Shapes one frame image. `countable` must be false for heartbeat
    /// frames: they pass through un-faulted and do not advance the frame
    /// counter (their cadence is wall-clock dependent), but they still
    /// release a frame held by a pending [`WireFault::Reorder`].
    pub fn shape(&mut self, frame: Vec<u8>, countable: bool) -> WireAction {
        let fault = if countable {
            let nth = self.sent;
            self.sent += 1;
            self.faults.iter().find(|(at, _)| *at == nth).map(|(_, fault)| *fault)
        } else {
            None
        };
        let mut action = match fault {
            None => WireAction::pass(frame),
            Some(WireFault::Tear { keep }) => {
                let keep = (keep as usize).min(frame.len());
                WireAction { stall: None, chunks: vec![frame[..keep].to_vec()], cut: true }
            }
            Some(WireFault::BitFlip { bit }) => {
                let mut frame = frame;
                if !frame.is_empty() {
                    let bit = (bit % (frame.len() as u64 * 8)) as usize;
                    frame[bit / 8] ^= 1 << (bit % 8);
                }
                WireAction::pass(frame)
            }
            Some(WireFault::Duplicate) => {
                WireAction { stall: None, chunks: vec![frame.clone(), frame], cut: false }
            }
            Some(WireFault::Reorder) => {
                // Ship any previously held frame, hold this one for later.
                let mut action = WireAction { stall: None, chunks: Vec::new(), cut: false };
                if let Some(prior) = self.held.take() {
                    action.chunks.push(prior);
                }
                self.held = Some(frame);
                return action;
            }
            Some(WireFault::Stall { millis }) => WireAction {
                stall: Some(Duration::from_millis(millis)),
                chunks: vec![frame],
                cut: false,
            },
            Some(WireFault::Garbage { len }) => WireAction {
                stall: None,
                chunks: vec![self.garbage(len as usize), frame],
                cut: false,
            },
        };
        // A held (reordered) frame ships *after* the current frame — unless
        // the stream is being cut, in which case it dies with the pipe.
        if let Some(prior) = self.held.take() {
            if !action.cut {
                action.chunks.push(prior);
            }
        }
        action
    }

    /// Seeded garbage that can never be mistaken for a frame start: the
    /// first four bytes are forced to `XXXX`, which is not the frame magic.
    fn garbage(&mut self, len: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; len.max(4)];
        bytes[..4].copy_from_slice(b"XXXX");
        for byte in bytes.iter_mut().skip(4) {
            *byte = self.rng.next_u64() as u8;
        }
        bytes
    }
}

/// Both-direction shapers for one shard's pipe, cheap to clone and share.
///
/// The supervisor holds this across worker respawns: a scheduled event is
/// consumed the first (and only) time its frame index comes up, no matter
/// how many processes have occupied the slot since.
#[derive(Debug, Clone)]
pub struct FaultyTransport {
    to_worker: Arc<Mutex<WireShaper>>,
    from_worker: Arc<Mutex<WireShaper>>,
}

impl FaultyTransport {
    /// Builds the shaper pair for `shard` from a plan.
    pub fn new(plan: &WireFaultPlan, shard: usize) -> Self {
        FaultyTransport {
            to_worker: Arc::new(Mutex::new(plan.shaper(shard, WireDirection::ToWorker))),
            from_worker: Arc::new(Mutex::new(plan.shaper(shard, WireDirection::FromWorker))),
        }
    }

    /// Shared shaper for the parent → worker direction.
    pub fn to_worker(&self) -> Arc<Mutex<WireShaper>> {
        Arc::clone(&self.to_worker)
    }

    /// Shared shaper for the worker → parent direction.
    pub fn from_worker(&self) -> Arc<Mutex<WireShaper>> {
        Arc::clone(&self.from_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8, len: usize) -> Vec<u8> {
        vec![tag; len]
    }

    #[test]
    fn plan_expansion_is_deterministic() {
        let a = WireFaultPlan::expand(42, 3, 8, 500);
        let b = WireFaultPlan::expand(42, 3, 8, 500);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 8);
        let c = WireFaultPlan::expand(43, 3, 8, 500);
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn clean_shaper_passes_frames_through() {
        let plan = WireFaultPlan::from_events(1, Vec::new());
        let mut shaper = plan.shaper(0, WireDirection::ToWorker);
        let action = shaper.shape(frame(7, 32), true);
        assert_eq!(action, WireAction::pass(frame(7, 32)));
    }

    #[test]
    fn tear_ships_prefix_and_cuts() {
        let mut shaper = WireShaper::single(WireFault::Tear { keep: 5 });
        let action = shaper.shape(frame(9, 32), true);
        assert_eq!(action.chunks, vec![frame(9, 5)]);
        assert!(action.cut);
        // The cut is per-connection: the shaper itself keeps passing frames
        // so a respawned worker gets a healthy stream.
        let next = shaper.shape(frame(9, 32), true);
        assert!(!next.cut);
        assert_eq!(next.chunks, vec![frame(9, 32)]);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut shaper = WireShaper::single(WireFault::BitFlip { bit: 12345 });
        let original = frame(0xAA, 64);
        let action = shaper.shape(original.clone(), true);
        let shaped = &action.chunks[0];
        let differing: u32 =
            original.iter().zip(shaped.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(differing, 1);
    }

    #[test]
    fn duplicate_ships_twice() {
        let mut shaper = WireShaper::single(WireFault::Duplicate);
        let action = shaper.shape(frame(3, 16), true);
        assert_eq!(action.chunks, vec![frame(3, 16), frame(3, 16)]);
    }

    #[test]
    fn reorder_holds_then_releases_after_next_frame() {
        let mut shaper = WireShaper::single(WireFault::Reorder);
        let first = shaper.shape(frame(1, 8), true);
        assert!(first.chunks.is_empty(), "reordered frame must be held");
        let second = shaper.shape(frame(2, 8), true);
        assert_eq!(
            second.chunks,
            vec![frame(2, 8), frame(1, 8)],
            "held frame ships after the successor"
        );
    }

    #[test]
    fn heartbeats_do_not_consume_scheduled_faults() {
        let mut shaper = WireShaper::single(WireFault::Duplicate);
        let hb = shaper.shape(frame(3, 11), false);
        assert_eq!(hb.chunks.len(), 1, "heartbeats pass through unshaped");
        let job = shaper.shape(frame(1, 8), true);
        assert_eq!(job.chunks.len(), 2, "fault fires on first countable frame");
    }

    #[test]
    fn garbage_is_prepended_and_never_magic() {
        let mut shaper = WireShaper::single(WireFault::Garbage { len: 24 });
        let action = shaper.shape(frame(5, 8), true);
        assert_eq!(action.chunks.len(), 2);
        assert_eq!(&action.chunks[0][..4], b"XXXX");
        assert_eq!(action.chunks[0].len(), 24);
        assert_eq!(action.chunks[1], frame(5, 8));
    }

    #[test]
    fn stall_reports_duration() {
        let mut shaper = WireShaper::single(WireFault::Stall { millis: 700 });
        let action = shaper.shape(frame(5, 8), true);
        assert_eq!(action.stall, Some(Duration::from_millis(700)));
        assert_eq!(action.chunks, vec![frame(5, 8)]);
    }

    #[test]
    fn shapers_only_see_their_own_shard_and_direction() {
        let plan = WireFaultPlan::from_events(
            9,
            vec![WireFaultEvent {
                shard: 1,
                direction: WireDirection::FromWorker,
                nth: 0,
                fault: WireFault::Duplicate,
            }],
        );
        let mut other_shard = plan.shaper(0, WireDirection::FromWorker);
        assert_eq!(other_shard.shape(frame(1, 4), true).chunks.len(), 1);
        let mut other_dir = plan.shaper(1, WireDirection::ToWorker);
        assert_eq!(other_dir.shape(frame(1, 4), true).chunks.len(), 1);
        let mut target = plan.shaper(1, WireDirection::FromWorker);
        assert_eq!(target.shape(frame(1, 4), true).chunks.len(), 2);
    }

    #[test]
    fn transport_pair_shares_state_across_clones() {
        let plan = WireFaultPlan::from_events(
            3,
            vec![WireFaultEvent {
                shard: 0,
                direction: WireDirection::ToWorker,
                nth: 1,
                fault: WireFault::Tear { keep: 0 },
            }],
        );
        let transport = FaultyTransport::new(&plan, 0);
        let clone = transport.clone();
        // First connection consumes frame #0 cleanly.
        assert!(!transport.to_worker().lock().unwrap().shape(frame(1, 4), true).cut);
        // The clone observes the shared counter: its next frame is #1 → torn.
        assert!(clone.to_worker().lock().unwrap().shape(frame(1, 4), true).cut);
    }
}
