//! Operator-trait conformance: every operator in the library obeys the
//! same contract on both chips.

use ascend_arch::{ChipSpec, Component};
use ascend_isa::KernelStats;
use ascend_ops::*;
use ascend_sim::Simulator;

fn registry() -> Vec<Box<dyn Operator>> {
    const E: u64 = 1 << 15;
    vec![
        Box::new(AddRelu::new(E)),
        Box::new(Attention::new(256, 64)),
        Box::new(AvgPool::new(E / 8)),
        Box::new(Cast::new(E)),
        Box::new(Conv2d::new(E / 2, 288)),
        Box::new(Depthwise::new(E)),
        Box::new(Dropout::new(E)),
        Box::new(Elementwise::new(EltwiseKind::Add, E)),
        Box::new(Elementwise::new(EltwiseKind::Mul, E)),
        Box::new(Elementwise::new(EltwiseKind::AddN(4), E)),
        Box::new(Elementwise::new(EltwiseKind::RealDiv, E)),
        Box::new(Embedding::new(1 << 14, 64, 1024)),
        Box::new(FullyConnection::new(32, 256, 512)),
        Box::new(Gelu::new(E)),
        Box::new(LayerNorm::new(E)),
        Box::new(MatMul::new(128, 256, 128)),
        Box::new(MatMulAdd::new(128, 256, 128)),
        Box::new(BatchMatMul::new(2, 128, 128, 128)),
        Box::new(ReduceSum::new(E, 256)),
        Box::new(Softmax::new(E)),
        Box::new(TransData::new(E)),
    ]
}

#[test]
fn every_operator_builds_validates_and_simulates_on_both_chips() {
    for chip in [ChipSpec::training(), ChipSpec::inference()] {
        let sim = Simulator::new(chip.clone());
        for op in registry() {
            let kernel = op.build(&chip).unwrap_or_else(|e| panic!("{}: {e}", op.name()));
            ascend_isa::validate(&kernel, &chip).unwrap_or_else(|e| panic!("{}: {e}", op.name()));
            let trace = sim.simulate(&kernel).unwrap_or_else(|e| panic!("{}: {e}", op.name()));
            assert!(trace.total_cycles() > 0.0, "{}", op.name());
        }
    }
}

#[test]
fn names_are_stable_and_reflect_flags() {
    for op in registry() {
        let base_name = op.name();
        assert!(!base_name.is_empty());
        assert_eq!(op.flags(), OptFlags::new(), "{base_name} must default to baseline");
        let flagged = op.with_flags_dyn(OptFlags::new().pp(true));
        assert_eq!(flagged.flags(), OptFlags::new().pp(true), "{base_name}");
        assert!(
            flagged.name().contains("+pp"),
            "{}: flagged name must carry the suffix",
            flagged.name()
        );
        // Round-trip back to baseline.
        let back = flagged.with_flags_dyn(OptFlags::new());
        assert_eq!(back.name(), base_name);
    }
}

#[test]
fn rebuilding_yields_identical_kernels() {
    let chip = ChipSpec::training();
    for op in registry() {
        let a = op.build(&chip).unwrap();
        let b = op.build(&chip).unwrap();
        assert_eq!(a, b, "{} must build deterministically", op.name());
    }
}

#[test]
fn every_operator_touches_global_memory() {
    // All library operators are GM-to-GM computations: they must read or
    // write GM through some MTE.
    let chip = ChipSpec::training();
    for op in registry() {
        let kernel = op.build(&chip).unwrap();
        let stats = KernelStats::of(&kernel);
        let gm_traffic =
            stats.bytes_of_component(Component::MteGm) + stats.bytes_of_component(Component::MteUb);
        assert!(gm_traffic > 0, "{} moves no GM bytes", op.name());
    }
}

#[test]
fn all_flags_never_breaks_construction() {
    // OptFlags::all() is the optimizer's upper bound: every operator must
    // still build (flags it does not implement are ignored).
    let chip = ChipSpec::training();
    let sim = Simulator::new(chip.clone());
    for op in registry() {
        let maxed = op.with_flags_dyn(OptFlags::all());
        let kernel = maxed.build(&chip).unwrap_or_else(|e| panic!("{}: {e}", maxed.name()));
        let t_max = sim.simulate(&kernel).unwrap().total_cycles();
        let t_base = sim.simulate(&op.build(&chip).unwrap()).unwrap().total_cycles();
        assert!(
            t_max <= t_base * 1.05,
            "{}: all-flags should not regress materially ({t_max} vs {t_base})",
            op.name()
        );
    }
}
