//! The Depthwise convolution operator (paper, Section 5.2 / Figures 11–12).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder, Region};

/// Depthwise convolution: per-channel `Y = <X_window, W>` on the Cube.
///
/// Data flow per channel-block tile: input `GM → L1` (MTE-GM), weights
/// `GM → L1`, `L1 → L0A/L0B` (MTE-L1), Cube multiply-add, a Vector
/// post-op draining L0C into UB, and a *small* (~30 KB) `UB → GM` store.
///
/// The baseline stacks all four pathologies of the case study:
///
/// - the next tile's GM load is dispatched after the whole tile body
///   (*Adjusting Instruction Sequence* hoists it);
/// - a `pipe_barrier(PIPE_ALL)` ends every tile (*Removing Unnecessary
///   Synchronization* drops it);
/// - one L1 staging region is reused, so `GM → L1` of tile *i+1* collides
///   with `L1 → L0A` of tile *i* (*Ping-pong Policy* double-buffers it);
/// - the weights are re-transferred every tile (*Minimizing Redundant
///   Transfer* hoists them);
/// - each output store is a separate small transfer (*Increasing Transfer
///   Granularity* merges four tiles per store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Depthwise {
    /// Output elements across all channels.
    output_elements: u64,
    /// Kernel taps (k*k).
    taps: u64,
    /// Output elements per tile (the paper's ~30 KB stores).
    tile_out: u64,
    flags: OptFlags,
}

impl Depthwise {
    const ELEM_BYTES: u64 = 2;
    const WEIGHT_BYTES: u64 = 2048;
    /// Tiles merged into one store under ITG.
    const MERGE: u64 = 4;

    /// A depthwise convolution producing `output_elements` FP16 outputs
    /// with a 3×3 kernel.
    #[must_use]
    pub fn new(output_elements: u64) -> Self {
        Depthwise { output_elements, taps: 9, tile_out: 15 * 1024, flags: OptFlags::new() }
    }

    /// Overrides the kernel taps (e.g. 9 for 3×3).
    #[must_use]
    pub fn with_taps(mut self, taps: u64) -> Self {
        self.taps = taps.max(1);
        self
    }

    /// Overrides outputs per tile.
    #[must_use]
    pub fn with_tile(mut self, tile_out: u64) -> Self {
        self.tile_out = tile_out.max(1);
        self
    }

    /// Applies optimization flags (`ais`, `rus`, `pp`, `itg`, `mrt`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for Depthwise {
    fn name(&self) -> String {
        format!("depthwise{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        // Input per tile: the receptive field is ~2x the output for a 3x3
        // stride-1 window (halo included), capped well under L1/L0A.
        let in_tile_bytes = (self.tile_out * 2 * Self::ELEM_BYTES).min(64 * 1024);
        let out_tile_bytes = self.tile_out * Self::ELEM_BYTES;
        let tile_list: Vec<crate::Tile> = tiles(self.output_elements, self.tile_out).collect();
        let n_tiles = tile_list.len();

        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, in_tile_bytes * n_tiles as u64)?;
        let gm_w = alloc.alloc(Buffer::Gm, Self::WEIGHT_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.output_elements * Self::ELEM_BYTES)?;
        // L1 staging: single region (pathological) or ping-pong pair.
        let l1_regions: Vec<Region> = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::L1, in_tile_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::L1, in_tile_bytes)?]
        };
        let l1_w = alloc.alloc(Buffer::L1, Self::WEIGHT_BYTES)?;
        let l0a = alloc.alloc(Buffer::L0A, in_tile_bytes)?;
        let l0b = alloc.alloc(Buffer::L0B, Self::WEIGHT_BYTES)?;
        let l0c = alloc.alloc(Buffer::L0C, out_tile_bytes)?;
        // UB output staging: sized for one tile, or MERGE tiles under ITG.
        let merge = if self.flags.has_itg() { Self::MERGE } else { 1 };
        let ub_out = alloc.alloc(Buffer::Ub, out_tile_bytes * merge)?;
        let ub_idx = alloc.alloc(Buffer::Ub, 256)?;

        let mut b = KernelBuilder::new(self.name());
        let load_tile =
            |b: &mut KernelBuilder, index: usize, regions: &[Region]| -> Result<(), IsaError> {
                let src = gm_in.slice(index as u64 * in_tile_bytes, in_tile_bytes);
                let dst = regions[index % regions.len()];
                b.transfer(TransferPath::GmToL1, src, dst)?;
                Ok(())
            };

        // AIS: prefetch tile 0 before the loop so each iteration can hoist
        // the *next* tile's load to the top of its body.
        if self.flags.has_ais() {
            load_tile(&mut b, 0, &l1_regions)?;
        }
        let mut merged_bytes: u64 = 0;
        let mut merged_start: u64 = 0;
        for (i, tile) in tile_list.iter().enumerate() {
            let out_len = tile.len * Self::ELEM_BYTES;
            let l1_in = l1_regions[i % l1_regions.len()];

            // Scalar address arithmetic for the tile's windows: the
            // "intermediate instructions" of Figure 12 that delay the next
            // MTE-GM dispatch in the original code.
            let emit_scalar_control = |b: &mut KernelBuilder| {
                for _ in 0..12 {
                    b.compute(ComputeUnit::Scalar, Precision::Int32, 16, vec![], vec![ub_idx]);
                }
            };
            if self.flags.has_ais() {
                // Hoisted: issue the next tile's GM load before the
                // control arithmetic.
                if i + 1 < n_tiles {
                    load_tile(&mut b, i + 1, &l1_regions)?;
                }
                emit_scalar_control(&mut b);
            } else {
                emit_scalar_control(&mut b);
                load_tile(&mut b, i, &l1_regions)?;
            }
            // Weights: redundant per-tile transfer unless MRT.
            if !self.flags.has_mrt() || i == 0 {
                b.transfer(TransferPath::GmToL1, gm_w, l1_w)?;
            }
            b.sync(Component::MteGm, Component::MteL1);
            b.transfer(TransferPath::L1ToL0A, l1_in, l0a.slice(0, in_tile_bytes))?;
            b.transfer(TransferPath::L1ToL0B, l1_w, l0b)?;
            b.sync(Component::MteL1, Component::Cube);
            b.compute(
                ComputeUnit::Cube,
                Precision::Fp16,
                tile.len * self.taps * 2,
                vec![l0a.slice(0, in_tile_bytes), l0b],
                vec![l0c.slice(0, out_len)],
            );
            b.sync(Component::Cube, Component::Vector);
            // Vector drains L0C into the UB staging area.
            let ub_dst = ub_out.slice(merged_bytes, out_len);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                tile.len,
                vec![l0c.slice(0, out_len)],
                vec![ub_dst],
            );
            merged_bytes += out_len;
            let flush = (i as u64 + 1).is_multiple_of(merge) || i + 1 == n_tiles;
            if flush {
                b.sync(Component::Vector, Component::MteUb);
                b.transfer(
                    TransferPath::UbToGm,
                    ub_out.slice(0, merged_bytes),
                    gm_out.slice(merged_start, merged_bytes),
                )?;
                merged_start += merged_bytes;
                merged_bytes = 0;
            }
            // Excess synchronization unless RUS: the original code drops a
            // pipe_barrier(ALL) after every other tile.
            if !self.flags.has_rus() && i % 2 == 1 {
                b.barrier_all();
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    const OUT: u64 = 1 << 20;

    fn run(flags: OptFlags) -> (ChipSpec, ascend_profile::Profile, f64) {
        let chip = ChipSpec::training();
        let kernel = Depthwise::new(OUT).with_flags(flags).build(&chip).unwrap();
        let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let total = trace.total_cycles();
        (chip, profile, total)
    }

    #[test]
    fn builds_and_validates() {
        let chip = ChipSpec::training();
        for flags in [OptFlags::new(), OptFlags::new().ais(true).rus(true).pp(true).itg(true)] {
            let kernel = Depthwise::new(OUT).with_flags(flags).build(&chip).unwrap();
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn baseline_is_insufficient_parallelism() {
        let (chip, profile, _) = run(OptFlags::new());
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::InsufficientParallelism,
            "\n{}",
            analysis.summary()
        );
    }

    #[test]
    fn each_iteration_raises_peak_utilization() {
        let chain = [
            OptFlags::new(),
            OptFlags::new().ais(true),
            OptFlags::new().ais(true).rus(true),
            OptFlags::new().ais(true).rus(true).pp(true),
            OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true),
        ];
        let mut last_util = 0.0;
        for flags in chain {
            let (chip, profile, _) = run(flags);
            let util = analyze(&profile, &chip, &Thresholds::default()).peak_utilization();
            assert!(
                util >= last_util * 0.98,
                "utilization should not regress at {flags:?}: {last_util} -> {util}"
            );
            last_util = last_util.max(util);
        }
        assert!(
            last_util > 0.75,
            "fully optimized depthwise should near its bound, got {last_util}"
        );
    }

    #[test]
    fn fully_optimized_is_mte_gm_bound() {
        let (chip, profile, _) =
            run(OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true));
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::MteBound(Component::MteGm),
            "\n{}",
            analysis.summary()
        );
    }

    #[test]
    fn optimization_chain_speeds_up_monotonically_overall() {
        let (_, _, t_base) = run(OptFlags::new());
        let (_, _, t_full) = run(OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true));
        let speedup = t_base / t_full;
        assert!(speedup > 1.15, "the paper reports 1.26x for depthwise, got {speedup:.2}");
    }

    #[test]
    fn ping_pong_reduces_waiting_intervals() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let before = Depthwise::new(OUT)
            .with_flags(OptFlags::new().ais(true).rus(true))
            .build(&chip)
            .unwrap();
        let after = Depthwise::new(OUT)
            .with_flags(OptFlags::new().ais(true).rus(true).pp(true))
            .build(&chip)
            .unwrap();
        let t0 = sim.simulate(&before).unwrap();
        let t1 = sim.simulate(&after).unwrap();
        let w0 = t0.waiting_intervals(Component::MteGm, 10.0);
        let w1 = t1.waiting_intervals(Component::MteGm, 10.0);
        assert!(
            w1 < w0,
            "ping-pong must reduce MTE-GM waiting intervals (paper: 14 -> 3), got {w0} -> {w1}"
        );
    }

    #[test]
    fn itg_enlarges_stores_without_changing_bytes() {
        let chip = ChipSpec::training();
        let base = Depthwise::new(OUT).build(&chip).unwrap();
        let itg = Depthwise::new(OUT).with_flags(OptFlags::new().itg(true)).build(&chip).unwrap();
        let s0 = ascend_isa::KernelStats::of(&base);
        let s1 = ascend_isa::KernelStats::of(&itg);
        assert_eq!(
            s0.bytes_of_component(Component::MteUb),
            s1.bytes_of_component(Component::MteUb)
        );
        assert!(
            s1.instructions_per_queue[&Component::MteUb]
                < s0.instructions_per_queue[&Component::MteUb]
        );
    }
}
