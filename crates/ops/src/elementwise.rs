//! Generic element-wise vector operators (Mul, Add, AddN, RealDiv, …).
//!
//! These are the operators the PanGu-α study finds dominated by
//! insufficient parallelism (Section 6.2.1); their shared structure is
//! load → vector compute → store per tile.

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder, Region};
use serde::{Deserialize, Serialize};

/// Which element-wise operator to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EltwiseKind {
    /// `y = a + b`.
    Add,
    /// `y = x * c` (tensor-scalar multiply, one input tensor).
    Mul,
    /// `y = x_1 + … + x_n` over `n` inputs.
    AddN(u32),
    /// `y = c / x` (division costs extra vector micro-ops).
    RealDiv,
}

impl EltwiseKind {
    /// Operator name, e.g. `"mul"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EltwiseKind::Add => "add",
            EltwiseKind::Mul => "mul",
            EltwiseKind::AddN(_) => "addn",
            EltwiseKind::RealDiv => "realdiv",
        }
    }

    /// Number of input tensors.
    #[must_use]
    pub fn inputs(&self) -> u32 {
        match self {
            EltwiseKind::Mul | EltwiseKind::RealDiv => 1,
            EltwiseKind::Add => 2,
            EltwiseKind::AddN(n) => (*n).max(2),
        }
    }

    /// Vector operations per output element.
    #[must_use]
    pub fn ops_per_element(&self) -> u64 {
        match self {
            EltwiseKind::Add | EltwiseKind::Mul => 1,
            EltwiseKind::AddN(n) => u64::from((*n).max(2)) - 1,
            // Division is iterated (Newton steps) on the vector unit.
            EltwiseKind::RealDiv => 4,
        }
    }
}

/// A tiled element-wise operator over FP16 tensors.
///
/// Meaningful flags: `rsd` (separate result buffer) and `pp`
/// (double-buffered input staging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elementwise {
    kind: EltwiseKind,
    elements: u64,
    tile_elements: u64,
    precision: Precision,
    flags: OptFlags,
}

impl Elementwise {
    const ELEM_BYTES: u64 = 2;

    /// Creates an element-wise operator over `elements` FP16 values.
    #[must_use]
    pub fn new(kind: EltwiseKind, elements: u64) -> Self {
        Elementwise {
            kind,
            elements,
            tile_elements: 8 * 1024,
            precision: Precision::Fp16,
            flags: OptFlags::new(),
        }
    }

    /// Overrides the tile size (elements per UB tile).
    #[must_use]
    pub fn with_tile(mut self, tile_elements: u64) -> Self {
        self.tile_elements = tile_elements.max(1);
        self
    }

    /// Applies optimization flags.
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    /// The operator kind.
    #[must_use]
    pub fn kind(&self) -> EltwiseKind {
        self.kind
    }

    /// Total output elements.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }
}

impl Operator for Elementwise {
    fn name(&self) -> String {
        format!("{}{}", self.kind.name(), self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let inputs = self.kind.inputs() as u64;
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in: Vec<Region> = (0..inputs)
            .map(|_| alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES))
            .collect::<Result<_, _>>()?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        // Input staging: one region per input; doubled under ping-pong.
        let buffers_per_input = if self.flags.has_pp() { 2 } else { 1 };
        let ub_in: Vec<Vec<Region>> = (0..inputs)
            .map(|_| {
                (0..buffers_per_input)
                    .map(|_| alloc.alloc(Buffer::Ub, tile_bytes))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;
        let ub_res = if self.flags.has_rsd() {
            Some(alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?)
        } else {
            None
        };

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let byte_off = tile.offset * Self::ELEM_BYTES;
            let byte_len = tile.len * Self::ELEM_BYTES;
            let parity = (tile.index % 2) as usize;
            let stage = parity % buffers_per_input;
            let in_regions: Vec<Region> =
                (0..inputs as usize).map(|j| ub_in[j][stage].slice(0, byte_len)).collect();
            let out_region = match &ub_res {
                Some(pair) => pair[parity].slice(0, byte_len),
                None => in_regions[0],
            };
            for (j, dst) in in_regions.iter().enumerate() {
                b.transfer(TransferPath::GmToUb, gm_in[j].slice(byte_off, byte_len), *dst)?;
            }
            b.sync(Component::MteGm, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                self.precision,
                tile.len * self.kind.ops_per_element(),
                in_regions.clone(),
                vec![out_region],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, out_region, gm_out.slice(byte_off, byte_len))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    const N: u64 = 1 << 19;

    fn build(kind: EltwiseKind, flags: OptFlags) -> (ChipSpec, Kernel) {
        let chip = ChipSpec::training();
        let kernel = Elementwise::new(kind, N).with_flags(flags).build(&chip).unwrap();
        (chip, kernel)
    }

    #[test]
    fn all_kinds_build_and_validate() {
        for kind in [EltwiseKind::Add, EltwiseKind::Mul, EltwiseKind::AddN(4), EltwiseKind::RealDiv]
        {
            let (chip, kernel) = build(kind, OptFlags::new());
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn op_counts_match_kind() {
        let (_, kernel) = build(EltwiseKind::AddN(4), OptFlags::new());
        let stats = KernelStats::of(&kernel);
        assert_eq!(stats.ops_of(ComputeUnit::Vector, Precision::Fp16), 3 * N);
        let (_, kernel) = build(EltwiseKind::Mul, OptFlags::new());
        let stats = KernelStats::of(&kernel);
        assert_eq!(stats.ops_of(ComputeUnit::Vector, Precision::Fp16), N);
    }

    #[test]
    fn addn_reads_all_inputs() {
        let (_, kernel) = build(EltwiseKind::AddN(4), OptFlags::new());
        let stats = KernelStats::of(&kernel);
        assert_eq!(stats.bytes_of_component(Component::MteGm), 4 * N * 2);
        assert_eq!(stats.bytes_of_component(Component::MteUb), N * 2);
    }

    #[test]
    fn rsd_improves_mul_like_the_paper() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let base = Elementwise::new(EltwiseKind::Mul, N).build(&chip).unwrap();
        let rsd = Elementwise::new(EltwiseKind::Mul, N)
            .with_flags(OptFlags::new().rsd(true))
            .build(&chip)
            .unwrap();
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&rsd).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(
            speedup > 1.1,
            "RSD should speed Mul up noticeably (paper: 1.34x), got {speedup:.2}"
        );
    }

    #[test]
    fn baseline_mul_suffers_insufficient_parallelism() {
        let (chip, kernel) = build(EltwiseKind::Mul, OptFlags::new());
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(analysis.bottleneck(), Bottleneck::InsufficientParallelism);
    }

    #[test]
    fn pp_stacks_on_rsd() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let rsd = Elementwise::new(EltwiseKind::Add, N)
            .with_flags(OptFlags::new().rsd(true))
            .build(&chip)
            .unwrap();
        let rsd_pp = Elementwise::new(EltwiseKind::Add, N)
            .with_flags(OptFlags::new().rsd(true).pp(true))
            .build(&chip)
            .unwrap();
        let t_rsd = sim.simulate(&rsd).unwrap().total_cycles();
        let t_both = sim.simulate(&rsd_pp).unwrap().total_cycles();
        assert!(t_both <= t_rsd * 1.01, "ping-pong must not hurt: {t_both} vs {t_rsd}");
    }
}
