//! Optimization flags shared by all operator generators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's optimizations an operator instance applies.
///
/// Each flag corresponds to one named strategy from Section 5; see the
/// [crate-level table](crate) for the mapping. Flags irrelevant to a
/// given operator are ignored by its generator.
///
/// # Examples
///
/// ```
/// use ascend_ops::OptFlags;
/// let flags = OptFlags::new().rsd(true).mrt(true);
/// assert!(flags.has_rsd() && flags.has_mrt() && !flags.has_pp());
/// assert_eq!(flags.suffix(), "+rsd+mrt");
/// assert_eq!(OptFlags::new().suffix(), "");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptFlags {
    rsd: bool,
    mrt: bool,
    ais: bool,
    rus: bool,
    pp: bool,
    itg: bool,
    aip: bool,
    fused: bool,
    tt: bool,
    ea: bool,
    lc: bool,
    ct: bool,
}

macro_rules! flag_accessors {
    ($($field:ident, $has:ident, $doc:literal;)*) => {
        $(
            #[doc = concat!("Sets the ", $doc, " flag.")]
            #[must_use]
            pub fn $field(mut self, on: bool) -> Self {
                self.$field = on;
                self
            }

            #[doc = concat!("Whether the ", $doc, " flag is set.")]
            #[must_use]
            pub fn $has(&self) -> bool {
                self.$field
            }
        )*
    };
}

impl OptFlags {
    /// No optimizations: the baseline implementation.
    #[must_use]
    pub fn new() -> Self {
        OptFlags::default()
    }

    /// Every optimization enabled (useful as a search upper bound).
    #[must_use]
    pub fn all() -> Self {
        OptFlags {
            rsd: true,
            mrt: true,
            ais: true,
            rus: true,
            pp: true,
            itg: true,
            aip: true,
            fused: true,
            tt: true,
            ea: true,
            lc: true,
            ct: true,
        }
    }

    flag_accessors! {
        rsd, has_rsd, "Reducing Spatial Dependency";
        mrt, has_mrt, "Minimizing Redundant Transfer";
        ais, has_ais, "Adjusting Instruction Sequence";
        rus, has_rus, "Removing Unnecessary Synchronization";
        pp, has_pp, "Ping-pong Policy";
        itg, has_itg, "Increasing Transfer Granularity";
        aip, has_aip, "Adjusting Instruction Parameter";
        fused, has_fused, "Operator Fusion";
        tt, has_tt, "Transfer Transformation";
        ea, has_ea, "Enhanced Algorithm";
        lc, has_lc, "Low-precision Calculation";
        ct, has_ct, "Computation Transformation";
    }

    /// A kernel-name suffix listing the enabled flags, e.g. `"+rsd+mrt"`.
    #[must_use]
    pub fn suffix(&self) -> String {
        let mut s = String::new();
        for (on, name) in [
            (self.rsd, "rsd"),
            (self.mrt, "mrt"),
            (self.ais, "ais"),
            (self.rus, "rus"),
            (self.pp, "pp"),
            (self.itg, "itg"),
            (self.aip, "aip"),
            (self.fused, "fused"),
            (self.tt, "tt"),
            (self.ea, "ea"),
            (self.lc, "lc"),
            (self.ct, "ct"),
        ] {
            if on {
                s.push('+');
                s.push_str(name);
            }
        }
        s
    }

    /// Number of enabled flags.
    #[must_use]
    pub fn count(&self) -> usize {
        [
            self.rsd, self.mrt, self.ais, self.rus, self.pp, self.itg, self.aip, self.fused,
            self.tt, self.ea, self.lc, self.ct,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

impl fmt::Display for OptFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            f.write_str("baseline")
        } else {
            f.write_str(self.suffix().trim_start_matches('+'))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setting() {
        let f = OptFlags::new().rsd(true).itg(true).rsd(false);
        assert!(!f.has_rsd());
        assert!(f.has_itg());
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn all_enables_everything() {
        assert_eq!(OptFlags::all().count(), 12);
        assert_eq!(OptFlags::new().count(), 0);
    }

    #[test]
    fn suffix_orders_flags_stably() {
        let f = OptFlags::new().mrt(true).rsd(true);
        assert_eq!(f.suffix(), "+rsd+mrt");
        assert_eq!(f.to_string(), "rsd+mrt");
        assert_eq!(OptFlags::new().to_string(), "baseline");
    }
}
