//! Tiling helpers shared by the operator generators.

use serde::{Deserialize, Serialize};

/// One tile of a 1-D iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Tile index.
    pub index: u64,
    /// Start offset in elements.
    pub offset: u64,
    /// Tile length in elements (the last tile may be short).
    pub len: u64,
}

/// Ceiling division.
///
/// # Examples
///
/// ```
/// use ascend_ops::ceil_div;
/// assert_eq!(ceil_div(10, 4), 3);
/// assert_eq!(ceil_div(8, 4), 2);
/// assert_eq!(ceil_div(0, 4), 0);
/// ```
#[must_use]
pub const fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Splits `total` elements into tiles of at most `tile` elements.
///
/// # Panics
///
/// Panics if `tile` is zero.
///
/// # Examples
///
/// ```
/// use ascend_ops::tiles;
/// let ts: Vec<_> = tiles(10, 4).collect();
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts[2].len, 2);
/// assert_eq!(ts.iter().map(|t| t.len).sum::<u64>(), 10);
/// ```
pub fn tiles(total: u64, tile: u64) -> impl Iterator<Item = Tile> {
    assert!(tile > 0, "tile size must be positive");
    (0..ceil_div(total, tile)).map(move |index| {
        let offset = index * tile;
        Tile { index, offset, len: tile.min(total - offset) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_exactly() {
        for (total, tile) in [(1u64, 1u64), (100, 7), (64, 64), (65, 64), (0, 8)] {
            let ts: Vec<Tile> = tiles(total, tile).collect();
            assert_eq!(ts.iter().map(|t| t.len).sum::<u64>(), total);
            for pair in ts.windows(2) {
                assert_eq!(
                    pair[0].offset + pair[0].len,
                    pair[1].offset,
                    "tiles must be contiguous"
                );
            }
            assert!(ts.iter().all(|t| t.len <= tile && t.len > 0));
        }
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_panics() {
        let _ = tiles(10, 0).count();
    }

    #[test]
    fn indices_are_sequential() {
        let ts: Vec<Tile> = tiles(20, 6).collect();
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(t.index, i as u64);
        }
    }
}
