//! Cube matrix-multiplication operators: MatMul, fused MatMul+Add,
//! BatchMatMul, and FullyConnection.

use crate::{ceil_div, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder, Region};

/// Shared GEMM tiling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GemmConfig {
    m: u64,
    k: u64,
    n: u64,
    bm: u64,
    bn: u64,
    kc: u64,
    precision: Precision,
    elem_bytes: u64,
}

impl GemmConfig {
    fn new(m: u64, k: u64, n: u64, flags: OptFlags) -> Self {
        let (precision, elem_bytes) =
            if flags.has_lc() { (Precision::Int8, 1) } else { (Precision::Fp16, 2) };
        GemmConfig { m, k, n, bm: 64.min(m), bn: 64.min(n), kc: 256.min(k), precision, elem_bytes }
    }
}

/// What happens to each output block after the Cube finishes it.
enum Drain {
    /// Plain store to GM, one transfer per block.
    Store,
    /// Vector-add a bias that already sits in UB, then store (operator
    /// fusion: saves the GM round trip of a separate Add).
    FusedAdd(Region),
    /// Accumulate `merge` blocks in UB, then store them as one transfer
    /// (Increasing Transfer Granularity).
    Merged(u64),
    /// Store each of the block's `bm` rows separately — the strided
    /// row-major writeout whose tiny granularity makes the MTE-UB
    /// inefficient (the FullyConnection pathology ITG fixes).
    RowStore,
}

/// Emits a full tiled GEMM into `b`. Returns the GM region holding C.
#[allow(clippy::too_many_arguments)]
fn emit_gemm(
    b: &mut KernelBuilder,
    alloc: &mut BufferAllocator,
    cfg: GemmConfig,
    flags: OptFlags,
    gm_a: Region,
    gm_b: Region,
    gm_c: Region,
    drain: &Drain,
) -> Result<(), IsaError> {
    let a_tile = cfg.bm * cfg.kc * cfg.elem_bytes;
    let b_tile = cfg.kc * cfg.bn * cfg.elem_bytes;
    let c_tile = cfg.bm * cfg.bn * cfg.elem_bytes;
    let l1_mark = alloc.mark(Buffer::L1);
    let l0a_mark = alloc.mark(Buffer::L0A);
    let l0b_mark = alloc.mark(Buffer::L0B);
    let l0c_mark = alloc.mark(Buffer::L0C);
    let l1_a: Vec<Region> = if flags.has_pp() {
        alloc.alloc_ping_pong(Buffer::L1, a_tile)?.to_vec()
    } else {
        vec![alloc.alloc(Buffer::L1, a_tile)?]
    };
    let l1_b: Vec<Region> = if flags.has_pp() {
        alloc.alloc_ping_pong(Buffer::L1, b_tile)?.to_vec()
    } else {
        vec![alloc.alloc(Buffer::L1, b_tile)?]
    };
    let l0a = alloc.alloc(Buffer::L0A, a_tile.max(b_tile).min(alloc.remaining(Buffer::L0A)))?;
    let l0b = alloc.alloc(Buffer::L0B, a_tile.max(b_tile).min(alloc.remaining(Buffer::L0B)))?;
    let l0c = alloc.alloc(Buffer::L0C, c_tile)?;
    let merge = match drain {
        Drain::Merged(m) => *m,
        _ => 1,
    };
    let row_store = matches!(drain, Drain::RowStore);
    let ub_mark = alloc.mark(Buffer::Ub);
    let ub_out = alloc.alloc(Buffer::Ub, c_tile * merge)?;

    let m_blocks = ceil_div(cfg.m, cfg.bm);
    let n_blocks = ceil_div(cfg.n, cfg.bn);
    let k_chunks = ceil_div(cfg.k, cfg.kc);

    // TT: the larger matrix should flow through the faster L1 -> L0A port.
    // Without TT the assignment is fixed (A via L0B), which is wrong
    // whenever A is the bigger operand — the common case.
    let a_is_large = cfg.m * cfg.k >= cfg.k * cfg.n;
    let a_via_l0a = if flags.has_tt() { a_is_large } else { false };

    // Loop-invariant operand hoisting: with a single n-block and k-chunk,
    // B never changes across mi (and symmetrically for A), so it is
    // staged in L1 exactly once.
    let hoist_b = n_blocks == 1 && k_chunks == 1;
    let hoist_a = m_blocks == 1 && k_chunks == 1;
    let mut a_loaded = false;
    let mut b_loaded = false;
    let mut merged_bytes = 0u64;
    let mut merged_start = 0u64;
    let mut block = 0u64;
    for mi in 0..m_blocks {
        let bm = cfg.bm.min(cfg.m - mi * cfg.bm);
        for ni in 0..n_blocks {
            let bn = cfg.bn.min(cfg.n - ni * cfg.bn);
            let c_len = bm * bn * cfg.elem_bytes;
            for kci in 0..k_chunks {
                let kc = cfg.kc.min(cfg.k - kci * cfg.kc);
                let a_len = bm * kc * cfg.elem_bytes;
                let b_len = kc * bn * cfg.elem_bytes;
                let parity = ((ni * k_chunks + kci) % 2) as usize;
                let l1_a_r = if hoist_a {
                    l1_a[0].slice(0, a_len)
                } else {
                    l1_a[parity % l1_a.len()].slice(0, a_len)
                };
                let l1_b_r = if hoist_b {
                    l1_b[0].slice(0, b_len)
                } else {
                    l1_b[parity % l1_b.len()].slice(0, b_len)
                };
                // Row-major-ish GM offsets (approximate, contiguous tiles).
                let a_off = (mi * cfg.bm * cfg.k + kci * cfg.kc * bm) * cfg.elem_bytes;
                let b_off = (ni * cfg.bn * cfg.k + kci * cfg.kc * bn) * cfg.elem_bytes;
                if !(hoist_a && a_loaded) {
                    b.transfer(TransferPath::GmToL1, gm_a.slice(a_off, a_len), l1_a_r)?;
                    a_loaded = true;
                }
                if !(hoist_b && b_loaded) {
                    b.transfer(TransferPath::GmToL1, gm_b.slice(b_off, b_len), l1_b_r)?;
                    b_loaded = true;
                }
                b.sync(Component::MteGm, Component::MteL1);
                let (fast, slow) = if a_via_l0a { (l1_a_r, l1_b_r) } else { (l1_b_r, l1_a_r) };
                b.transfer(TransferPath::L1ToL0A, fast, l0a.slice(0, fast.len()))?;
                b.transfer(TransferPath::L1ToL0B, slow, l0b.slice(0, slow.len()))?;
                b.sync(Component::MteL1, Component::Cube);
                b.compute(
                    ComputeUnit::Cube,
                    cfg.precision,
                    2 * bm * bn * kc,
                    vec![l0a.slice(0, fast.len()), l0b.slice(0, slow.len())],
                    vec![l0c.slice(0, c_len)],
                );
            }
            // Drain L0C through the Vector unit into UB.
            b.sync(Component::Cube, Component::Vector);
            let ub_dst = ub_out.slice(merged_bytes, c_len);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                bm * bn,
                vec![l0c.slice(0, c_len)],
                vec![ub_dst],
            );
            if let Drain::FusedAdd(bias) = drain {
                b.compute(
                    ComputeUnit::Vector,
                    Precision::Fp16,
                    bm * bn,
                    vec![ub_dst, bias.slice(0, (bn * cfg.elem_bytes).min(bias.len()))],
                    vec![ub_dst],
                );
            }
            merged_bytes += c_len;
            block += 1;
            let flush = block.is_multiple_of(merge) || (mi + 1 == m_blocks && ni + 1 == n_blocks);
            if row_store {
                // One small transfer per output row.
                b.sync(Component::Vector, Component::MteUb);
                let row_bytes = bn * 2;
                for r in 0..bm {
                    let gm_off = ((mi * cfg.bm + r) * cfg.n + ni * cfg.bn) * 2;
                    b.transfer(
                        TransferPath::UbToGm,
                        ub_dst.slice(r * row_bytes, row_bytes),
                        gm_c.slice(gm_off.min(gm_c.len() - row_bytes), row_bytes),
                    )?;
                }
                merged_bytes = 0;
            } else if flush && merged_bytes > 0 {
                b.sync(Component::Vector, Component::MteUb);
                b.transfer(
                    TransferPath::UbToGm,
                    ub_out.slice(0, merged_bytes),
                    gm_c.slice(merged_start, merged_bytes),
                )?;
                merged_start += merged_bytes;
                merged_bytes = 0;
            }
        }
    }
    alloc.release_to(Buffer::Ub, ub_mark);
    alloc.release_to(Buffer::L1, l1_mark);
    alloc.release_to(Buffer::L0A, l0a_mark);
    alloc.release_to(Buffer::L0B, l0b_mark);
    alloc.release_to(Buffer::L0C, l0c_mark);
    Ok(())
}

/// A plain `C = A × B` matrix multiplication on the Cube.
///
/// Meaningful flags: `tt` (larger operand takes the fast `L1→L0A` port),
/// `pp` (double-buffered L1 staging), `lc` (INT8 instead of FP16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMul {
    m: u64,
    k: u64,
    n: u64,
    flags: OptFlags,
}

impl MatMul {
    /// An `m × k` by `k × n` multiplication.
    #[must_use]
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        MatMul { m, k, n, flags: OptFlags::new() }
    }

    /// Applies optimization flags.
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    /// The (m, k, n) shape.
    #[must_use]
    pub fn shape(&self) -> (u64, u64, u64) {
        (self.m, self.k, self.n)
    }

    fn alloc_io(
        &self,
        alloc: &mut BufferAllocator,
        elem_bytes: u64,
    ) -> Result<(Region, Region, Region), IsaError> {
        let gm_a = alloc.alloc(Buffer::Gm, self.m * self.k * elem_bytes)?;
        let gm_b = alloc.alloc(Buffer::Gm, self.k * self.n * elem_bytes)?;
        let gm_c = alloc.alloc(Buffer::Gm, self.m * self.n * 2)?;
        Ok((gm_a, gm_b, gm_c))
    }
}

impl Operator for MatMul {
    fn name(&self) -> String {
        format!("matmul_{}x{}x{}{}", self.m, self.k, self.n, self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let cfg = GemmConfig::new(self.m, self.k, self.n, self.flags);
        let mut alloc = BufferAllocator::new(chip);
        let (gm_a, gm_b, gm_c) = self.alloc_io(&mut alloc, cfg.elem_bytes)?;
        let mut b = KernelBuilder::new(self.name());
        emit_gemm(&mut b, &mut alloc, cfg, self.flags, gm_a, gm_b, gm_c, &Drain::Store)?;
        Ok(b.build())
    }
}

/// `Y = A × B + bias`, fused (single kernel) or unfused (store C to GM,
/// read it back, add) — the paper's Operator Fusion example for MatMul.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMulAdd {
    inner: MatMul,
}

impl MatMulAdd {
    /// An `m × k` by `k × n` multiplication followed by a bias add.
    #[must_use]
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        MatMulAdd { inner: MatMul::new(m, k, n) }
    }

    /// Applies optimization flags (`fused` selects in-kernel fusion).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.inner.flags = flags;
        self
    }
}

impl Operator for MatMulAdd {
    fn name(&self) -> String {
        format!(
            "matmul_add_{}x{}x{}{}",
            self.inner.m,
            self.inner.k,
            self.inner.n,
            self.inner.flags.suffix()
        )
    }

    fn flags(&self) -> OptFlags {
        self.inner.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let flags = self.inner.flags;
        let cfg = GemmConfig::new(self.inner.m, self.inner.k, self.inner.n, flags);
        let mut alloc = BufferAllocator::new(chip);
        let (gm_a, gm_b, gm_c) = self.inner.alloc_io(&mut alloc, cfg.elem_bytes)?;
        let gm_bias = alloc.alloc(Buffer::Gm, cfg.bn * 2)?;
        let ub_bias = alloc.alloc(Buffer::Ub, cfg.bn * 2)?;
        let mut b = KernelBuilder::new(self.name());
        b.transfer(TransferPath::GmToUb, gm_bias, ub_bias)?;
        if flags.has_fused() {
            emit_gemm(&mut b, &mut alloc, cfg, flags, gm_a, gm_b, gm_c, &Drain::FusedAdd(ub_bias))?;
        } else {
            emit_gemm(&mut b, &mut alloc, cfg, flags, gm_a, gm_b, gm_c, &Drain::Store)?;
            // Separate Add pass: full GM round trip over C.
            let gm_y = alloc.alloc(Buffer::Gm, self.inner.m * self.inner.n * 2)?;
            let tile = 16 * 1024u64;
            let ub_c = alloc.alloc(Buffer::Ub, tile * 2)?;
            for t in crate::tiles(self.inner.m * self.inner.n, tile) {
                let off = t.offset * 2;
                let len = t.len * 2;
                let staging = ub_c.slice(0, len);
                b.transfer(TransferPath::GmToUb, gm_c.slice(off, len), staging)?;
                b.sync(Component::MteGm, Component::Vector);
                b.compute(
                    ComputeUnit::Vector,
                    Precision::Fp16,
                    t.len,
                    vec![staging, ub_bias],
                    vec![staging],
                );
                b.sync(Component::Vector, Component::MteUb);
                b.transfer(TransferPath::UbToGm, staging, gm_y.slice(off, len))?;
            }
        }
        Ok(b.build())
    }
}

/// A batched matrix multiplication: `batch` independent GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMatMul {
    batch: u64,
    m: u64,
    k: u64,
    n: u64,
    flags: OptFlags,
}

impl BatchMatMul {
    /// `batch` multiplications of `m × k` by `k × n`.
    #[must_use]
    pub fn new(batch: u64, m: u64, k: u64, n: u64) -> Self {
        BatchMatMul { batch, m, k, n, flags: OptFlags::new() }
    }

    /// Applies optimization flags.
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for BatchMatMul {
    fn name(&self) -> String {
        format!(
            "batch_matmul_{}x{}x{}x{}{}",
            self.batch,
            self.m,
            self.k,
            self.n,
            self.flags.suffix()
        )
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let cfg = GemmConfig::new(self.m, self.k, self.n, self.flags);
        let mut alloc = BufferAllocator::new(chip);
        let mut b = KernelBuilder::new(self.name());
        for _ in 0..self.batch {
            let gm_a = alloc.alloc(Buffer::Gm, self.m * self.k * cfg.elem_bytes)?;
            let gm_b = alloc.alloc(Buffer::Gm, self.k * self.n * cfg.elem_bytes)?;
            let gm_c = alloc.alloc(Buffer::Gm, self.m * self.n * 2)?;
            emit_gemm(&mut b, &mut alloc, cfg, self.flags, gm_a, gm_b, gm_c, &Drain::Store)?;
        }
        Ok(b.build())
    }
}

/// A fully connected layer: small-batch GEMM whose tiny per-block output
/// stores make the MTE-UB inefficient unless merged (`itg`) — the paper's
/// FullyConnection row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullyConnection {
    batch: u64,
    in_features: u64,
    out_features: u64,
    flags: OptFlags,
}

impl FullyConnection {
    /// A `batch × in_features` by `in_features × out_features` layer.
    #[must_use]
    pub fn new(batch: u64, in_features: u64, out_features: u64) -> Self {
        FullyConnection { batch, in_features, out_features, flags: OptFlags::new() }
    }

    /// Applies optimization flags (`itg` merges the small output stores).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for FullyConnection {
    fn name(&self) -> String {
        format!(
            "fully_connection_{}x{}x{}{}",
            self.batch,
            self.in_features,
            self.out_features,
            self.flags.suffix()
        )
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let mut cfg = GemmConfig::new(self.batch, self.in_features, self.out_features, self.flags);
        // Small-batch layer: small row blocks, wide column blocks. The
        // row-major output is written row by row — ~256-byte transfers —
        // unless ITG merges whole blocks.
        cfg.bm = self.batch.min(8);
        cfg.bn = 128.min(self.out_features);
        let mut alloc = BufferAllocator::new(chip);
        let gm_a = alloc.alloc(Buffer::Gm, self.batch * self.in_features * cfg.elem_bytes)?;
        let gm_b =
            alloc.alloc(Buffer::Gm, self.in_features * self.out_features * cfg.elem_bytes)?;
        let gm_c = alloc.alloc(Buffer::Gm, self.batch * self.out_features * 2)?;
        let drain = if self.flags.has_itg() { Drain::Merged(4) } else { Drain::RowStore };
        let mut b = KernelBuilder::new(self.name());
        // The FC baseline is otherwise well-tuned (Table 1 lists only ITG
        // for it), so its L1 staging is always double-buffered.
        emit_gemm(&mut b, &mut alloc, cfg, self.flags.pp(true), gm_a, gm_b, gm_c, &drain)?;
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    #[test]
    fn matmul_builds_and_counts_flops() {
        let chip = ChipSpec::training();
        let op = MatMul::new(256, 512, 256);
        let kernel = op.build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
        let stats = KernelStats::of(&kernel);
        assert_eq!(
            stats.ops_of(ComputeUnit::Cube, Precision::Fp16),
            2 * 256 * 512 * 256,
            "cube op count must equal 2mkn"
        );
    }

    #[test]
    fn tt_routes_the_large_matrix_through_l0a() {
        let chip = ChipSpec::training();
        // A much larger than B (B small enough to be staged once).
        let base = MatMul::new(1024, 256, 32).build(&chip).unwrap();
        let tt =
            MatMul::new(1024, 256, 32).with_flags(OptFlags::new().tt(true)).build(&chip).unwrap();
        let s0 = KernelStats::of(&base);
        let s1 = KernelStats::of(&tt);
        // With TT, more bytes flow over the fast L1->L0A port.
        assert!(s1.bytes_on_path(TransferPath::L1ToL0A) > s0.bytes_on_path(TransferPath::L1ToL0A));
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&tt).unwrap().total_cycles();
        assert!(t1 < t0, "TT must help when A is large: {t1} !< {t0}");
    }

    #[test]
    fn lc_halves_cube_time() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let fp16 = MatMul::new(256, 512, 256).build(&chip).unwrap();
        let int8 =
            MatMul::new(256, 512, 256).with_flags(OptFlags::new().lc(true)).build(&chip).unwrap();
        let s = KernelStats::of(&int8);
        assert!(s.ops_of(ComputeUnit::Cube, Precision::Int8) > 0);
        let t0 = sim.simulate(&fp16).unwrap().total_cycles();
        let t1 = sim.simulate(&int8).unwrap().total_cycles();
        assert!(t1 < t0, "INT8 must be faster: {t1} !< {t0}");
    }

    #[test]
    fn fusion_beats_separate_add() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let unfused = MatMulAdd::new(256, 256, 256).build(&chip).unwrap();
        let fused = MatMulAdd::new(256, 256, 256)
            .with_flags(OptFlags::new().fused(true))
            .build(&chip)
            .unwrap();
        let t0 = sim.simulate(&unfused).unwrap().total_cycles();
        let t1 = sim.simulate(&fused).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(speedup > 1.03, "fusion saves the GM round trip (paper: 1.10x), got {speedup:.2}");
        // The fused kernel moves strictly fewer GM bytes.
        let b0 = KernelStats::of(&unfused).bytes_of_component(Component::MteGm);
        let b1 = KernelStats::of(&fused).bytes_of_component(Component::MteGm);
        assert!(b1 < b0);
    }

    #[test]
    fn batch_matmul_scales_work_with_batch() {
        let chip = ChipSpec::training();
        let one = BatchMatMul::new(1, 128, 256, 128).build(&chip).unwrap();
        let four = BatchMatMul::new(4, 128, 256, 128).build(&chip).unwrap();
        let s1 = KernelStats::of(&one);
        let s4 = KernelStats::of(&four);
        assert_eq!(
            4 * s1.ops_of(ComputeUnit::Cube, Precision::Fp16),
            s4.ops_of(ComputeUnit::Cube, Precision::Fp16)
        );
    }

    #[test]
    fn fc_itg_merges_stores_and_helps() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let base = FullyConnection::new(32, 256, 1024).build(&chip).unwrap();
        let itg = FullyConnection::new(32, 256, 1024)
            .with_flags(OptFlags::new().itg(true))
            .build(&chip)
            .unwrap();
        let s0 = KernelStats::of(&base);
        let s1 = KernelStats::of(&itg);
        assert!(
            s1.instructions_per_queue[&Component::MteUb]
                < s0.instructions_per_queue[&Component::MteUb]
        );
        assert_eq!(
            s0.bytes_of_component(Component::MteUb),
            s1.bytes_of_component(Component::MteUb)
        );
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&itg).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(speedup > 1.1, "ITG must help FC (paper: 1.22x), got {speedup:.2}");
    }

    #[test]
    fn fc_baseline_has_an_inefficient_mte_ub() {
        use ascend_profile::Profiler;
        use ascend_roofline::{analyze, Thresholds};
        let chip = ChipSpec::training();
        let base = FullyConnection::new(32, 256, 1024).build(&chip).unwrap();
        let itg = FullyConnection::new(32, 256, 1024)
            .with_flags(OptFlags::new().itg(true))
            .build(&chip)
            .unwrap();
        let profiler = Profiler::new(chip.clone());
        let (p0, _) = profiler.run(&base).unwrap();
        let (p1, _) = profiler.run(&itg).unwrap();
        let thresholds = Thresholds::default();
        let e0 = analyze(&p0, &chip, &thresholds).metrics_of(Component::MteUb).unwrap().efficiency;
        let e1 = analyze(&p1, &chip, &thresholds).metrics_of(Component::MteUb).unwrap().efficiency;
        assert!(e1 > 1.5 * e0, "merged stores must raise MTE-UB efficiency: {e0:.3} -> {e1:.3}");
    }
}
