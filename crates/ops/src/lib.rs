#![warn(missing_docs)]

//! Operator library: kernel generators for the paper's operators.
//!
//! Every operator of the case studies (Section 5) and the end-to-end
//! evaluations (Section 6) is built here as a parameterized kernel
//! generator. Each generator accepts an [`OptFlags`] describing which of
//! the paper's optimizations are applied, so the *same* operator can be
//! produced in its baseline and optimized forms:
//!
//! | Flag | Paper optimization | Mechanism in the generated kernel |
//! |------|--------------------|-----------------------------------|
//! | `rsd` | Reducing Spatial Dependency | separate result buffer, breaking the write-back/load conflict |
//! | `mrt` | Minimizing Redundant Transfer | loop-invariant transfers hoisted out of the tile loop |
//! | `ais` | Adjusting Instruction Sequence | next tile's GM load issued before the current tile's body |
//! | `rus` | Removing Unnecessary Synchronization | drops the per-tile `pipe_barrier(ALL)` |
//! | `pp`  | Ping-pong Policy | double-buffered staging regions |
//! | `itg` | Increasing Transfer Granularity | merges several small stores into one large transfer |
//! | `aip` | Adjusting Instruction Parameter | one high-`repeat` vector instruction instead of many |
//! | `fused` | Operator Fusion | consumer computed in-kernel, skipping a GM round trip |
//! | `tt`  | Transfer Transformation | the larger matrix takes the higher-bandwidth path |
//! | `ea`  | Enhanced Algorithm | cheaper activation formula (FastGeLU) |
//! | `lc`  | Low-precision Calculation | INT8 instead of FP16 on the Cube |
//! | `ct`  | Computation Transformation | scalar work moved onto the Vector unit |
//!
//! # Examples
//!
//! ```
//! use ascend_arch::ChipSpec;
//! use ascend_ops::{AddRelu, Operator, OptFlags};
//! use ascend_sim::Simulator;
//!
//! let chip = ChipSpec::inference();
//! let base = AddRelu::new(1 << 20).build(&chip)?;
//! let tuned = AddRelu::new(1 << 20)
//!     .with_flags(OptFlags::new().rsd(true).mrt(true))
//!     .build(&chip)?;
//! let sim = Simulator::new(chip);
//! let t0 = sim.simulate(&base)?.total_cycles();
//! let t1 = sim.simulate(&tuned)?.total_cycles();
//! assert!(t1 < t0, "optimizations must help: {t1} !< {t0}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod add_relu;
mod attention;
mod avgpool;
mod conv2d;
mod depthwise;
mod dropout;
mod elementwise;
mod embedding;
mod flags;
mod format;
mod gelu;
mod matmul;
mod normalization;
mod spec;
mod tiling;

pub use add_relu::AddRelu;
pub use attention::Attention;
pub use avgpool::AvgPool;
pub use conv2d::Conv2d;
pub use depthwise::Depthwise;
pub use dropout::Dropout;
pub use elementwise::{Elementwise, EltwiseKind};
pub use embedding::{Embedding, ReduceSum};
pub use flags::OptFlags;
pub use format::{Cast, TransData};
pub use gelu::Gelu;
pub use matmul::{BatchMatMul, FullyConnection, MatMul, MatMulAdd};
pub use normalization::{LayerNorm, Softmax};
pub use spec::OpSpec;
pub use tiling::{ceil_div, tiles, Tile};

use ascend_arch::ChipSpec;
use ascend_isa::{IsaError, Kernel};

/// A kernel generator for one operator instance.
///
/// Implementations are shape-and-flags value types: construct one, then
/// [`build`](Operator::build) the kernel for a chip.
///
/// `Debug` is a supertrait because the default [`descriptor`]
/// (Operator::descriptor) derives the cache identity from the debug
/// rendering; `Send + Sync` let analysis pipelines fan invocations across
/// scoped worker threads.
pub trait Operator: std::fmt::Debug + Send + Sync {
    /// A descriptive kernel name (includes the applied optimizations).
    fn name(&self) -> String;

    /// The optimization flags this instance applies.
    fn flags(&self) -> OptFlags;

    /// Returns a copy with different flags (used by the optimizer loop).
    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator>;

    /// Generates the kernel for `chip`.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] when the shape cannot be laid out on the
    /// chip (e.g. a tile exceeding a buffer capacity).
    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError>;

    /// A stable, instance-complete description of this operator: two
    /// operators with equal descriptors must generate identical kernels
    /// on any given chip.
    ///
    /// The default uses the `Debug` rendering, which for the shape+flags
    /// value types in this crate captures everything `build` consumes —
    /// unlike [`name`](Operator::name), which omits the shape.
    fn descriptor(&self) -> String {
        format!("{self:?}")
    }

    /// A 64-bit FNV-1a hash of [`descriptor`](Operator::descriptor),
    /// used as the content-addressed cache identity by analysis
    /// pipelines.
    fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.descriptor().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}
