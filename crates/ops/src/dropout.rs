//! The DropoutDoMask operator and its V3 replacement.

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// Dropout masking over FP16 activations.
///
/// The baseline `DropoutDoMask` streams a *pre-materialized* mask tensor
/// from GM alongside the input and spends three vector micro-ops per
/// element. The `ea` flag selects `DropoutDoMaskV3`, the high-performance
/// substitute of the PanGu-α study: the mask is expanded on the fly from
/// a compact bitmask (an eighth of the bytes) with two micro-ops per
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dropout {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl Dropout {
    const ELEM_BYTES: u64 = 2;

    /// A dropout over `elements` FP16 values.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        Dropout { elements, tile_elements: 8 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags (`ea` selects the V3 variant).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    fn is_v3(&self) -> bool {
        self.flags.has_ea()
    }
}

impl Operator for Dropout {
    fn name(&self) -> String {
        if self.is_v3() {
            format!("dropout_do_mask_v3{}", self.flags.suffix())
        } else {
            format!("dropout_do_mask{}", self.flags.suffix())
        }
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        // V3: compact bitmask (1 bit/element, padded); base: full mask.
        let mask_tile = if self.is_v3() { tile_bytes / 8 } else { tile_bytes };
        let mask_total = if self.is_v3() {
            self.elements * Self::ELEM_BYTES / 8
        } else {
            self.elements * Self::ELEM_BYTES
        };
        let ops_per_element: u64 = if self.is_v3() { 2 } else { 3 };

        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_mask = alloc.alloc(Buffer::Gm, mask_total.max(64))?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let ub_in = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_mask = alloc.alloc(Buffer::Ub, mask_tile.max(64))?;
        let ub_out = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let parity = (tile.index % 2) as usize;
            let src = ub_in[parity].slice(0, len);
            let dst = ub_out[parity].slice(0, len);
            let m_off = if self.is_v3() { off / 8 } else { off };
            let m_len = (if self.is_v3() { len / 8 } else { len }).max(64);
            let mask_src = gm_mask.slice(m_off.min(gm_mask.len() - m_len), m_len);
            let mask_dst = ub_mask.slice(0, m_len.min(ub_mask.len()));

            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            b.transfer(TransferPath::GmToUb, mask_src, mask_dst)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                tile.len * ops_per_element,
                vec![src, mask_dst],
                vec![dst],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, gm_out.slice(off, len))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    const N: u64 = 1 << 19;

    #[test]
    fn both_variants_build_and_validate() {
        let chip = ChipSpec::training();
        for flags in [OptFlags::new(), OptFlags::new().ea(true)] {
            let kernel = Dropout::new(N).with_flags(flags).build(&chip).unwrap();
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn v3_moves_fewer_bytes_and_is_faster() {
        let chip = ChipSpec::training();
        let base = Dropout::new(N).build(&chip).unwrap();
        let v3 = Dropout::new(N).with_flags(OptFlags::new().ea(true)).build(&chip).unwrap();
        let b0 = KernelStats::of(&base).bytes_of_component(Component::MteGm);
        let b1 = KernelStats::of(&v3).bytes_of_component(Component::MteGm);
        assert!(b1 < b0, "V3's compact mask must shrink GM traffic: {b1} !< {b0}");
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&v3).unwrap().total_cycles();
        assert!(t1 < t0, "V3 must be faster: {t1} !< {t0}");
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Dropout::new(8).name(), "dropout_do_mask");
        assert!(Dropout::new(8)
            .with_flags(OptFlags::new().ea(true))
            .name()
            .starts_with("dropout_do_mask_v3"));
    }
}
